//! Line framing over a byte stream: bounded request lines inbound,
//! `ok`/`err` response frames outbound.
//!
//! Requests are newline-terminated text lines (the `fv-api` wire
//! grammar). Responses are framed so a client can recover multi-line
//! response text without sniffing content:
//!
//! ```text
//! ok <n>\n        n ≥ 1; the next n lines are the response text
//! <line 1>\n
//! …
//! <line n>\n
//!
//! err <CODE> <message>\n     one line; CODE is a stable E_* error code
//! ```
//!
//! Every non-blank, non-comment request line produces exactly one frame,
//! in request order. Blank lines and `#` comments produce nothing (same
//! as in scripts). Request lines longer than [`MAX_LINE`] bytes are
//! rejected with `E_PARSE` and the connection is closed (there is no way
//! to find the next line boundary safely); lines that are not valid
//! UTF-8 are rejected with `E_PARSE` but the connection survives (the
//! boundary is known).

use fv_api::{ApiError, ErrorCode};
use std::io::{self, Read, Write};

/// Upper bound on one request line (bytes, excluding the newline). Longer
/// lines are adversarial or corrupt, never legitimate requests.
pub const MAX_LINE: usize = 64 * 1024;

/// How reading one line can fail.
#[derive(Debug)]
pub enum LineError {
    /// Line exceeded [`MAX_LINE`] before a newline appeared. Not
    /// recoverable: the stream position within the oversized line is
    /// unknown, so the connection must close.
    TooLong,
    /// Line bytes are not valid UTF-8. Recoverable: the line boundary
    /// was found, so the next line can still be read.
    BadUtf8,
    /// Transport failure.
    Io(io::Error),
}

impl From<io::Error> for LineError {
    fn from(e: io::Error) -> Self {
        LineError::Io(e)
    }
}

/// Buffered line reader that exposes whether a complete line is already
/// buffered — the hook the server uses to batch contiguous requests
/// without ever blocking while holding a partial batch.
pub struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Read cursor into `buf`; everything before it has been consumed.
    start: usize,
}

impl<R: Read> LineReader<R> {
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            buf: Vec::with_capacity(4096),
            start: 0,
        }
    }

    /// Whether a complete line is already buffered, i.e. the next
    /// [`LineReader::read_line`] will return without touching the
    /// transport.
    pub fn has_buffered_line(&self) -> bool {
        self.buf[self.start..].contains(&b'\n')
    }

    /// Read one line (without its terminator). `Ok(None)` is a clean EOF
    /// at a line boundary; EOF in the middle of a line (a truncated
    /// frame) also returns `Ok(None)`, discarding the partial line — a
    /// disconnected peer cannot receive a response anyway.
    pub fn read_line(&mut self) -> Result<Option<String>, LineError> {
        loop {
            if let Some(pos) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                let end = self.start + pos;
                let line = &self.buf[self.start..end];
                let line = std::str::from_utf8(line)
                    .map(|s| s.trim_end_matches('\r').to_string())
                    .map_err(|_| LineError::BadUtf8);
                self.start = end + 1;
                self.compact();
                return line.map(Some);
            }
            if self.buf.len() - self.start > MAX_LINE {
                return Err(LineError::TooLong);
            }
            let mut chunk = [0u8; 4096];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                return Ok(None);
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn compact(&mut self) {
        if self.start > 8192 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Write a success frame for response text `body` (no trailing newline in
/// `body`; the frame adds its own terminators).
pub fn write_ok(w: &mut impl Write, body: &str) -> io::Result<()> {
    let n = body.lines().count().max(1);
    writeln!(w, "ok {n}")?;
    writeln!(w, "{body}")
}

/// Write an error frame. Newlines in the message (impossible for errors
/// built from wire input, but cheap to guarantee) are flattened so the
/// frame stays one line.
pub fn write_err(w: &mut impl Write, e: &ApiError) -> io::Result<()> {
    let msg = e.message.replace(['\n', '\r'], " ");
    writeln!(w, "err {} {}", e.code.as_str(), msg)
}

/// One response frame, as a client sees it.
pub type Reply = Result<String, ApiError>;

/// Read one response frame: `Ok(None)` on clean EOF, `Ok(Some(reply))`
/// with the server's answer (success text or typed error), `Err` on a
/// transport/framing failure.
pub fn read_reply<R: Read>(reader: &mut LineReader<R>) -> Result<Option<Reply>, ApiError> {
    let header = match reader.read_line() {
        Ok(Some(h)) => h,
        Ok(None) => return Ok(None),
        Err(e) => return Err(transport_error(e)),
    };
    if let Some(rest) = header.strip_prefix("ok ") {
        let n: usize = rest
            .parse()
            .map_err(|_| ApiError::parse(format!("bad frame header {header:?}")))?;
        if n == 0 || n > MAX_LINE {
            return Err(ApiError::parse(format!("bad frame line count {n}")));
        }
        let mut body = String::new();
        for i in 0..n {
            match reader.read_line() {
                Ok(Some(line)) => {
                    if i > 0 {
                        body.push('\n');
                    }
                    body.push_str(&line);
                }
                Ok(None) => return Err(ApiError::io("connection closed mid-frame")),
                Err(e) => return Err(transport_error(e)),
            }
        }
        return Ok(Some(Ok(body)));
    }
    if let Some(rest) = header.strip_prefix("err ") {
        let (code, message) = match rest.split_once(' ') {
            Some((c, m)) => (c, m.to_string()),
            None => (rest, String::new()),
        };
        let code = ErrorCode::from_wire(code)
            .ok_or_else(|| ApiError::parse(format!("unknown error code in frame {header:?}")))?;
        return Ok(Some(Err(ApiError::new(code, message))));
    }
    Err(ApiError::parse(format!(
        "malformed frame header {header:?}"
    )))
}

fn transport_error(e: LineError) -> ApiError {
    match e {
        LineError::TooLong => ApiError::parse("response line exceeds the frame limit"),
        LineError::BadUtf8 => ApiError::parse("response line is not valid UTF-8"),
        LineError::Io(e) => ApiError::io(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_split_and_buffering_is_visible() {
        let data = b"alpha\nbeta\ngamma".to_vec();
        let mut r = LineReader::new(&data[..]);
        assert_eq!(r.read_line().unwrap(), Some("alpha".to_string()));
        assert!(r.has_buffered_line(), "beta is already buffered");
        assert_eq!(r.read_line().unwrap(), Some("beta".to_string()));
        assert!(!r.has_buffered_line());
        // trailing bytes without a newline are a truncated line → EOF
        assert_eq!(r.read_line().unwrap(), None);
    }

    #[test]
    fn crlf_is_tolerated() {
        let data = b"alpha\r\nbeta\r\n".to_vec();
        let mut r = LineReader::new(&data[..]);
        assert_eq!(r.read_line().unwrap(), Some("alpha".to_string()));
        assert_eq!(r.read_line().unwrap(), Some("beta".to_string()));
    }

    #[test]
    fn oversized_line_is_too_long() {
        let data = vec![b'a'; MAX_LINE + 2];
        let mut r = LineReader::new(&data[..]);
        assert!(matches!(r.read_line(), Err(LineError::TooLong)));
    }

    #[test]
    fn bad_utf8_is_recoverable() {
        let mut data = vec![0xff, 0xfe, b'\n'];
        data.extend_from_slice(b"ok\n");
        let mut r = LineReader::new(&data[..]);
        assert!(matches!(r.read_line(), Err(LineError::BadUtf8)));
        assert_eq!(r.read_line().unwrap(), Some("ok".to_string()));
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_ok(&mut buf, "one line").unwrap();
        write_ok(&mut buf, "two\nlines").unwrap();
        write_err(&mut buf, &ApiError::not_found("dataset 7")).unwrap();
        let mut r = LineReader::new(&buf[..]);
        assert_eq!(read_reply(&mut r).unwrap().unwrap().unwrap(), "one line");
        assert_eq!(read_reply(&mut r).unwrap().unwrap().unwrap(), "two\nlines");
        let err = read_reply(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::NotFound);
        assert_eq!(err.message, "dataset 7");
        assert!(read_reply(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn newlines_in_error_messages_are_flattened() {
        let mut buf = Vec::new();
        write_err(&mut buf, &ApiError::invalid("multi\nline\nmessage")).unwrap();
        let mut r = LineReader::new(&buf[..]);
        let err = read_reply(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(err.message, "multi line message");
    }
}
