//! Line framing over a byte stream: bounded request lines inbound,
//! `ok`/`err` response frames outbound.
//!
//! Requests are newline-terminated text lines (the `fv-api` wire
//! grammar). Responses are framed so a client can recover multi-line
//! response text without sniffing content:
//!
//! ```text
//! ok <n>\n        n ≥ 1; the next n lines are the response text
//! <line 1>\n
//! …
//! <line n>\n
//!
//! err <CODE> <message>\n     one line; CODE is a stable E_* error code
//! ```
//!
//! Every non-blank, non-comment request line produces exactly one frame,
//! in request order. Blank lines and `#` comments produce nothing (same
//! as in scripts). Faulty lines are *recoverable*: a request line longer
//! than [`MAX_LINE`] bytes is reported once and its remaining bytes are
//! discarded up to the next newline (framing resyncs there); a line that
//! is not valid UTF-8 is reported with its boundary intact. Servers
//! answer both with a typed `err E_INVALID` frame and keep the
//! connection alive — error parity with local script replay, where a bad
//! line never tears down the session.
//!
//! The core is [`FrameBuf`], a push parser fed raw bytes — the shape a
//! readiness-driven event loop needs. [`LineReader`] wraps it for
//! blocking `Read` streams (the client side).

use fv_api::{ApiError, ErrorCode};
use std::io::{self, Read, Write};

/// Upper bound on one request line (bytes, excluding the newline). Longer
/// lines are adversarial or corrupt, never legitimate requests.
pub const MAX_LINE: usize = 64 * 1024;

/// A per-line framing fault. Both are recoverable: the framer resyncs at
/// the next newline and keeps delivering lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineFault {
    /// Line exceeded [`MAX_LINE`] before a newline appeared. Reported
    /// once; the line's remaining bytes are discarded up to (and
    /// including) its terminating newline.
    TooLong,
    /// Line bytes are not valid UTF-8. The line boundary was found, so
    /// the next line is unaffected.
    BadUtf8,
}

/// How reading one line can fail ([`LineReader`]).
#[derive(Debug)]
pub enum LineError {
    /// See [`LineFault::TooLong`]. The reader stays usable: the next
    /// [`LineReader::read_line`] resumes at the next line boundary.
    TooLong,
    /// See [`LineFault::BadUtf8`]. The reader stays usable.
    BadUtf8,
    /// Transport failure.
    Io(io::Error),
}

impl From<io::Error> for LineError {
    fn from(e: io::Error) -> Self {
        LineError::Io(e)
    }
}

impl From<LineFault> for LineError {
    fn from(f: LineFault) -> Self {
        match f {
            LineFault::TooLong => LineError::TooLong,
            LineFault::BadUtf8 => LineError::BadUtf8,
        }
    }
}

/// Incremental line framer: bytes in ([`FrameBuf::feed`]), complete lines
/// or per-line faults out ([`FrameBuf::next_line`]). Never blocks and
/// never reads — the caller owns the transport, which is what lets a
/// poll-based event loop drive hundreds of connections through one
/// thread. Oversized lines switch the framer into a discard state that
/// drops bytes until the next newline, so buffered memory stays bounded
/// by `MAX_LINE` + one read chunk no matter what a client sends.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Read cursor into `buf`; everything before it has been consumed.
    start: usize,
    /// Inside an oversized line whose fault was already reported: drop
    /// everything up to the next newline.
    discarding: bool,
}

impl FrameBuf {
    pub fn new() -> Self {
        FrameBuf {
            buf: Vec::with_capacity(4096),
            start: 0,
            discarding: false,
        }
    }

    /// Append raw transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.discarding {
            // Cheap fast-path: drop straight away instead of buffering an
            // attacker-sized line.
            if let Some(pos) = bytes.iter().position(|&b| b == b'\n') {
                self.discarding = false;
                self.buf.extend_from_slice(&bytes[pos + 1..]);
            }
            return;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Whether [`FrameBuf::next_line`] would deliver without more input.
    pub fn has_line(&self) -> bool {
        self.buf[self.start..].contains(&b'\n')
            || (!self.discarding && self.buf.len() - self.start > MAX_LINE)
    }

    /// Whether consumed-but-unterminated bytes remain (a truncated final
    /// line at EOF).
    pub fn has_partial(&self) -> bool {
        self.buf.len() > self.start
    }

    /// Next complete line (without its terminator, `\r` tolerated) or a
    /// framing fault; `None` until more bytes arrive.
    pub fn next_line(&mut self) -> Option<Result<String, LineFault>> {
        if let Some(pos) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
            let end = self.start + pos;
            let line = if pos > MAX_LINE {
                // Whole line arrived in one feed but is over the limit;
                // its boundary is known, so no discard state is needed.
                Err(LineFault::TooLong)
            } else {
                std::str::from_utf8(&self.buf[self.start..end])
                    .map(|s| s.trim_end_matches('\r').to_string())
                    .map_err(|_| LineFault::BadUtf8)
            };
            self.start = end + 1;
            self.compact();
            return Some(line);
        }
        if self.buf.len() - self.start > MAX_LINE {
            // Report once, then discard the rest of the line as it
            // streams in.
            self.buf.clear();
            self.start = 0;
            self.discarding = true;
            return Some(Err(LineFault::TooLong));
        }
        None
    }

    fn compact(&mut self) {
        if self.start > 8192 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Buffered line reader over a blocking `Read` stream — [`FrameBuf`]
/// plus the reads. Exposes whether a complete line is already buffered,
/// the hook batching servers/clients use to avoid blocking while holding
/// a partial batch.
pub struct LineReader<R: Read> {
    inner: R,
    frames: FrameBuf,
}

impl<R: Read> LineReader<R> {
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            frames: FrameBuf::new(),
        }
    }

    /// Whether a complete line is already buffered, i.e. the next
    /// [`LineReader::read_line`] will return without touching the
    /// transport.
    pub fn has_buffered_line(&self) -> bool {
        self.frames.has_line()
    }

    /// Read one line (without its terminator). `Ok(None)` is a clean EOF
    /// at a line boundary; EOF in the middle of a line (a truncated
    /// frame) also returns `Ok(None)`, discarding the partial line — a
    /// disconnected peer cannot receive a response anyway. Fault errors
    /// ([`LineError::TooLong`], [`LineError::BadUtf8`]) are per-line: the
    /// reader stays usable and resyncs at the next boundary.
    pub fn read_line(&mut self) -> Result<Option<String>, LineError> {
        loop {
            if let Some(line) = self.frames.next_line() {
                return line.map(Some).map_err(LineError::from);
            }
            let mut chunk = [0u8; 4096];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                return Ok(None);
            }
            self.frames.feed(&chunk[..n]);
        }
    }
}

/// Append a success frame for response text `body` to an in-memory
/// outbox. Infallible by construction (`Vec` writes cannot fail) — the
/// panic-free path the event loop uses to enqueue replies.
pub fn push_ok_frame(out: &mut Vec<u8>, body: &str) {
    let n = body.lines().count().max(1);
    out.extend_from_slice(format!("ok {n}\n").as_bytes());
    out.extend_from_slice(body.as_bytes());
    out.push(b'\n');
}

/// Append an error frame to an in-memory outbox. Newlines in the
/// message (impossible for errors built from wire input, but cheap to
/// guarantee) are flattened so the frame stays one line.
pub fn push_err_frame(out: &mut Vec<u8>, e: &ApiError) {
    let msg = e.message.replace(['\n', '\r'], " ");
    out.extend_from_slice(format!("err {} {msg}\n", e.code.as_str()).as_bytes());
}

/// Write a success frame for response text `body` (no trailing newline in
/// `body`; the frame adds its own terminators).
pub fn write_ok(w: &mut impl Write, body: &str) -> io::Result<()> {
    let mut buf = Vec::new();
    push_ok_frame(&mut buf, body);
    w.write_all(&buf)
}

/// Write an error frame; byte-identical to [`push_err_frame`].
pub fn write_err(w: &mut impl Write, e: &ApiError) -> io::Result<()> {
    let mut buf = Vec::new();
    push_err_frame(&mut buf, e);
    w.write_all(&buf)
}

/// One response frame, as a client sees it.
pub type Reply = Result<String, ApiError>;

/// Read one response frame: `Ok(None)` on clean EOF, `Ok(Some(reply))`
/// with the server's answer (success text or typed error), `Err` on a
/// transport/framing failure.
pub fn read_reply<R: Read>(reader: &mut LineReader<R>) -> Result<Option<Reply>, ApiError> {
    let header = match reader.read_line() {
        Ok(Some(h)) => h,
        Ok(None) => return Ok(None),
        Err(e) => return Err(transport_error(e)),
    };
    if let Some(rest) = header.strip_prefix("ok ") {
        let n: usize = rest
            .parse()
            .map_err(|_| ApiError::parse(format!("bad frame header {header:?}")))?;
        if n == 0 || n > MAX_LINE {
            return Err(ApiError::parse(format!("bad frame line count {n}")));
        }
        let mut body = String::new();
        for i in 0..n {
            match reader.read_line() {
                Ok(Some(line)) => {
                    if i > 0 {
                        body.push('\n');
                    }
                    body.push_str(&line);
                }
                Ok(None) => return Err(ApiError::io("connection closed mid-frame")),
                Err(e) => return Err(transport_error(e)),
            }
        }
        return Ok(Some(Ok(body)));
    }
    if let Some(rest) = header.strip_prefix("err ") {
        let (code, message) = match rest.split_once(' ') {
            Some((c, m)) => (c, m.to_string()),
            None => (rest, String::new()),
        };
        let code = ErrorCode::from_wire(code)
            .ok_or_else(|| ApiError::parse(format!("unknown error code in frame {header:?}")))?;
        return Ok(Some(Err(ApiError::new(code, message))));
    }
    Err(ApiError::parse(format!(
        "malformed frame header {header:?}"
    )))
}

fn transport_error(e: LineError) -> ApiError {
    match e {
        LineError::TooLong => ApiError::parse("response line exceeds the frame limit"),
        LineError::BadUtf8 => ApiError::parse("response line is not valid UTF-8"),
        LineError::Io(e) => ApiError::io(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_frames_match_write_frames_byte_for_byte() {
        for body in ["pong", "first\nsecond\nthird", ""] {
            let mut pushed = Vec::new();
            push_ok_frame(&mut pushed, body);
            let n = body.lines().count().max(1);
            assert_eq!(pushed, format!("ok {n}\n{body}\n").as_bytes());
            let mut written = Vec::new();
            write_ok(&mut written, body).unwrap();
            assert_eq!(pushed, written);
        }
        let e = ApiError::invalid("multi\nline");
        let mut pushed = Vec::new();
        push_err_frame(&mut pushed, &e);
        let mut written = Vec::new();
        write_err(&mut written, &e).unwrap();
        assert_eq!(pushed, written);
        assert_eq!(
            pushed.iter().filter(|&&b| b == b'\n').count(),
            1,
            "err frames are a single line"
        );
    }

    #[test]
    fn lines_split_and_buffering_is_visible() {
        let data = b"alpha\nbeta\ngamma".to_vec();
        let mut r = LineReader::new(&data[..]);
        assert_eq!(r.read_line().unwrap(), Some("alpha".to_string()));
        assert!(r.has_buffered_line(), "beta is already buffered");
        assert_eq!(r.read_line().unwrap(), Some("beta".to_string()));
        assert!(!r.has_buffered_line());
        // trailing bytes without a newline are a truncated line → EOF
        assert_eq!(r.read_line().unwrap(), None);
    }

    #[test]
    fn crlf_is_tolerated() {
        let data = b"alpha\r\nbeta\r\n".to_vec();
        let mut r = LineReader::new(&data[..]);
        assert_eq!(r.read_line().unwrap(), Some("alpha".to_string()));
        assert_eq!(r.read_line().unwrap(), Some("beta".to_string()));
    }

    #[test]
    fn oversized_line_is_reported_once_then_resyncs() {
        let mut data = vec![b'a'; MAX_LINE + 2];
        data.extend_from_slice(b"\nping\n");
        let mut r = LineReader::new(&data[..]);
        assert!(matches!(r.read_line(), Err(LineError::TooLong)));
        // the reader recovered at the newline: the next line is intact
        assert_eq!(r.read_line().unwrap(), Some("ping".to_string()));
        assert_eq!(r.read_line().unwrap(), None);
    }

    #[test]
    fn oversized_line_discard_is_incremental() {
        // Fed in drips, the framer reports TooLong once, keeps memory
        // bounded while discarding, and resumes at the boundary.
        let mut f = FrameBuf::new();
        f.feed(&vec![b'x'; MAX_LINE]);
        assert!(f.next_line().is_none(), "exactly MAX_LINE: could still end");
        f.feed(b"xx");
        assert_eq!(f.next_line(), Some(Err(LineFault::TooLong)));
        for _ in 0..64 {
            f.feed(&[b'y'; 1024]);
            assert!(f.next_line().is_none(), "still discarding");
            assert!(!f.has_partial(), "discarded bytes must not buffer");
        }
        f.feed(b"tail\nok\n");
        assert_eq!(f.next_line(), Some(Ok("ok".to_string())));
    }

    #[test]
    fn bad_utf8_is_recoverable() {
        let mut data = vec![0xff, 0xfe, b'\n'];
        data.extend_from_slice(b"ok\n");
        let mut r = LineReader::new(&data[..]);
        assert!(matches!(r.read_line(), Err(LineError::BadUtf8)));
        assert_eq!(r.read_line().unwrap(), Some("ok".to_string()));
    }

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_ok(&mut buf, "one line").unwrap();
        write_ok(&mut buf, "two\nlines").unwrap();
        write_err(&mut buf, &ApiError::not_found("dataset 7")).unwrap();
        let mut r = LineReader::new(&buf[..]);
        assert_eq!(read_reply(&mut r).unwrap().unwrap().unwrap(), "one line");
        assert_eq!(read_reply(&mut r).unwrap().unwrap().unwrap(), "two\nlines");
        let err = read_reply(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(err.code, ErrorCode::NotFound);
        assert_eq!(err.message, "dataset 7");
        assert!(read_reply(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn newlines_in_error_messages_are_flattened() {
        let mut buf = Vec::new();
        write_err(&mut buf, &ApiError::invalid("multi\nline\nmessage")).unwrap();
        let mut r = LineReader::new(&buf[..]);
        let err = read_reply(&mut r).unwrap().unwrap().unwrap_err();
        assert_eq!(err.message, "multi line message");
    }
}
