//! Wire-trace recording: a byte-transparent TCP tap that proxies one
//! client connection to an upstream server while writing down every
//! request line and reply frame as [`TraceEvent`]s.
//!
//! The tap forwards raw bytes verbatim in both directions — the proxied
//! session behaves exactly as a direct connection, pipelining included —
//! and *observes* the streams through the same framing the endpoints
//! use: request lines via [`FrameBuf`], reply frames via a
//! [`ReplyAssembler`] (the incremental counterpart of
//! [`crate::frame::read_reply`]). When both sides hang up, the recorded
//! events serialize with [`fv_api::format_trace`] into a `fvtrace 1`
//! file that [`crate::replay`] can re-drive deterministically.
//!
//! Scope: the request/reply plane only. Traces are bounded UTF-8 text,
//! so a session carrying framing faults (oversized or non-UTF-8 lines)
//! or the binary tile stream of a `subscribe` is *unrecordable* — the
//! tap reports a typed error instead of writing a trace that could not
//! replay.

use crate::frame::{FrameBuf, LineFault, Reply, MAX_LINE};
use fv_api::{ApiError, ErrorCode, TraceEvent};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::{Arc, Mutex, PoisonError};

/// Append to the shared event log, recovering a poisoned lock: the
/// recording threads only ever push to the Vec, so a panic between
/// lock and unlock cannot leave it torn — the events gathered so far
/// are still the truth of what crossed the wire.
fn push_event(events: &Mutex<Vec<TraceEvent>>, event: TraceEvent) {
    events
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(event);
}

/// Incremental reply-frame parser: feed the server→client stream one
/// line at a time, get a completed [`Reply`] whenever a frame closes.
/// Grammar and error classes match [`crate::frame::read_reply`] exactly.
#[derive(Debug, Default)]
pub struct ReplyAssembler {
    /// `(total_lines, collected)` of an open `ok <n>` frame.
    pending: Option<(usize, Vec<String>)>,
}

impl ReplyAssembler {
    pub fn new() -> ReplyAssembler {
        ReplyAssembler::default()
    }

    /// Whether a multi-line `ok` frame is mid-assembly (EOF here is a
    /// truncated frame, not a clean close).
    pub fn mid_frame(&self) -> bool {
        self.pending.is_some()
    }

    /// Feed one reply-plane line. Returns `Some(reply)` when a frame
    /// completes, `None` while an `ok <n>` body is still arriving.
    pub fn push_line(&mut self, line: &str) -> Result<Option<Reply>, ApiError> {
        if let Some((total, mut collected)) = self.pending.take() {
            collected.push(line.to_string());
            if collected.len() == total {
                return Ok(Some(Ok(collected.join("\n"))));
            }
            self.pending = Some((total, collected));
            return Ok(None);
        }
        if let Some(rest) = line.strip_prefix("ok ") {
            let n: usize = rest
                .parse()
                .map_err(|_| ApiError::parse(format!("bad frame header {line:?}")))?;
            if n == 0 || n > MAX_LINE {
                return Err(ApiError::parse(format!("bad frame line count {n}")));
            }
            self.pending = Some((n, Vec::with_capacity(n)));
            return Ok(None);
        }
        if let Some(rest) = line.strip_prefix("err ") {
            let (code, message) = match rest.split_once(' ') {
                Some((c, m)) => (c, m.to_string()),
                None => (rest, String::new()),
            };
            let code = ErrorCode::from_wire(code)
                .ok_or_else(|| ApiError::parse(format!("unknown error code in frame {line:?}")))?;
            return Ok(Some(Err(ApiError::new(code, message))));
        }
        Err(ApiError::parse(format!("malformed frame header {line:?}")))
    }
}

/// Proxy exactly one accepted connection to `upstream`, recording the
/// exchange. Returns when both directions have closed (the client
/// hanging up propagates as a half-close to the server and vice versa),
/// yielding the events in wire order: every request line as
/// [`TraceEvent::Send`], every reply frame as [`TraceEvent::Recv`].
///
/// Blank lines and column-0 `#` comments are forwarded (byte
/// transparency) but not recorded — they produce no reply frame, and
/// the trace format treats them as annotations anyway.
pub fn record_session(listener: TcpListener, upstream: &str) -> Result<Vec<TraceEvent>, ApiError> {
    let (client, _) = listener
        .accept()
        .map_err(|e| ApiError::io(format!("tap accept: {e}")))?;
    let server = TcpStream::connect(upstream)
        .map_err(|e| ApiError::io(format!("tap connect {upstream}: {e}")))?;
    record_streams(client, server)
}

/// [`record_session`] on already-connected streams (test seam).
pub(crate) fn record_streams(
    client: TcpStream,
    server: TcpStream,
) -> Result<Vec<TraceEvent>, ApiError> {
    let events: Arc<Mutex<Vec<TraceEvent>>> = Arc::new(Mutex::new(Vec::new()));

    let c2s = {
        let events = Arc::clone(&events);
        let mut from = client
            .try_clone()
            .map_err(|e| ApiError::io(format!("tap clone: {e}")))?;
        let mut to = server
            .try_clone()
            .map_err(|e| ApiError::io(format!("tap clone: {e}")))?;
        std::thread::Builder::new()
            .name("fv-tap-c2s".into())
            .spawn(move || -> Result<(), ApiError> {
                let mut frames = FrameBuf::new();
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    let n = match from.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => n,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(ApiError::io(format!("tap read client: {e}"))),
                    };
                    // Record completed lines BEFORE forwarding the bytes
                    // that complete them: a request can only be answered
                    // once its final `\n` reaches the server, and that
                    // byte is in this chunk — recording first guarantees
                    // every reply lands after its request in the trace,
                    // however fast the server answers.
                    frames.feed(&chunk[..n]);
                    while let Some(line) = frames.next_line() {
                        let line = line.map_err(|f| unrecordable("request", f))?;
                        let trimmed = line.trim();
                        if trimmed.is_empty() || trimmed.starts_with('#') {
                            continue; // no frame will answer it
                        }
                        push_event(&events, TraceEvent::Send(line));
                    }
                    to.write_all(&chunk[..n])
                        .map_err(|e| ApiError::io(format!("tap write server: {e}")))?;
                }
                let _ = to.shutdown(Shutdown::Write);
                Ok(())
            })
            .map_err(|e| ApiError::io(format!("tap spawn: {e}")))?
    };

    let s2c = {
        let events = Arc::clone(&events);
        let mut from = server;
        let mut to = client;
        std::thread::Builder::new()
            .name("fv-tap-s2c".into())
            .spawn(move || -> Result<(), ApiError> {
                let mut frames = FrameBuf::new();
                let mut assembler = ReplyAssembler::new();
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    let n = match from.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => n,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(ApiError::io(format!("tap read server: {e}"))),
                    };
                    to.write_all(&chunk[..n])
                        .map_err(|e| ApiError::io(format!("tap write client: {e}")))?;
                    frames.feed(&chunk[..n]);
                    while let Some(line) = frames.next_line() {
                        let line = line.map_err(|f| unrecordable("reply", f))?;
                        if let Some(reply) = assembler.push_line(&line)? {
                            push_event(&events, TraceEvent::Recv(reply));
                        }
                    }
                }
                let _ = to.shutdown(Shutdown::Write);
                if assembler.mid_frame() {
                    return Err(ApiError::io(
                        "server closed the connection mid-frame during recording",
                    ));
                }
                Ok(())
            })
            .map_err(|e| ApiError::io(format!("tap spawn: {e}")))?
    };

    let c2s_result = c2s.join().unwrap_or_else(|_| {
        Err(ApiError::new(
            ErrorCode::Internal,
            "tap c2s thread panicked",
        ))
    });
    let s2c_result = s2c.join().unwrap_or_else(|_| {
        Err(ApiError::new(
            ErrorCode::Internal,
            "tap s2c thread panicked",
        ))
    });
    c2s_result?;
    s2c_result?;

    Ok(Arc::try_unwrap(events)
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .unwrap_or_default())
}

fn unrecordable(plane: &str, fault: LineFault) -> ApiError {
    let what = match fault {
        LineFault::TooLong => "an oversized line",
        LineFault::BadUtf8 => "a non-UTF-8 line",
    };
    ApiError::invalid(format!(
        "unrecordable {plane} stream: {what} cannot be represented in a text trace \
         (traces capture the well-formed request/reply plane only)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembler_reassembles_multi_line_ok_and_err_frames() {
        let mut a = ReplyAssembler::new();
        assert!(a.push_line("ok 3").unwrap().is_none());
        assert!(a.mid_frame());
        assert!(a.push_line("alpha").unwrap().is_none());
        assert!(a.push_line("").unwrap().is_none());
        let reply = a.push_line("gamma").unwrap().unwrap().unwrap();
        assert_eq!(reply, "alpha\n\ngamma");
        assert!(!a.mid_frame());
        let err = a
            .push_line("err E_BUSY queue full")
            .unwrap()
            .unwrap()
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::Busy);
        assert_eq!(err.message, "queue full");
    }

    #[test]
    fn assembler_matches_read_reply_byte_for_byte() {
        use crate::frame::{read_reply, write_err, write_ok, LineReader};
        let mut wire = Vec::new();
        write_ok(&mut wire, "one").unwrap();
        write_ok(&mut wire, "first\nsecond\nthird").unwrap();
        write_err(&mut wire, &ApiError::not_found("dataset 9")).unwrap();
        write_ok(&mut wire, "").unwrap(); // empty body → "ok 1" + one empty line

        // via the blocking reader
        let mut reader = LineReader::new(&wire[..]);
        let mut expected = Vec::new();
        while let Some(r) = read_reply(&mut reader).unwrap() {
            expected.push(r);
        }

        // via the incremental assembler
        let mut frames = FrameBuf::new();
        frames.feed(&wire);
        let mut a = ReplyAssembler::new();
        let mut got = Vec::new();
        while let Some(line) = frames.next_line() {
            if let Some(r) = a.push_line(&line.unwrap()).unwrap() {
                got.push(r);
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn event_log_survives_a_poisoned_lock() {
        // A panic while the log is held poisons the mutex; the recorder
        // must still read the events gathered before the panic rather
        // than panicking itself (the old `.unwrap()` behavior).
        let events = Arc::new(Mutex::new(Vec::new()));
        push_event(&events, TraceEvent::Send("render".into()));
        let poisoner = Arc::clone(&events);
        std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the log");
        })
        .join()
        .unwrap_err();
        assert!(events.is_poisoned());
        push_event(&events, TraceEvent::Send("stats".into()));
        let log = Arc::try_unwrap(events)
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .unwrap_or_default();
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn assembler_rejects_garbage_headers() {
        let mut a = ReplyAssembler::new();
        assert!(a.push_line("hello").is_err());
        assert!(a.push_line("ok zero").is_err());
        assert!(a.push_line("ok 0").is_err());
        assert!(a.push_line("err E_NOPE what").is_err());
    }
}
