//! Deterministic wire-trace replay — against a live server or a local
//! [`EngineHub`] — with byte-compared transcripts.
//!
//! A trace ([`fv_api::trace`]) is a sequence of `send` lines and `recv`
//! frames. Replay walks it in order, **batching consecutive `send`s
//! into one socket write** so the server sees the same pipelining the
//! recorded client produced — that is what makes run batching, `E_BUSY`
//! rejections, and `skipped` tails reproduce bit-for-bit. After each
//! send batch it reads one reply frame per recorded `recv` and writes
//! down what actually came back.
//!
//! The comparison artifact is the **received transcript**: the replay's
//! `recv` events serialized with [`fv_api::format_trace`]. Two replays
//! of the same trace against fresh servers must produce byte-identical
//! received transcripts, and both must equal the recorded one.
//!
//! Local replay drives the same events through an in-process
//! [`EngineHub`], mirroring the server's reply formatting exactly
//! (`using`/`closed` acks, `format_response` bodies, error frames, and
//! the `skipped:` tail after a mid-run failure). It covers the script
//! plane plus `ping` and bare `close`; transport controls (`stats`,
//! `migrate`, `subscribe`, …) answer with a typed `E_INVALID`, since
//! they have no single-engine meaning. `E_BUSY` also cannot arise
//! locally — there is no connection queue — so traces recorded under
//! queue pressure byte-verify against servers, not hubs.

use crate::frame::{read_reply, LineReader};
use fv_api::codec::ScriptItem;
use fv_api::{
    format_response, format_trace, parse_wire_line, ApiError, EngineHub, Request, SessionId,
    TraceEvent, WireItem,
};
use std::io::Write;
use std::net::{Shutdown, TcpStream};

/// What a replay produced, ready for byte comparison.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Request lines written.
    pub sends: usize,
    /// Reply frames read (or synthesized, for local replay), in order.
    pub replies: Vec<TraceEvent>,
    /// `format_trace` of [`ReplayOutcome::replies`] — the replay's
    /// received transcript.
    pub received: String,
    /// `format_trace` of the trace's recorded `recv` events — what the
    /// original exchange answered.
    pub expected: String,
}

impl ReplayOutcome {
    /// Whether the replay reproduced the recorded replies byte-for-byte.
    pub fn matches(&self) -> bool {
        self.received == self.expected
    }

    /// First diverging transcript line as `(line_no, expected, received)`
    /// — `None` when [`ReplayOutcome::matches`].
    pub fn first_divergence(&self) -> Option<(usize, String, String)> {
        if self.matches() {
            return None;
        }
        let mut exp = self.expected.lines();
        let mut got = self.received.lines();
        let mut line_no = 0;
        loop {
            line_no += 1;
            match (exp.next(), got.next()) {
                (Some(e), Some(g)) if e == g => continue,
                (e, g) => {
                    return Some((
                        line_no,
                        e.unwrap_or("<end of transcript>").to_string(),
                        g.unwrap_or("<end of transcript>").to_string(),
                    ))
                }
            }
        }
    }
}

/// The recorded `recv` events of `events`, serialized as a standalone
/// trace — the canonical transcript replays are compared against.
pub fn recv_transcript(events: &[TraceEvent]) -> String {
    let recvs: Vec<TraceEvent> = events.iter().filter(|e| !e.is_send()).cloned().collect();
    format_trace(&recvs)
}

/// Replay a trace against a live server at `addr`.
///
/// Consecutive `send` events go out as one pipelined write (a writer
/// thread keeps a long burst from deadlocking against undrained
/// replies); each recorded `recv` reads one frame back. The server
/// closing the connection before every expected frame arrived is a
/// typed `E_IO` error.
pub fn replay_remote(addr: &str, events: &[TraceEvent]) -> Result<ReplayOutcome, ApiError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| ApiError::io(format!("connect {addr}: {e}")))?;
    let mut write_half = stream
        .try_clone()
        .map_err(|e| ApiError::io(format!("clone stream: {e}")))?;
    let ctrl = stream
        .try_clone()
        .map_err(|e| ApiError::io(format!("clone stream: {e}")))?;
    let mut reader = LineReader::new(stream);

    // Send batches flow through a channel to a writer thread, so a huge
    // batch can never wedge the replay against a server that stopped
    // reading to flush replies (same shape as `run_script_remote`).
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    // fv-lint: allow(no-spawn-outside-sanctioned-modules) -- replay-side writer thread, same deadlock-avoidance shape as client.rs; joined on teardown
    let writer = std::thread::spawn(move || {
        while let Ok(chunk) = rx.recv() {
            if write_half.write_all(chunk.as_bytes()).is_err() {
                return; // surfaces as missing frames on the read side
            }
        }
        let _ = write_half.shutdown(Shutdown::Write);
    });

    let mut run = || -> Result<(usize, Vec<TraceEvent>), ApiError> {
        let mut sends = 0usize;
        let mut replies = Vec::new();
        let mut batch = String::new();
        for event in events {
            match event {
                TraceEvent::Send(line) => {
                    batch.push_str(line);
                    batch.push('\n');
                    sends += 1;
                }
                TraceEvent::Recv(_) => {
                    if !batch.is_empty() {
                        let _ = tx.send(std::mem::take(&mut batch));
                    }
                    match read_reply(&mut reader)? {
                        Some(reply) => replies.push(TraceEvent::Recv(reply)),
                        None => {
                            return Err(ApiError::io(
                                "server closed the connection mid-replay (expected another \
                                 reply frame)",
                            ))
                        }
                    }
                }
            }
        }
        if !batch.is_empty() {
            let _ = tx.send(batch);
        }
        Ok((sends, replies))
    };
    let result = run();
    // Drop the sender (writer half-closes) and kill the socket before
    // joining, so an errored replay cannot leave the writer blocked.
    drop(tx);
    if result.is_err() {
        let _ = ctrl.shutdown(Shutdown::Both);
    }
    let _ = writer.join();
    let (sends, replies) = result?;

    Ok(ReplayOutcome {
        sends,
        received: recv_transcript(&replies),
        expected: recv_transcript(events),
        replies,
    })
}

/// Replay a trace against a fresh local hub with the given scene.
pub fn replay_local(
    scene: (usize, usize),
    events: &[TraceEvent],
) -> Result<ReplayOutcome, ApiError> {
    let mut hub = EngineHub::with_scene(scene.0, scene.1);
    replay_on_hub(&mut hub, events)
}

/// Replay a trace against a caller-owned hub (so state can be inspected
/// afterwards). Reply formatting mirrors the server frame-for-frame;
/// see the module docs for the supported plane.
pub fn replay_on_hub(
    hub: &mut EngineHub,
    events: &[TraceEvent],
) -> Result<ReplayOutcome, ApiError> {
    let mut current = EngineHub::default_session();
    let mut sends = 0usize;
    let mut replies: Vec<TraceEvent> = Vec::new();
    // Pending contiguous requests — flushed as ONE run (the grouping a
    // pipelining server applies) whenever a non-request line arrives.
    let mut run: Vec<Request> = Vec::new();

    let flush_run = |hub: &mut EngineHub,
                     current: &SessionId,
                     run: &mut Vec<Request>,
                     replies: &mut Vec<TraceEvent>| {
        if run.is_empty() {
            return;
        }
        let requests = std::mem::take(run);
        let outcome = hub.execute_run_on(current, &requests);
        for response in &outcome.responses {
            replies.push(TraceEvent::Recv(Ok(format_response(response))));
        }
        if let Some((idx, e)) = outcome.error {
            let skipped = ApiError::invalid(format!(
                "skipped: request {} earlier in this pipelined run failed ({})",
                idx + 1,
                e.code.as_str()
            ));
            replies.push(TraceEvent::Recv(Err(e)));
            for _ in idx + 1..requests.len() {
                replies.push(TraceEvent::Recv(Err(skipped.clone())));
            }
        }
    };

    for event in events {
        let TraceEvent::Send(line) = event else {
            continue; // recv events only assert; generation is send-driven
        };
        sends += 1;
        let item = match parse_wire_line(line) {
            Ok(Some(item)) => item,
            Ok(None) => continue, // blank/comment: no frame, like the server
            Err(e) => {
                flush_run(hub, &current, &mut run, &mut replies);
                replies.push(TraceEvent::Recv(Err(e)));
                continue;
            }
        };
        match item {
            WireItem::Script(ScriptItem::Request(request)) => run.push(request),
            WireItem::Script(ScriptItem::Use(name)) => {
                flush_run(hub, &current, &mut run, &mut replies);
                match SessionId::new(name) {
                    Ok(id) => {
                        hub.engine(&id); // materialize eagerly, `use` semantics
                        replies.push(TraceEvent::Recv(Ok(format!("using {id}"))));
                        current = id;
                    }
                    Err(e) => replies.push(TraceEvent::Recv(Err(e))),
                }
            }
            WireItem::Script(ScriptItem::Close(name)) => {
                flush_run(hub, &current, &mut run, &mut replies);
                match SessionId::new(name) {
                    Ok(id) => {
                        hub.close(&id);
                        replies.push(TraceEvent::Recv(Ok(format!("closed {id}"))));
                    }
                    Err(e) => replies.push(TraceEvent::Recv(Err(e))),
                }
            }
            WireItem::Close => {
                flush_run(hub, &current, &mut run, &mut replies);
                let closed = std::mem::replace(&mut current, EngineHub::default_session());
                hub.close(&closed);
                replies.push(TraceEvent::Recv(Ok(format!("closed {closed}"))));
            }
            WireItem::Ping => {
                flush_run(hub, &current, &mut run, &mut replies);
                replies.push(TraceEvent::Recv(Ok("pong".to_string())));
            }
            other => {
                flush_run(hub, &current, &mut run, &mut replies);
                let word = line.split_whitespace().next().unwrap_or("<control>");
                let _ = other;
                replies.push(TraceEvent::Recv(Err(ApiError::invalid(format!(
                    "`{word}` is a transport control; local replay covers the script plane \
                     (requests, use/close, ping) only"
                )))));
            }
        }
    }
    flush_run(hub, &current, &mut run, &mut replies);

    Ok(ReplayOutcome {
        sends,
        received: recv_transcript(&replies),
        expected: recv_transcript(events),
        replies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(s: &str) -> TraceEvent {
        TraceEvent::Send(s.to_string())
    }

    #[test]
    fn local_replay_answers_like_a_server_run() {
        // S S S R R R — one pipelined batch, so the three requests form
        // one run; the middle failure produces err + a skipped tail.
        let events = vec![
            send("use t"),
            send("scenario 60 7"),
            send("impute 9 3"),
            send("scroll 1"),
        ];
        let out = replay_local((640, 480), &events).unwrap();
        assert_eq!(out.sends, 4);
        assert_eq!(out.replies.len(), 4);
        assert_eq!(out.replies[0].ok_body(), Some("using t"));
        assert!(out.replies[1].ok_body().is_some(), "{:?}", out.replies[1]);
        let err = out.replies[2].err().expect("imputing dataset 9 fails");
        let tail = out.replies[3].err().expect("skipped tail");
        assert!(
            tail.message
                .starts_with("skipped: request 2 earlier in this pipelined run failed"),
            "{}",
            tail.message
        );
        assert!(tail.message.contains(err.code.as_str()));
    }

    #[test]
    fn local_replay_is_deterministic_across_fresh_hubs() {
        let events = vec![
            send("use det"),
            send("scenario 80 3"),
            send("cluster_all"),
            send("session_info"),
            send("ping"),
            send("close det"),
        ];
        let a = replay_local((640, 480), &events).unwrap();
        let b = replay_local((640, 480), &events).unwrap();
        assert_eq!(a.received, b.received);
        assert_eq!(a.replies.len(), 6);
    }

    #[test]
    fn transport_controls_answer_typed_errors_locally() {
        let events = vec![send("stats"), send("migrate x 1"), send("garbage word")];
        let out = replay_local((320, 240), &events).unwrap();
        assert!(out.replies[0].err().unwrap().message.contains("stats"));
        assert!(out.replies[1].err().unwrap().message.contains("migrate"));
        // an unparseable line answers its parse error, like the server
        assert!(out.replies[2].err().is_some());
    }

    #[test]
    fn divergence_reporting_points_at_the_first_differing_line() {
        let events = vec![
            send("ping"),
            TraceEvent::Recv(Ok("pang".to_string())), // recorded wrong on purpose
        ];
        let out = replay_local((320, 240), &events).unwrap();
        assert!(!out.matches());
        let (line, exp, got) = out.first_divergence().unwrap();
        assert!(line >= 2, "header matches; divergence is in the body");
        assert_eq!(exp, "recv ok pang");
        assert_eq!(got, "recv ok pong");
    }
}
