//! Process shards: the [`ShardBackend`] that runs each shard in a child
//! OS process, speaking a length-framed control protocol over a loopback
//! TCP socket.
//!
//! Everything that crosses the parent↔child seam is serializable text or
//! raw pixel bytes — requests and responses as their canonical wire
//! grammar (`fv_api::codec` / `fv_api::decode`), sessions as
//! [`SessionImage`] text, reports as the counter grammar below. The
//! child never sees an `Engine` value from the parent and vice versa,
//! which is the whole point: a shard that segfaults takes its sessions
//! with it, answers [`ErrorCode::ShardDown`] (`E_SHARD_DOWN`) from then
//! on, and leaves the server and every other shard healthy.
//!
//! ## Frame layer
//!
//! Every message is one frame: a 4-byte big-endian payload length, then
//! the payload. A payload starts with one `\n`-terminated UTF-8 header
//! line; depending on the verb it continues with more lines and/or
//! *blobs* (a decimal `<len>\n` line followed by exactly `len` raw
//! bytes). Requests and reports fit in lines; response text, session
//! images, error messages, and framebuffer pixels travel as blobs.
//!
//! ## Protocol grammar
//!
//! Child → parent, once, immediately after connecting:
//!
//! ```text
//! hello <shard>
//! ```
//!
//! Parent → child (one outstanding at a time per shard; the forwarder
//! thread serializes), and the reply each must produce:
//!
//! ```text
//! run <publish 0|1> <n> <session>      → run-done dropped=<0|1> nresp=<k>
//!   <n request lines>                      err=<-|idx:CODE> lat=<-|us,us,…>
//!                                          frame=<0|1>
//!                                        <k response blobs> [err-msg blob]
//!                                        [frame <w> <h> <nrects>
//!                                         <nrects "x y w h" lines>
//!                                         <rgb blob>]
//! close <session>                      → closed <0|1>
//! report                               → report shard=<i> runs=<r>
//!                                          requests=<q> max_run=<m>
//!                                          lat=<counts> lat_max_us=<u>
//!                                          cache=<e>,<h>,<m>,<ev>
//!                                          sessions=<k>
//!                                        <k "session datasets=<n>
//!                                           requests=<r> bytes=<b>
//!                                           name=<name>" lines>
//! extract <session>                    → extracted <0|1> [image blob]
//! snapshot <session>                   → snapshotted <0|1> [image blob]
//! install <session>                    → installed ok
//!   <image blob>                       | installed err <CODE>
//!                                        <msg blob> <image blob>
//! shutdown                             → bye            (then child exits)
//! ```
//!
//! A failed install hands the image blob back so the caller can restore
//! the session — the same never-lose-a-live-session contract as
//! [`WorkerCore::install`].
//!
//! ## Topology
//!
//! [`ProcBackend::spawn`] binds an ephemeral loopback listener, launches
//! `worker_cmd` once per shard (`fvtool shard-worker` in production, the
//! `fv-shard-worker` test binary under `cargo test`), and pairs each
//! child to its shard index via `hello`. One forwarder thread per shard
//! owns the socket and drains that shard's job queue in order: encode,
//! write, read, decode, fire the job's responder — exactly once, with a
//! typed `E_SHARD_DOWN` refusal if the child is gone. The child runs
//! [`worker_main`]: a single-threaded loop around a [`WorkerCore`] with
//! its own per-process [`DatasetCache`] (the cache seam is per child;
//! the parent aggregates the gauges from report replies).

use crate::metrics::LatencyHistogram;
use crate::shard::{Job, PubFrame, RunDone, SessionReport, ShardBackend, ShardReport, WorkerCore};
use fv_api::{
    format_request, format_response, format_session_image, parse_request, parse_response,
    parse_session_image, ApiError, CacheStats, DatasetCache, ErrorCode, RunOutcome, SessionId,
    SessionImage,
};
use fv_render::Framebuffer;
use fv_wall::tile::Viewport;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on one protocol frame. Must fit a keyframe-sized
/// rasterization (scene RGB) with room to spare; anything larger is a
/// corrupt length prefix, not a legitimate message.
const MAX_FRAME: usize = 64 * 1024 * 1024;

/// How long `spawn` waits for every child to connect and say `hello`.
const CONNECT_DEADLINE: Duration = Duration::from_secs(10);

/// How long `shutdown` waits for a child to exit after `bye` before
/// killing it — the zero-orphans guarantee.
const REAP_DEADLINE: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------

fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

fn read_frame(stream: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Append a blob (`<len>\n` + raw bytes) to a payload under construction.
fn push_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(format!("{}\n", bytes.len()).as_bytes());
    out.extend_from_slice(bytes);
}

/// Sequential reader over a received payload: lines, blobs, and a
/// trailing-bytes check. Every decode error is a typed `ApiError` so
/// both sides fail loudly on protocol corruption instead of panicking.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf }
    }

    fn line(&mut self) -> Result<&'a str, ApiError> {
        let pos = self
            .buf
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| ApiError::parse("frame truncated: missing line terminator"))?;
        let line = std::str::from_utf8(&self.buf[..pos])
            .map_err(|_| ApiError::parse("frame line is not valid UTF-8"))?;
        self.buf = &self.buf[pos + 1..];
        Ok(line)
    }

    fn blob(&mut self) -> Result<&'a [u8], ApiError> {
        let len: usize = num(self.line()?, "blob length")? as usize;
        if len > self.buf.len() {
            return Err(ApiError::parse(format!(
                "frame truncated: blob wants {len} bytes, {} remain",
                self.buf.len()
            )));
        }
        let (blob, rest) = self.buf.split_at(len);
        self.buf = rest;
        Ok(blob)
    }

    fn text_blob(&mut self) -> Result<&'a str, ApiError> {
        std::str::from_utf8(self.blob()?).map_err(|_| ApiError::parse("blob is not valid UTF-8"))
    }

    fn done(&self) -> Result<(), ApiError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ApiError::parse(format!(
                "{} unexpected trailing bytes in frame",
                self.buf.len()
            )))
        }
    }
}

fn num(s: &str, what: &str) -> Result<u64, ApiError> {
    s.parse()
        .map_err(|_| ApiError::parse(format!("bad {what} {s:?}")))
}

/// `key=value` field extractor for header lines (values never contain
/// spaces in this grammar).
fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, ApiError> {
    line.split(' ')
        .find_map(|part| part.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| ApiError::parse(format!("frame header is missing {key}=")))
}

fn session_id(name: &str) -> Result<SessionId, ApiError> {
    SessionId::new(name)
}

// ---------------------------------------------------------------------
// Message codec (both sides)
// ---------------------------------------------------------------------

/// Encode a job as a parent→child payload. Borrows the job — the caller
/// keeps it whole so its responder survives a transport failure.
fn encode_job(job: &Job) -> Vec<u8> {
    let mut out = Vec::new();
    match job {
        Job::Run {
            session,
            requests,
            publish,
            ..
        } => {
            out.extend_from_slice(
                format!("run {} {} {session}\n", *publish as u8, requests.len()).as_bytes(),
            );
            for request in requests {
                out.extend_from_slice(format_request(request).as_bytes());
                out.push(b'\n');
            }
        }
        Job::Close { session, .. } => {
            out.extend_from_slice(format!("close {session}\n").as_bytes())
        }
        Job::Report { .. } => out.extend_from_slice(b"report\n"),
        Job::Extract { session, .. } => {
            out.extend_from_slice(format!("extract {session}\n").as_bytes())
        }
        Job::Snapshot { session, .. } => {
            out.extend_from_slice(format!("snapshot {session}\n").as_bytes())
        }
        Job::Install { session, image, .. } => {
            out.extend_from_slice(format!("install {session}\n").as_bytes());
            push_blob(&mut out, format_session_image(image).as_bytes());
        }
        Job::Shutdown => out.extend_from_slice(b"shutdown\n"),
    }
    out
}

fn encode_run_done(done: &RunDone) -> Vec<u8> {
    let err_spec = match &done.outcome.error {
        None => "-".to_string(),
        Some((idx, e)) => format!("{idx}:{}", e.code.as_str()),
    };
    let lat_spec = if done.outcome.latencies.is_empty() {
        "-".to_string()
    } else {
        done.outcome
            .latencies
            .iter()
            .map(|l| l.as_micros().min(u64::MAX as u128).to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let mut out = format!(
        "run-done dropped={} nresp={} err={err_spec} lat={lat_spec} frame={}\n",
        done.session_dropped as u8,
        done.outcome.responses.len(),
        done.frame.is_some() as u8,
    )
    .into_bytes();
    for response in &done.outcome.responses {
        push_blob(&mut out, format_response(response).as_bytes());
    }
    if let Some((_, e)) = &done.outcome.error {
        push_blob(&mut out, e.message.as_bytes());
    }
    if let Some(frame) = &done.frame {
        out.extend_from_slice(
            format!(
                "frame {} {} {}\n",
                frame.wall.width(),
                frame.wall.height(),
                frame.damage.len()
            )
            .as_bytes(),
        );
        for d in &frame.damage {
            out.extend_from_slice(format!("{} {} {} {}\n", d.x, d.y, d.w, d.h).as_bytes());
        }
        push_blob(&mut out, frame.wall.bytes());
    }
    out
}

fn decode_run_done(payload: &[u8], session: &SessionId) -> Result<RunDone, ApiError> {
    let mut c = Cursor::new(payload);
    let header = c.line()?;
    if !header.starts_with("run-done ") {
        return Err(ApiError::parse(format!(
            "expected run-done, got {header:?}"
        )));
    }
    let dropped = field(header, "dropped")? == "1";
    let nresp = num(field(header, "nresp")?, "response count")? as usize;
    let err_spec = field(header, "err")?;
    let lat_spec = field(header, "lat")?;
    let has_frame = field(header, "frame")? == "1";
    let mut responses = Vec::with_capacity(nresp);
    for _ in 0..nresp {
        responses.push(parse_response(c.text_blob()?)?);
    }
    let error = if err_spec == "-" {
        None
    } else {
        let (idx, code) = err_spec
            .split_once(':')
            .ok_or_else(|| ApiError::parse(format!("bad err spec {err_spec:?}")))?;
        let code = ErrorCode::from_wire(code)
            .ok_or_else(|| ApiError::parse(format!("unknown error code {code:?}")))?;
        let message = c.text_blob()?.to_string();
        Some((
            num(idx, "failing request index")? as usize,
            ApiError::new(code, message),
        ))
    };
    let latencies = if lat_spec == "-" {
        Vec::new()
    } else {
        lat_spec
            .split(',')
            .map(|us| num(us, "latency").map(Duration::from_micros))
            .collect::<Result<_, _>>()?
    };
    let frame = if has_frame {
        let fl = c.line()?;
        let mut parts = fl.split(' ');
        let (verb, w, h, nrects) = (parts.next(), parts.next(), parts.next(), parts.next());
        if verb != Some("frame") || parts.next().is_some() {
            return Err(ApiError::parse(format!("bad frame line {fl:?}")));
        }
        let w = num(w.unwrap_or(""), "frame width")? as usize;
        let h = num(h.unwrap_or(""), "frame height")? as usize;
        let nrects = num(nrects.unwrap_or(""), "damage rect count")? as usize;
        if w.saturating_mul(h).saturating_mul(3) > MAX_FRAME {
            return Err(ApiError::parse(format!(
                "frame {w}x{h} is implausibly large"
            )));
        }
        let mut damage = Vec::with_capacity(nrects);
        for _ in 0..nrects {
            let rl = c.line()?;
            let mut n = rl.split(' ').map(|v| num(v, "damage rect"));
            let (x, y, rw, rh) = (n.next(), n.next(), n.next(), n.next());
            match (x, y, rw, rh, n.next()) {
                (Some(x), Some(y), Some(rw), Some(rh), None) => damage.push(Viewport {
                    x: x? as usize,
                    y: y? as usize,
                    w: rw? as usize,
                    h: rh? as usize,
                }),
                _ => return Err(ApiError::parse(format!("bad damage rect {rl:?}"))),
            }
        }
        let rgb = c.blob()?;
        if rgb.len() != w * h * 3 {
            return Err(ApiError::parse(format!(
                "frame pixel blob is {} bytes, {w}x{h} needs {}",
                rgb.len(),
                w * h * 3
            )));
        }
        let mut wall = Framebuffer::new(w, h);
        wall.write_rect(0, 0, w, h, rgb);
        Some(PubFrame {
            session: session.clone(),
            wall,
            damage,
        })
    } else {
        None
    };
    c.done()?;
    Ok(RunDone {
        outcome: RunOutcome {
            responses,
            error,
            latencies,
        },
        session_dropped: dropped,
        frame,
    })
}

fn encode_report(report: &ShardReport, cache: &CacheStats) -> Vec<u8> {
    let mut out = format!(
        "report shard={} runs={} requests={} max_run={} lat={} lat_max_us={} \
         cache={},{},{},{} sessions={}\n",
        report.shard,
        report.runs,
        report.requests,
        report.max_run,
        report.latency.format(),
        report.latency.max_us,
        cache.entries,
        cache.hits,
        cache.misses,
        cache.evictions,
        report.sessions.len(),
    )
    .into_bytes();
    for s in &report.sessions {
        out.extend_from_slice(
            format!(
                "session datasets={} requests={} bytes={} name={}\n",
                s.n_datasets, s.requests, s.dataset_bytes, s.name
            )
            .as_bytes(),
        );
    }
    out
}

fn decode_report(payload: &[u8]) -> Result<(ShardReport, CacheStats), ApiError> {
    let mut c = Cursor::new(payload);
    let header = c.line()?;
    if !header.starts_with("report ") {
        return Err(ApiError::parse(format!("expected report, got {header:?}")));
    }
    let n_sessions = num(field(header, "sessions")?, "session count")? as usize;
    let cache_spec = field(header, "cache")?;
    let mut cs = cache_spec.split(',').map(|v| num(v, "cache gauge"));
    let cache = match (cs.next(), cs.next(), cs.next(), cs.next(), cs.next()) {
        (Some(e), Some(h), Some(m), Some(ev), None) => CacheStats {
            entries: e? as usize,
            hits: h?,
            misses: m?,
            evictions: ev?,
        },
        _ => return Err(ApiError::parse(format!("bad cache gauges {cache_spec:?}"))),
    };
    let mut sessions = Vec::with_capacity(n_sessions);
    for _ in 0..n_sessions {
        let row = c.line()?;
        if !row.starts_with("session ") {
            return Err(ApiError::parse(format!("bad session row {row:?}")));
        }
        sessions.push(SessionReport {
            name: field(row, "name")?.to_string(),
            n_datasets: num(field(row, "datasets")?, "dataset count")? as usize,
            requests: num(field(row, "requests")?, "session requests")?,
            dataset_bytes: num(field(row, "bytes")?, "dataset bytes")?,
        });
    }
    c.done()?;
    Ok((
        ShardReport {
            shard: num(field(header, "shard")?, "shard index")? as usize,
            sessions,
            runs: num(field(header, "runs")?, "runs")?,
            requests: num(field(header, "requests")?, "requests")?,
            max_run: num(field(header, "max_run")?, "max_run")? as usize,
            latency: LatencyHistogram::parse(field(header, "lat")?, field(header, "lat_max_us")?)?,
        },
        cache,
    ))
}

fn decode_closed(payload: &[u8]) -> Result<bool, ApiError> {
    let mut c = Cursor::new(payload);
    let header = c.line()?;
    c.done()?;
    match header {
        "closed 0" => Ok(false),
        "closed 1" => Ok(true),
        other => Err(ApiError::parse(format!("expected closed, got {other:?}"))),
    }
}

fn decode_extracted(payload: &[u8]) -> Result<Option<SessionImage>, ApiError> {
    let mut c = Cursor::new(payload);
    let header = c.line()?;
    let image = match header {
        "extracted 0" => None,
        "extracted 1" => Some(parse_session_image(c.text_blob()?)?),
        other => {
            return Err(ApiError::parse(format!(
                "expected extracted, got {other:?}"
            )))
        }
    };
    c.done()?;
    Ok(image)
}

fn decode_snapshotted(payload: &[u8]) -> Result<Option<SessionImage>, ApiError> {
    let mut c = Cursor::new(payload);
    let header = c.line()?;
    let image = match header {
        "snapshotted 0" => None,
        "snapshotted 1" => Some(parse_session_image(c.text_blob()?)?),
        other => {
            return Err(ApiError::parse(format!(
                "expected snapshotted, got {other:?}"
            )))
        }
    };
    c.done()?;
    Ok(image)
}

type InstallResult = Result<(), (SessionImage, ApiError)>;

fn decode_installed(payload: &[u8]) -> Result<InstallResult, ApiError> {
    let mut c = Cursor::new(payload);
    let header = c.line()?;
    if header == "installed ok" {
        c.done()?;
        return Ok(Ok(()));
    }
    let code = header
        .strip_prefix("installed err ")
        .and_then(ErrorCode::from_wire)
        .ok_or_else(|| ApiError::parse(format!("expected installed, got {header:?}")))?;
    let message = c.text_blob()?.to_string();
    let image = parse_session_image(c.text_blob()?)?;
    c.done()?;
    Ok(Err((image, ApiError::new(code, message))))
}

// ---------------------------------------------------------------------
// Parent side: ProcBackend
// ---------------------------------------------------------------------

/// The process-shard backend: one child worker process per shard, one
/// forwarder thread per child to bridge the in-memory [`Job`] queue onto
/// the control socket. See the module docs for the protocol.
pub(crate) struct ProcBackend {
    senders: Vec<mpsc::Sender<Job>>,
    depth: Arc<Vec<AtomicUsize>>,
    pids: Vec<u32>,
    /// Last-known per-child dataset-cache gauges, refreshed from every
    /// report reply; `cache_stats` sums them. Each child owns a private
    /// cache, so the sum (not a shared cache's view) is the truth.
    cache: Arc<Mutex<Vec<CacheStats>>>,
    forwarders: Mutex<Vec<JoinHandle<()>>>,
    children: Mutex<Vec<Child>>,
}

fn down(shard: usize, pid: u32) -> ApiError {
    ApiError::shard_down(format!(
        "shard {shard} worker process (pid {pid}) is gone; its sessions are lost"
    ))
}

fn kill_all(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
}

impl ProcBackend {
    /// Launch `n` worker processes and pair each to a shard. `worker_cmd`
    /// is the argv prefix to exec (`["/path/to/fvtool", "shard-worker"]`
    /// in production); `--connect/--shard/--scene` are appended per
    /// child, plus `--refuse-install` on the `refuse_install_to` shard
    /// (the migration-restore fault tests inject). Fails — with every
    /// already-spawned child killed — if any child dies or fails to
    /// say `hello` within the deadline.
    pub fn spawn(
        worker_cmd: &[String],
        n: usize,
        scene: (usize, usize),
        refuse_install_to: Option<usize>,
    ) -> io::Result<ProcBackend> {
        let n = n.max(1);
        let (program, prefix) = worker_cmd.split_first().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "empty shard worker command")
        })?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let mut children: Vec<Child> = Vec::with_capacity(n);
        for shard in 0..n {
            let mut cmd = Command::new(program);
            cmd.args(prefix)
                .arg("--connect")
                .arg(addr.to_string())
                .arg("--shard")
                .arg(shard.to_string())
                .arg("--scene")
                .arg(format!("{}x{}", scene.0, scene.1))
                .stdin(Stdio::null());
            if refuse_install_to == Some(shard) {
                cmd.arg("--refuse-install");
            }
            match cmd.spawn() {
                Ok(child) => children.push(child),
                Err(e) => {
                    kill_all(&mut children);
                    return Err(e);
                }
            }
        }
        let slots = match Self::pair(&listener, &mut children, n) {
            Ok(slots) => slots,
            Err(e) => {
                kill_all(&mut children);
                return Err(e);
            }
        };
        drop(listener);
        let pids: Vec<u32> = children.iter().map(Child::id).collect();
        let depth: Arc<Vec<AtomicUsize>> = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        let cache = Arc::new(Mutex::new(vec![CacheStats::default(); n]));
        let mut senders = Vec::with_capacity(n);
        let mut forwarders = Vec::with_capacity(n);
        for (shard, stream) in slots.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            let depth = Arc::clone(&depth);
            let cache = Arc::clone(&cache);
            let pid = pids[shard];
            let spawned = std::thread::Builder::new()
                .name(format!("fv-net-procshard-{shard}"))
                .spawn(move || forward(shard, pid, stream, rx, depth, cache));
            match spawned {
                Ok(handle) => forwarders.push(handle),
                Err(e) => {
                    // Dropping `senders` unblocks the forwarders already
                    // running; then reap everything.
                    drop(senders);
                    for f in forwarders {
                        let _ = f.join();
                    }
                    kill_all(&mut children);
                    return Err(e);
                }
            }
        }
        Ok(ProcBackend {
            senders,
            depth,
            pids,
            cache,
            forwarders: Mutex::new(forwarders),
            children: Mutex::new(children),
        })
    }

    /// Accept loop of `spawn`: wait for all `n` children to connect and
    /// identify themselves, watching for early child exits so a broken
    /// worker command fails fast instead of timing out.
    fn pair(
        listener: &TcpListener,
        children: &mut [Child],
        n: usize,
    ) -> io::Result<Vec<TcpStream>> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let deadline = Instant::now() + CONNECT_DEADLINE;
        let mut slots: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
        let mut connected = 0;
        while connected < n {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
                    let hello = read_frame(&mut stream)?;
                    let mut c = Cursor::new(&hello);
                    let shard = c
                        .line()
                        .and_then(|l| {
                            num(
                                l.strip_prefix("hello ").unwrap_or("not a hello"),
                                "hello shard index",
                            )
                        })
                        .map_err(|e| bad(e.message))? as usize;
                    if shard >= n {
                        return Err(bad(format!("hello from out-of-range shard {shard}")));
                    }
                    if slots[shard].is_some() {
                        return Err(bad(format!("two workers claimed shard {shard}")));
                    }
                    stream.set_read_timeout(None)?;
                    slots[shard] = Some(stream);
                    connected += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            format!("{connected}/{n} shard workers connected before the deadline"),
                        ));
                    }
                    for (shard, child) in children.iter_mut().enumerate() {
                        if let Ok(Some(status)) = child.try_wait() {
                            return Err(bad(format!(
                                "shard {shard} worker exited at startup ({status})"
                            )));
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        // All slots are Some once `connected == n`; flatten without
        // panicking anyway.
        Ok(slots.into_iter().flatten().collect())
    }
}

impl ShardBackend for ProcBackend {
    fn kind(&self) -> &'static str {
        "procs"
    }

    fn n_shards(&self) -> usize {
        self.senders.len()
    }

    fn pids(&self) -> Vec<u32> {
        self.pids.clone()
    }

    fn queue_depths(&self) -> Vec<usize> {
        self.depth
            .iter()
            .map(|d| d.load(Ordering::SeqCst))
            .collect()
    }

    fn cache_stats(&self) -> CacheStats {
        let mut sum = CacheStats::default();
        if let Ok(per_child) = self.cache.lock() {
            for c in per_child.iter() {
                sum.entries += c.entries;
                sum.hits += c.hits;
                sum.misses += c.misses;
                sum.evictions += c.evictions;
            }
        }
        sum
    }

    fn submit(&self, shard: usize, job: Job) {
        self.depth[shard].fetch_add(1, Ordering::SeqCst);
        if let Err(mpsc::SendError(job)) = self.senders[shard].send(job) {
            self.depth[shard].fetch_sub(1, Ordering::SeqCst);
            job.respond_shard_down(down(shard, self.pids[shard]));
        }
    }

    fn shutdown(&self) {
        for shard in 0..self.senders.len() {
            self.submit(shard, Job::Shutdown);
        }
        let forwarders = match self.forwarders.lock() {
            Ok(mut f) => std::mem::take(&mut *f),
            Err(_) => return,
        };
        for f in forwarders {
            let _ = f.join();
        }
        let children = match self.children.lock() {
            Ok(mut c) => std::mem::take(&mut *c),
            Err(_) => return,
        };
        for mut child in children {
            // The worker answered `bye` (or its socket is gone); give it
            // a moment to exit on its own, then make sure — no orphans.
            let deadline = Instant::now() + REAP_DEADLINE;
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10))
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }
}

/// Per-shard forwarder: owns the control socket, drains the shard's job
/// queue strictly in order. One outstanding protocol exchange at a time
/// — the shard itself is serial, so the socket being serial costs no
/// parallelism. A transport or decode failure marks the shard dead;
/// every queued and future job then gets the typed `E_SHARD_DOWN`
/// refusal, and an [`Job::Install`]'s image is handed back untouched.
fn forward(
    shard: usize,
    pid: u32,
    mut stream: TcpStream,
    rx: mpsc::Receiver<Job>,
    depth: Arc<Vec<AtomicUsize>>,
    cache: Arc<Mutex<Vec<CacheStats>>>,
) {
    let mut dead = false;
    while let Ok(job) = rx.recv() {
        depth[shard].fetch_sub(1, Ordering::SeqCst);
        if matches!(job, Job::Shutdown) {
            if !dead {
                let _ = write_frame(&mut stream, &encode_job(&job));
                // Wait for `bye` so the child has drained before the
                // parent starts reaping.
                let _ = read_frame(&mut stream);
            }
            break;
        }
        if dead {
            job.respond_shard_down(down(shard, pid));
            continue;
        }
        let payload = encode_job(&job);
        let reply = write_frame(&mut stream, &payload).and_then(|_| read_frame(&mut stream));
        let reply = match reply {
            Ok(reply) => reply,
            Err(_) => {
                dead = true;
                job.respond_shard_down(down(shard, pid));
                continue;
            }
        };
        // Decode per job kind. A malformed reply also counts as a dead
        // shard (the protocol is corrupt; nothing it says can be
        // trusted), but the responder still fires exactly once.
        match job {
            Job::Shutdown => {}
            Job::Run {
                session, respond, ..
            } => match decode_run_done(&reply, &session) {
                Ok(done) => respond(done),
                Err(_) => {
                    dead = true;
                    respond(RunDone {
                        outcome: RunOutcome {
                            responses: Vec::new(),
                            error: Some((0, down(shard, pid))),
                            latencies: Vec::new(),
                        },
                        session_dropped: false,
                        frame: None,
                    });
                }
            },
            Job::Close { respond, .. } => match decode_closed(&reply) {
                Ok(existed) => respond(existed),
                Err(_) => {
                    dead = true;
                    respond(false);
                }
            },
            Job::Report {
                shard: target,
                respond,
            } => match decode_report(&reply) {
                Ok((report, child_cache)) => {
                    if let Ok(mut per_child) = cache.lock() {
                        if let Some(slot) = per_child.get_mut(shard) {
                            *slot = child_cache;
                        }
                    }
                    respond(report);
                }
                Err(_) => {
                    dead = true;
                    respond(ShardReport::empty(target));
                }
            },
            Job::Extract { respond, .. } => match decode_extracted(&reply) {
                Ok(image) => respond(image),
                Err(_) => {
                    dead = true;
                    respond(None);
                }
            },
            Job::Snapshot { respond, .. } => match decode_snapshotted(&reply) {
                Ok(image) => respond(image),
                Err(_) => {
                    dead = true;
                    respond(None);
                }
            },
            Job::Install { image, respond, .. } => match decode_installed(&reply) {
                Ok(result) => respond(result),
                Err(_) => {
                    dead = true;
                    respond(Err((image, down(shard, pid))));
                }
            },
        }
    }
}

// ---------------------------------------------------------------------
// Child side: worker_main
// ---------------------------------------------------------------------

enum Served {
    Reply(Vec<u8>),
    Bye,
}

/// Serve one decoded parent frame against the core. Pure protocol — no
/// I/O — so tests can drive the full parent↔child codec in memory.
fn serve_frame(core: &mut WorkerCore, payload: &[u8]) -> Result<Served, ApiError> {
    let mut c = Cursor::new(payload);
    let header = c.line()?;
    let (verb, rest) = header.split_once(' ').unwrap_or((header, ""));
    match verb {
        "run" => {
            let mut parts = rest.splitn(3, ' ');
            let (publish, n, session) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(n), Some(s)) => {
                    (p == "1", num(n, "request count")? as usize, session_id(s)?)
                }
                _ => return Err(ApiError::parse(format!("bad run header {header:?}"))),
            };
            let mut requests = Vec::with_capacity(n);
            for _ in 0..n {
                requests.push(parse_request(c.line()?)?);
            }
            c.done()?;
            let done = core.run(&session, &requests, publish);
            Ok(Served::Reply(encode_run_done(&done)))
        }
        "close" => {
            c.done()?;
            let existed = core.close(&session_id(rest)?);
            Ok(Served::Reply(
                format!("closed {}\n", existed as u8).into_bytes(),
            ))
        }
        "report" => {
            c.done()?;
            Ok(Served::Reply(encode_report(
                &core.report(),
                &core.cache_stats(),
            )))
        }
        "extract" => {
            c.done()?;
            let reply = match core.extract(&session_id(rest)?) {
                Some(image) => {
                    let mut out = b"extracted 1\n".to_vec();
                    push_blob(&mut out, format_session_image(&image).as_bytes());
                    out
                }
                None => b"extracted 0\n".to_vec(),
            };
            Ok(Served::Reply(reply))
        }
        "snapshot" => {
            c.done()?;
            let reply = match core.snapshot(&session_id(rest)?) {
                Some(image) => {
                    let mut out = b"snapshotted 1\n".to_vec();
                    push_blob(&mut out, format_session_image(&image).as_bytes());
                    out
                }
                None => b"snapshotted 0\n".to_vec(),
            };
            Ok(Served::Reply(reply))
        }
        "install" => {
            let session = session_id(rest)?;
            let image = parse_session_image(c.text_blob()?)?;
            c.done()?;
            let reply = match core.install(&session, image) {
                Ok(()) => b"installed ok\n".to_vec(),
                Err((image, e)) => {
                    let mut out = format!("installed err {}\n", e.code.as_str()).into_bytes();
                    push_blob(&mut out, e.message.as_bytes());
                    push_blob(&mut out, format_session_image(&image).as_bytes());
                    out
                }
            };
            Ok(Served::Reply(reply))
        }
        "shutdown" => {
            c.done()?;
            Ok(Served::Bye)
        }
        other => Err(ApiError::parse(format!("unknown verb {other:?}"))),
    }
}

/// Entry point of a shard worker process (`fvtool shard-worker`, or the
/// `fv-shard-worker` binary tests spawn). Connects back to the parent,
/// announces its shard index, then serves protocol frames one at a time
/// against a [`WorkerCore`] with its own [`DatasetCache`] until
/// `shutdown` (clean exit) or EOF (parent died — exit quietly; there is
/// nobody left to serve). Errors are returned as text for the caller to
/// print and map to a nonzero exit.
pub fn worker_main(args: &[String]) -> Result<(), String> {
    let mut connect = None;
    let mut shard = None;
    let mut scene = None;
    let mut refuse_install = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a value"))
                .cloned()
        };
        match arg.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--shard" => {
                shard = Some(
                    value("--shard")?
                        .parse::<usize>()
                        .map_err(|_| "--shard needs an index".to_string())?,
                )
            }
            "--scene" => {
                let spec = value("--scene")?;
                let (w, h) = spec
                    .split_once('x')
                    .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                    .ok_or_else(|| format!("--scene needs WxH, got {spec:?}"))?;
                scene = Some((w, h));
            }
            "--refuse-install" => refuse_install = true,
            other => return Err(format!("unknown shard-worker flag {other:?}")),
        }
    }
    let addr = connect.ok_or("shard-worker needs --connect <addr>")?;
    let shard = shard.ok_or("shard-worker needs --shard <index>")?;
    let scene = scene.ok_or("shard-worker needs --scene <WxH>")?;
    let mut stream =
        TcpStream::connect(&addr).map_err(|e| format!("connect to parent at {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    write_frame(&mut stream, format!("hello {shard}\n").as_bytes())
        .map_err(|e| format!("hello: {e}"))?;
    let mut core = WorkerCore::new(shard, scene, DatasetCache::new(), refuse_install);
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(payload) => payload,
            // Parent is gone; nothing left to serve and nobody to tell.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(format!("shard {shard}: read: {e}")),
        };
        let reply = match serve_frame(&mut core, &payload) {
            Ok(Served::Reply(reply)) => reply,
            Ok(Served::Bye) => {
                let _ = write_frame(&mut stream, b"bye\n");
                return Ok(());
            }
            // A corrupt frame from the parent: the channel cannot be
            // trusted, so die loudly and let the parent's forwarder
            // declare the shard down.
            Err(e) => return Err(format!("shard {shard}: protocol: {e}")),
        };
        write_frame(&mut stream, &reply).map_err(|e| format!("shard {shard}: write: {e}"))?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_api::{Mutation, Query, Request};

    fn core() -> WorkerCore {
        WorkerCore::new(0, (640, 480), DatasetCache::new(), false)
    }

    /// Drive a parent-encoded job through the child's serve path in
    /// memory — the full codec round trip with no process or socket.
    fn exchange(core: &mut WorkerCore, job: &Job) -> Vec<u8> {
        match serve_frame(core, &encode_job(job)).expect("serve") {
            Served::Reply(reply) => reply,
            Served::Bye => b"bye\n".to_vec(),
        }
    }

    fn run_job(session: &SessionId, requests: Vec<Request>, publish: bool) -> Job {
        Job::Run {
            session: session.clone(),
            requests,
            publish,
            respond: Box::new(|_| {}),
        }
    }

    #[test]
    fn run_round_trips_responses_errors_and_latencies() {
        let mut core = core();
        let s = SessionId::new("s").unwrap();
        let reply = exchange(
            &mut core,
            &run_job(
                &s,
                vec![
                    Request::Mutate(Mutation::LoadScenario {
                        n_genes: 60,
                        seed: 1,
                    }),
                    Request::Query(Query::SessionInfo),
                    Request::Mutate(Mutation::Impute { dataset: 9, k: 3 }),
                ],
                false,
            ),
        );
        let done = decode_run_done(&reply, &s).expect("decode");
        assert_eq!(done.outcome.responses.len(), 2);
        let (idx, err) = done.outcome.error.expect("bad impute fails");
        assert_eq!(idx, 2);
        assert_eq!(err.code, ErrorCode::NotFound);
        assert_eq!(done.outcome.latencies.len(), 3, "one per attempted request");
        assert!(!done.session_dropped);
        assert!(done.frame.is_none(), "publish was off");
        // The child recorded the run in its counters.
        let report_reply = exchange(&mut core, &run_job(&s, Vec::new(), false));
        let done = decode_run_done(&report_reply, &s).unwrap();
        assert!(done.outcome.error.is_none(), "empty run materializes only");
    }

    #[test]
    fn published_run_ships_the_framebuffer_and_damage() {
        let mut core = core();
        let s = SessionId::new("viewer").unwrap();
        let reply = exchange(
            &mut core,
            &run_job(
                &s,
                vec![Request::Mutate(Mutation::LoadScenario {
                    n_genes: 60,
                    seed: 1,
                })],
                true,
            ),
        );
        let done = decode_run_done(&reply, &s).expect("decode");
        let frame = done.frame.expect("published run carries a frame");
        assert_eq!(frame.session, s);
        assert_eq!((frame.wall.width(), frame.wall.height()), (640, 480));
        assert_eq!(frame.damage.len(), 1, "a load damages the full scene");
        assert_eq!(frame.wall.bytes().len(), 640 * 480 * 3);
        assert!(
            frame.wall.bytes().iter().any(|&b| b != 0),
            "the shipped render is not blank"
        );
    }

    #[test]
    fn close_extract_install_round_trip_via_the_wire_codec() {
        let mut core = core();
        let s = SessionId::new("mover").unwrap();
        exchange(
            &mut core,
            &run_job(
                &s,
                vec![Request::Mutate(Mutation::LoadScenario {
                    n_genes: 60,
                    seed: 2,
                })],
                false,
            ),
        );
        // snapshot: a checkpoint copy, the session keeps serving…
        let reply = exchange(
            &mut core,
            &Job::Snapshot {
                session: s.clone(),
                respond: Box::new(|_| {}),
            },
        );
        let copy = decode_snapshotted(&reply).unwrap().expect("session live");
        assert_eq!(copy.log.len(), 1);
        // …an unknown session snapshots to nothing…
        let reply = exchange(
            &mut core,
            &Job::Snapshot {
                session: SessionId::new("ghost").unwrap(),
                respond: Box::new(|_| {}),
            },
        );
        assert!(decode_snapshotted(&reply).unwrap().is_none());
        // extract: the session leaves as an image…
        let reply = exchange(
            &mut core,
            &Job::Extract {
                session: s.clone(),
                respond: Box::new(|_| {}),
            },
        );
        let image = decode_extracted(&reply).unwrap().expect("session existed");
        assert_eq!(image.log.len(), 1);
        assert_eq!(
            fv_api::format_session_image(&copy),
            fv_api::format_session_image(&image),
            "snapshot and extract see the same state"
        );
        // …a second extract finds nothing…
        let reply = exchange(
            &mut core,
            &Job::Extract {
                session: s.clone(),
                respond: Box::new(|_| {}),
            },
        );
        assert!(decode_extracted(&reply).unwrap().is_none());
        // …install brings it back…
        let reply = exchange(
            &mut core,
            &Job::Install {
                session: s.clone(),
                image: image.clone(),
                respond: Box::new(|_| {}),
            },
        );
        assert!(decode_installed(&reply).unwrap().is_ok());
        // …a duplicate install is refused WITH the image returned…
        let reply = exchange(
            &mut core,
            &Job::Install {
                session: s.clone(),
                image,
                respond: Box::new(|_| {}),
            },
        );
        let (returned, why) = decode_installed(&reply).unwrap().expect_err("occupied");
        assert_eq!(why.code, ErrorCode::InvalidRequest);
        assert_eq!(returned.log.len(), 1, "image survived the refusal");
        // …and close reports existence faithfully.
        let reply = exchange(
            &mut core,
            &Job::Close {
                session: s.clone(),
                respond: Box::new(|_| {}),
            },
        );
        assert!(decode_closed(&reply).unwrap());
        let reply = exchange(
            &mut core,
            &Job::Close {
                session: s,
                respond: Box::new(|_| {}),
            },
        );
        assert!(!decode_closed(&reply).unwrap());
    }

    #[test]
    fn report_round_trips_counters_cache_and_sessions() {
        let mut core = core();
        let s = SessionId::new("alpha").unwrap();
        exchange(
            &mut core,
            &run_job(
                &s,
                vec![Request::Mutate(Mutation::LoadScenario {
                    n_genes: 60,
                    seed: 1,
                })],
                false,
            ),
        );
        let reply = exchange(
            &mut core,
            &Job::Report {
                shard: 0,
                respond: Box::new(|_| {}),
            },
        );
        let (report, cache) = decode_report(&reply).expect("decode");
        assert_eq!(report.shard, 0);
        assert_eq!(report.runs, 1);
        assert_eq!(report.requests, 1);
        assert_eq!(report.max_run, 1);
        assert_eq!(report.latency.total(), 1);
        assert_eq!(report.sessions.len(), 1);
        assert_eq!(report.sessions[0].name, "alpha");
        assert_eq!(report.sessions[0].n_datasets, 3);
        assert!(report.sessions[0].dataset_bytes > 0);
        assert_eq!(cache.misses, 0, "scenario loads bypass the file cache");
    }

    #[test]
    fn corrupt_frames_are_typed_errors_not_panics() {
        let mut core = core();
        for garbage in [
            &b""[..],
            b"warble\n",
            b"run\n",
            b"run 1 one s\n",
            b"run 0 1 s\n",                // missing request line
            b"install s\n5\nnot an image", // bad blob / bad image
            b"close not a session\n",      // whitespace in name
            b"report trailing\nextra",     // trailing bytes
        ] {
            assert!(
                serve_frame(&mut core, garbage).is_err(),
                "{garbage:?} must be rejected"
            );
        }
        // Reply decoders reject corrupt payloads the same way.
        let s = SessionId::new("s").unwrap();
        assert!(decode_run_done(b"nope\n", &s).is_err());
        assert!(decode_closed(b"closed 7\n").is_err());
        assert!(decode_extracted(b"extracted 1\n").is_err(), "missing blob");
        assert!(
            decode_snapshotted(b"snapshotted 1\n").is_err(),
            "missing blob"
        );
        assert!(decode_snapshotted(b"snapshotted 2\n").is_err());
        assert!(decode_installed(b"installed err E_NOPE\n").is_err());
        assert!(decode_report(b"report shard=0\n").is_err());
    }
}
