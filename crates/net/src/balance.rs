//! Load-aware automatic shard rebalancing.
//!
//! PR 4 gave the transport the *mechanism* — `migrate <session> <shard>`
//! moves a live engine across shards with zero re-parse — but placement
//! stayed operator-driven, so a hot shard stays hot under skewed traffic.
//! This module adds the *policy*: the server periodically snapshots the
//! per-shard signals it already collects (queue depth, cumulative
//! request counters, latency histograms, per-session cost estimates from
//! the hubs) and plans migrations that even the load out.
//!
//! The design splits three ways, strictest at the core:
//!
//! - [`plan_moves`] — the **pure policy**: a clock-free, socket-free
//!   function of a [`ShardSnapshot`] and a [`BalanceConfig`] to a
//!   `Vec<MovePlan>`. Every invariant the simulation and property tests
//!   rely on lives here: moves never target their source shard, never
//!   exceed the per-tick budget, never pick a pinned (cooling-down or
//!   in-flight) session, never move one session twice in a plan, and
//!   always strictly narrow the donor–receiver pair's maximum (a
//!   receiver never ends up at or above its donor's pre-move load).
//! - [`Balancer`] — deterministic **tick state**, still clock-free: it
//!   turns cumulative observations ([`ShardObservation`]) into the
//!   per-interval load deltas the policy consumes, tracks per-session
//!   cooldowns by tick number, and keeps the counters and recent-move
//!   ring the `balance` wire line reports. A simulation drives it with
//!   scripted observations; the server drives it from a wall-clock
//!   timer. A session enters cooldown when its move is *planned* — a
//!   failed move cools down too, so the balancer never hammers a
//!   refusing target.
//! - The server (`crate::server`) — the only layer that owns clocks and
//!   sockets: it gathers snapshots on an interval, executes plans
//!   through the same extract → install → restore-on-failure job chain
//!   operator migrations use, and reports outcomes back.
//!
//! ## Load model
//!
//! A session's load for one interval is
//! `Δrequests × shard_cost_us + dataset_MiB`: its attempted-request
//! delta weighted by the shard's observed per-request cost over the same
//! interval (derived from the latency-histogram delta via bucket
//! midpoints), plus a small resident-size term so giant idle sessions
//! still spread out under memory pressure. Queue depth joins the shard's
//! total as un-movable pressure. The shared dataset cache is deliberately
//! *not* a placement signal: it is server-wide, so migration never
//! re-parses and placement cannot improve cache behavior.
//!
//! ## Hysteresis
//!
//! Two watermarks prevent flapping: planning starts only when some
//! shard's load exceeds `trigger_ratio × mean` and proceeds (within
//! budget) until the maximum falls under `settle_ratio × mean`; a system
//! sitting anywhere between the two watermarks is left alone.

use crate::metrics::{LatencyHistogram, LATENCY_BUCKET_COUNT};
use fv_api::decode::{field, num};
use fv_api::ApiError;
pub use fv_api::BalanceMode;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Representative per-request cost (µs) of each latency bucket —
/// midpoints of the [`crate::metrics::LATENCY_BUCKETS_US`] bounds, used
/// to turn a histogram delta into an approximate busy-time delta.
const LATENCY_BUCKET_COST_US: [u64; LATENCY_BUCKET_COUNT] = [
    25, 75, 175, 375, 750, 3_000, 15_000, 62_500, 550_000, 2_000_000,
];

/// Approximate cumulative busy time (µs) a latency histogram represents.
fn approx_busy_us(hist: &LatencyHistogram) -> u64 {
    hist.counts
        .iter()
        .zip(LATENCY_BUCKET_COST_US.iter())
        .map(|(&count, &cost)| count.saturating_mul(cost))
        .sum()
}

/// Policy tuning knobs. All pure data — the same struct parameterizes the
/// server, the simulation harness, and the property tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceConfig {
    /// Maximum migrations planned per tick (the per-interval budget).
    pub budget: usize,
    /// High watermark: plan only when some shard's load exceeds
    /// `trigger_ratio × mean`. Clamped to ≥ 1.
    pub trigger_ratio: f64,
    /// Low watermark: stop planning once the maximum projected load is
    /// under `settle_ratio × mean`. Clamped into `[1, trigger_ratio]`.
    pub settle_ratio: f64,
    /// Ignore intervals whose total load (µs-weighted) is below this —
    /// a near-idle server is never worth churning.
    pub min_total_load: u64,
    /// Ticks a session is pinned after a move is planned for it,
    /// successful or not.
    pub cooldown_ticks: u64,
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig {
            budget: 2,
            trigger_ratio: 1.5,
            settle_ratio: 1.15,
            min_total_load: 1_000,
            cooldown_ticks: 8,
        }
    }
}

/// One session's load contribution within a [`ShardLoad`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionLoad {
    /// Session name.
    pub session: String,
    /// Interval load in the policy's µs-weighted units.
    pub load: u64,
    /// Excluded from planning: a move is already in flight or the
    /// session is cooling down from a recent one.
    pub pinned: bool,
}

/// One shard's slice of a [`ShardSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLoad {
    /// Shard index.
    pub shard: usize,
    /// Un-movable pressure (queued jobs, µs-weighted) counted into the
    /// shard's total but never into any session.
    pub queued_load: u64,
    /// Movable load, per session.
    pub sessions: Vec<SessionLoad>,
}

impl ShardLoad {
    /// The shard's total load: queued pressure plus every session.
    pub fn total(&self) -> u64 {
        self.queued_load
            + self
                .sessions
                .iter()
                .map(|s| s.load)
                .fold(0u64, u64::saturating_add)
    }
}

/// Everything the pure policy sees: one interval's load, per shard and
/// per session. No clocks, no sockets, no hidden state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardSnapshot {
    /// Per-shard load, any order (shard indices need not be contiguous).
    pub shards: Vec<ShardLoad>,
}

/// One planned migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovePlan {
    /// Session to move.
    pub session: String,
    /// Shard it currently lives on.
    pub from: usize,
    /// Destination shard.
    pub to: usize,
    /// The session load the plan was based on (for reporting).
    pub load: u64,
}

/// The pure policy: plan up to `cfg.budget` migrations that reduce the
/// snapshot's load imbalance. See the module docs for the invariants;
/// notably every greedy pick keeps the moved load strictly under the
/// donor–receiver gap, so every move strictly lowers the pair's maximum
/// — applying a plan monotonically narrows the spread, and a "whale"
/// session that *is* the imbalance is left alone (moving it would only
/// relocate the hotspot).
pub fn plan_moves(snapshot: &ShardSnapshot, cfg: &BalanceConfig) -> Vec<MovePlan> {
    let n = snapshot.shards.len();
    if n < 2 || cfg.budget == 0 {
        return Vec::new();
    }
    let mut loads: Vec<u64> = snapshot.shards.iter().map(ShardLoad::total).collect();
    let total = loads.iter().fold(0u64, |a, &b| a.saturating_add(b));
    if total < cfg.min_total_load.max(1) {
        return Vec::new();
    }
    let mean = total as f64 / n as f64;
    let trigger_ratio = cfg.trigger_ratio.max(1.0);
    let trigger = mean * trigger_ratio;
    let settle = mean * cfg.settle_ratio.clamp(1.0, trigger_ratio);
    // Hysteresis, high watermark: if nothing exceeds the trigger the
    // system is (still) balanced enough — plan nothing.
    if loads.iter().all(|&l| (l as f64) <= trigger) {
        return Vec::new();
    }
    let mut moved: BTreeSet<&str> = BTreeSet::new();
    let mut moves: Vec<MovePlan> = Vec::new();
    while moves.len() < cfg.budget {
        let donor = argmax(&loads);
        let receiver = argmin(&loads);
        if donor == receiver {
            break;
        }
        // Hysteresis, low watermark: projected max is settled — stop.
        if (loads[donor] as f64) <= settle {
            break;
        }
        let gap = loads[donor] - loads[receiver];
        // Two-tier candidate pick, largest first, ties broken on the
        // lexicographically first name (fully deterministic):
        //
        // 1. Prefer a session whose load fits half the gap — the
        //    receiver ends at or below the donor's remainder, so the
        //    donor stays the pair's max. This keeps a whale parked while
        //    its cheap shard-mates flee around it.
        // 2. Failing that, accept any session with `load < gap` — the
        //    receiver still ends strictly below the donor's pre-move
        //    load, so the pair's max strictly shrinks. This is what
        //    spreads a flash crowd of equally-huge sessions onto
        //    near-idle shards.
        //
        // Either way max(donor', receiver') < donor: a move can never
        // flip or merely relocate the hotspot.
        let eligible =
            |s: &&SessionLoad| !s.pinned && !moved.contains(s.session.as_str()) && s.load > 0;
        let largest = |a: &&SessionLoad, b: &&SessionLoad| {
            a.load.cmp(&b.load).then_with(|| b.session.cmp(&a.session))
        };
        let candidates = &snapshot.shards[donor].sessions;
        let pick = candidates
            .iter()
            .filter(eligible)
            .filter(|s| s.load.saturating_mul(2) <= gap)
            .max_by(largest)
            .or_else(|| {
                candidates
                    .iter()
                    .filter(eligible)
                    .filter(|s| s.load < gap)
                    .max_by(largest)
            });
        let Some(pick) = pick else {
            // Only pinned sessions or whales left on the hottest shard;
            // nothing productive remains this tick.
            break;
        };
        moved.insert(pick.session.as_str());
        loads[donor] -= pick.load;
        loads[receiver] += pick.load;
        moves.push(MovePlan {
            session: pick.session.clone(),
            from: snapshot.shards[donor].shard,
            to: snapshot.shards[receiver].shard,
            load: pick.load,
        });
    }
    moves
}

/// Index of the maximum (first wins ties — deterministic).
fn argmax(loads: &[u64]) -> usize {
    let mut best = 0;
    for (i, &l) in loads.iter().enumerate() {
        if l > loads[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum (first wins ties — deterministic).
fn argmin(loads: &[u64]) -> usize {
    let mut best = 0;
    for (i, &l) in loads.iter().enumerate() {
        if l < loads[best] {
            best = i;
        }
    }
    best
}

// ── tick state ──────────────────────────────────────────────────────────

/// One session inside a [`ShardObservation`]: *cumulative* counters as
/// the hubs report them; the [`Balancer`] turns them into deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionObservation {
    /// Session name.
    pub session: String,
    /// Attempted requests since the session was created (travels with
    /// the engine across migrations).
    pub requests_total: u64,
    /// Approximate resident dataset bytes.
    pub dataset_bytes: u64,
    /// A migration for this session is currently in flight.
    pub in_flight: bool,
}

/// One shard's cumulative counters at an instant — exactly what a
/// `stats`-style shard report carries, no clocks attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardObservation {
    /// Shard index.
    pub shard: usize,
    /// Jobs queued on the shard channel right now.
    pub queued: usize,
    /// Attempted requests since startup (stays with the shard; does NOT
    /// follow migrating sessions).
    pub requests_total: u64,
    /// Cumulative request-latency histogram (stays with the shard).
    pub latency: LatencyHistogram,
    /// Cumulative per-session costs of the sessions living here now.
    pub sessions: Vec<SessionObservation>,
}

/// Lifecycle of one recorded move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveOutcome {
    /// Planned, not yet resolved.
    InFlight,
    /// Migration completed.
    Done,
    /// Migration failed (the session was restored to its source shard).
    Failed,
}

impl MoveOutcome {
    fn as_str(self) -> &'static str {
        match self {
            MoveOutcome::InFlight => "inflight",
            MoveOutcome::Done => "done",
            MoveOutcome::Failed => "failed",
        }
    }

    fn from_str_token(token: &str) -> Result<MoveOutcome, ApiError> {
        match token {
            "inflight" => Ok(MoveOutcome::InFlight),
            "done" => Ok(MoveOutcome::Done),
            "failed" => Ok(MoveOutcome::Failed),
            other => Err(ApiError::parse(format!("unknown move outcome {other:?}"))),
        }
    }
}

/// One decision the balancer took, for the `balance` status reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveRecord {
    /// Tick the move was planned on.
    pub tick: u64,
    /// Session moved.
    pub session: String,
    /// Source shard.
    pub from: usize,
    /// Destination shard.
    pub to: usize,
    /// Session load the decision was based on.
    pub load: u64,
    /// What became of it.
    pub outcome: MoveOutcome,
}

/// How many recent decisions the status reply retains.
const RECENT_MOVES: usize = 16;

/// Deterministic, clock-free balancer state: cumulative observations in,
/// migration plans out, with per-session cooldowns tracked by tick
/// number. The server advances it on a wall-clock interval; tests and
/// the simulation harness advance it explicitly.
#[derive(Debug)]
pub struct Balancer {
    /// Current mode; [`Balancer::tick`] plans nothing when `Off` (the
    /// server also skips snapshot gathering entirely then).
    pub mode: BalanceMode,
    cfg: BalanceConfig,
    tick: u64,
    /// Cumulative per-session request totals at the previous tick.
    last_session_requests: BTreeMap<String, u64>,
    /// Cumulative per-shard (requests, busy-µs) at the previous tick.
    last_shard: BTreeMap<usize, (u64, u64)>,
    /// Tick each cooling session's move was planned on.
    last_move: BTreeMap<String, u64>,
    planned: u64,
    completed: u64,
    failed: u64,
    recent: VecDeque<MoveRecord>,
}

impl Balancer {
    /// Fresh balancer.
    pub fn new(mode: BalanceMode, cfg: BalanceConfig) -> Balancer {
        Balancer {
            mode,
            cfg,
            tick: 0,
            last_session_requests: BTreeMap::new(),
            last_shard: BTreeMap::new(),
            last_move: BTreeMap::new(),
            planned: 0,
            completed: 0,
            failed: 0,
            recent: VecDeque::new(),
        }
    }

    /// The policy knobs.
    pub fn config(&self) -> &BalanceConfig {
        &self.cfg
    }

    /// Ticks elapsed.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// `(planned, completed, failed)` move counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.planned, self.completed, self.failed)
    }

    /// Advance one tick: fold the cumulative observations into interval
    /// deltas, refresh cooldowns, and (in `Auto` mode) plan migrations.
    /// Every planned session enters cooldown immediately — whatever the
    /// move's eventual outcome.
    pub fn tick(&mut self, observations: &[ShardObservation]) -> Vec<MovePlan> {
        self.tick += 1;
        let tick = self.tick;
        let cooldown = self.cfg.cooldown_ticks;
        self.last_move
            .retain(|_, planned_at| tick.saturating_sub(*planned_at) < cooldown);

        let mut shards = Vec::with_capacity(observations.len());
        let mut next_session_requests: BTreeMap<String, u64> = BTreeMap::new();
        for obs in observations {
            let busy_total = approx_busy_us(&obs.latency);
            let (last_req, last_busy) = self.last_shard.get(&obs.shard).copied().unwrap_or((0, 0));
            let d_req = obs.requests_total.saturating_sub(last_req);
            let d_busy = busy_total.saturating_sub(last_busy);
            self.last_shard
                .insert(obs.shard, (obs.requests_total, busy_total));
            // The shard's per-request cost this interval, in µs. Clamped
            // ≥ 1 so request counts still register when the histogram is
            // empty (simulations) or the interval saw no completions.
            let cost_us = (d_busy / d_req.max(1)).max(1);
            let mut sessions = Vec::with_capacity(obs.sessions.len());
            for s in &obs.sessions {
                let last = self
                    .last_session_requests
                    .get(&s.session)
                    .copied()
                    .unwrap_or(0);
                let d = s.requests_total.saturating_sub(last);
                next_session_requests.insert(s.session.clone(), s.requests_total);
                let load = d.saturating_mul(cost_us) + (s.dataset_bytes >> 20);
                let pinned = s.in_flight || self.last_move.contains_key(&s.session);
                sessions.push(SessionLoad {
                    session: s.session.clone(),
                    load,
                    pinned,
                });
            }
            shards.push(ShardLoad {
                shard: obs.shard,
                queued_load: (obs.queued as u64).saturating_mul(cost_us),
                sessions,
            });
        }
        // Sessions that vanished (closed) drop their baselines; a
        // recreated namesake starts over.
        self.last_session_requests = next_session_requests;
        self.last_shard
            .retain(|shard, _| observations.iter().any(|o| o.shard == *shard));

        if self.mode != BalanceMode::Auto {
            return Vec::new();
        }
        let plans = plan_moves(&ShardSnapshot { shards }, &self.cfg);
        for plan in &plans {
            self.last_move.insert(plan.session.clone(), tick);
            self.planned += 1;
            if self.recent.len() == RECENT_MOVES {
                self.recent.pop_front();
            }
            self.recent.push_back(MoveRecord {
                tick,
                session: plan.session.clone(),
                from: plan.from,
                to: plan.to,
                load: plan.load,
                outcome: MoveOutcome::InFlight,
            });
        }
        plans
    }

    /// Record how a previously planned move ended. The session's cooldown
    /// is unaffected — it started when the move was planned, so a failed
    /// target is not retried until the cooldown lapses.
    pub fn record_outcome(&mut self, session: &str, ok: bool) {
        if ok {
            self.completed += 1;
        } else {
            self.failed += 1;
        }
        if let Some(record) = self
            .recent
            .iter_mut()
            .rev()
            .find(|r| r.session == session && r.outcome == MoveOutcome::InFlight)
        {
            record.outcome = if ok {
                MoveOutcome::Done
            } else {
                MoveOutcome::Failed
            };
        }
    }

    /// Snapshot for the `balance` wire reply.
    pub fn status(&self) -> BalanceStatus {
        BalanceStatus {
            mode: self.mode,
            ticks: self.tick,
            planned: self.planned,
            completed: self.completed,
            failed: self.failed,
            cooling: self.last_move.len(),
            budget: self.cfg.budget,
            trigger_ratio: self.cfg.trigger_ratio,
            settle_ratio: self.cfg.settle_ratio,
            cooldown_ticks: self.cfg.cooldown_ticks,
            min_total_load: self.cfg.min_total_load,
            recent: self.recent.iter().cloned().collect(),
        }
    }
}

// ── status wire text ────────────────────────────────────────────────────

/// Typed reply of the `balance` control line; [`format_balance`] /
/// [`parse_balance`] are exact inverses, mirroring the `stats` plane.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceStatus {
    /// Current mode.
    pub mode: BalanceMode,
    /// Ticks elapsed since startup.
    pub ticks: u64,
    /// Moves ever planned.
    pub planned: u64,
    /// Moves that completed.
    pub completed: u64,
    /// Moves that failed (session restored to its source shard).
    pub failed: u64,
    /// Sessions currently in cooldown.
    pub cooling: usize,
    /// Per-tick migration budget.
    pub budget: usize,
    /// High watermark ratio.
    pub trigger_ratio: f64,
    /// Low watermark ratio.
    pub settle_ratio: f64,
    /// Cooldown length, in ticks.
    pub cooldown_ticks: u64,
    /// Minimum interval load worth balancing.
    pub min_total_load: u64,
    /// Most recent decisions, oldest first (bounded ring).
    pub recent: Vec<MoveRecord>,
}

/// Canonical reply text for the `balance` control line; inverse of
/// [`parse_balance`].
pub fn format_balance(status: &BalanceStatus) -> String {
    let mut out = format!(
        "balance mode={} ticks={} planned={} completed={} failed={} cooling={} budget={} trigger={} settle={} cooldown={} min_load={}",
        status.mode,
        status.ticks,
        status.planned,
        status.completed,
        status.failed,
        status.cooling,
        status.budget,
        status.trigger_ratio,
        status.settle_ratio,
        status.cooldown_ticks,
        status.min_total_load,
    );
    for m in &status.recent {
        out.push_str(&format!(
            "\n  move {} {} {} tick={} load={} outcome={}",
            m.session,
            m.from,
            m.to,
            m.tick,
            m.load,
            m.outcome.as_str()
        ));
    }
    out
}

/// Parse a `balance` reply back into the typed status.
pub fn parse_balance(text: &str) -> Result<BalanceStatus, ApiError> {
    let mut lines = text.lines();
    let head = lines
        .next()
        .ok_or_else(|| ApiError::parse("empty balance reply"))?;
    let tail = head
        .strip_prefix("balance ")
        .ok_or_else(|| ApiError::parse(format!("not a balance reply: {head:?}")))?;
    let ratio = |name: &str| -> Result<f64, ApiError> {
        field(tail, name)?
            .parse::<f64>()
            .map_err(|_| ApiError::parse(format!("bad {name}")))
    };
    let mut recent = Vec::new();
    for line in lines {
        let row = line
            .strip_prefix("  move ")
            .ok_or_else(|| ApiError::parse(format!("unexpected balance row {line:?}")))?;
        let mut parts = row.split_whitespace();
        let (Some(session), Some(from), Some(to)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(ApiError::parse("move row needs <session> <from> <to>"));
        };
        let rest = row
            .splitn(4, ' ')
            .nth(3)
            .ok_or_else(|| ApiError::parse("move row needs fields"))?;
        recent.push(MoveRecord {
            tick: num(field(rest, "tick")?, "tick")?,
            session: session.to_string(),
            from: num(from, "from")?,
            to: num(to, "to")?,
            load: num(field(rest, "load")?, "load")?,
            outcome: MoveOutcome::from_str_token(field(rest, "outcome")?)?,
        });
    }
    Ok(BalanceStatus {
        mode: BalanceMode::from_str_token(field(tail, "mode")?)?,
        ticks: num(field(tail, "ticks")?, "ticks")?,
        planned: num(field(tail, "planned")?, "planned")?,
        completed: num(field(tail, "completed")?, "completed")?,
        failed: num(field(tail, "failed")?, "failed")?,
        cooling: num(field(tail, "cooling")?, "cooling")?,
        budget: num(field(tail, "budget")?, "budget")?,
        trigger_ratio: ratio("trigger")?,
        settle_ratio: ratio("settle")?,
        cooldown_ticks: num(field(tail, "cooldown")?, "cooldown")?,
        min_total_load: num(field(tail, "min_load")?, "min_load")?,
        recent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(idx: usize, sessions: &[(&str, u64)]) -> ShardLoad {
        ShardLoad {
            shard: idx,
            queued_load: 0,
            sessions: sessions
                .iter()
                .map(|&(name, load)| SessionLoad {
                    session: name.to_string(),
                    load,
                    pinned: false,
                })
                .collect(),
        }
    }

    fn cfg() -> BalanceConfig {
        BalanceConfig {
            budget: 4,
            trigger_ratio: 1.5,
            settle_ratio: 1.1,
            min_total_load: 1,
            cooldown_ticks: 4,
        }
    }

    #[test]
    fn skew_is_planned_toward_the_idle_shard() {
        let snap = ShardSnapshot {
            shards: vec![
                shard(0, &[("a", 100), ("b", 100), ("c", 100), ("d", 100)]),
                shard(1, &[]),
            ],
        };
        let moves = plan_moves(&snap, &cfg());
        assert!(!moves.is_empty());
        for m in &moves {
            assert_eq!(m.from, 0);
            assert_eq!(m.to, 1);
        }
        // two moves land 200/200 — settled under 1.1×mean; no third move
        assert_eq!(moves.len(), 2);
        let names: Vec<&str> = moves.iter().map(|m| m.session.as_str()).collect();
        assert_eq!(names, ["a", "b"], "load ties break on name, smallest first");
    }

    #[test]
    fn balanced_and_empty_snapshots_are_fixpoints() {
        assert_eq!(plan_moves(&ShardSnapshot::default(), &cfg()), []);
        let even = ShardSnapshot {
            shards: vec![shard(0, &[("a", 50)]), shard(1, &[("b", 50)])],
        };
        assert_eq!(plan_moves(&even, &cfg()), []);
    }

    #[test]
    fn hysteresis_window_holds_fire() {
        // max = 120, mean = 100: above settle (1.1) but below trigger
        // (1.5) — the in-between band must be left alone.
        let snap = ShardSnapshot {
            shards: vec![shard(0, &[("a", 60), ("b", 60)]), shard(1, &[("c", 80)])],
        };
        assert_eq!(plan_moves(&snap, &cfg()), []);
    }

    #[test]
    fn whale_alone_is_never_moved() {
        // Moving the only loaded session just relocates the hotspot.
        let snap = ShardSnapshot {
            shards: vec![shard(0, &[("whale", 1000)]), shard(1, &[])],
        };
        assert_eq!(plan_moves(&snap, &cfg()), []);
        // …but its shard-mates are shed around it.
        let snap = ShardSnapshot {
            shards: vec![
                shard(0, &[("whale", 1000), ("m1", 60), ("m2", 60)]),
                shard(1, &[]),
            ],
        };
        let moves = plan_moves(&snap, &cfg());
        assert!(!moves.is_empty());
        assert!(moves.iter().all(|m| m.session != "whale"));
    }

    #[test]
    fn pinned_sessions_and_budget_are_respected() {
        let mut donor = shard(0, &[("a", 100), ("b", 100), ("c", 100), ("d", 100)]);
        donor.sessions[0].pinned = true; // "a" cooling down
        let snap = ShardSnapshot {
            shards: vec![donor, shard(1, &[])],
        };
        let tight = BalanceConfig { budget: 1, ..cfg() };
        let moves = plan_moves(&snap, &tight);
        assert_eq!(moves.len(), 1);
        assert_ne!(moves[0].session, "a");
    }

    #[test]
    fn queued_load_counts_but_never_moves() {
        let snap = ShardSnapshot {
            shards: vec![
                ShardLoad {
                    shard: 0,
                    queued_load: 400,
                    sessions: vec![SessionLoad {
                        session: "s".into(),
                        load: 50,
                        pinned: false,
                    }],
                },
                shard(1, &[]),
            ],
        };
        let moves = plan_moves(&snap, &cfg());
        // the queue pressure makes shard 0 hot; the only relief valve is
        // its one (small) session
        assert_eq!(moves.len(), 1);
        assert_eq!(moves[0].session, "s");
    }

    #[test]
    fn min_total_load_gates_idle_churn() {
        let snap = ShardSnapshot {
            shards: vec![shard(0, &[("a", 3), ("b", 3)]), shard(1, &[])],
        };
        let gated = BalanceConfig {
            min_total_load: 100,
            ..cfg()
        };
        assert_eq!(plan_moves(&snap, &gated), []);
    }

    #[test]
    fn balancer_uses_request_deltas_not_totals() {
        let mut bal = Balancer::new(BalanceMode::Auto, cfg());
        let obs = |totals: [(u64, u64); 2]| -> Vec<ShardObservation> {
            vec![
                ShardObservation {
                    shard: 0,
                    queued: 0,
                    requests_total: totals[0].0 + totals[0].1,
                    latency: LatencyHistogram::new(),
                    sessions: vec![
                        SessionObservation {
                            session: "hot".into(),
                            requests_total: totals[0].0,
                            dataset_bytes: 0,
                            in_flight: false,
                        },
                        SessionObservation {
                            session: "warm".into(),
                            requests_total: totals[0].1,
                            dataset_bytes: 0,
                            in_flight: false,
                        },
                    ],
                },
                ShardObservation {
                    shard: 1,
                    queued: 0,
                    requests_total: totals[1].0,
                    latency: LatencyHistogram::new(),
                    sessions: vec![SessionObservation {
                        session: "calm".into(),
                        requests_total: totals[1].0,
                        dataset_bytes: 0,
                        in_flight: false,
                    }],
                },
            ]
        };
        // Tick 1: first sight — everything counts as recent. Skewed.
        let plans = bal.tick(&obs([(500, 400), (10, 0)]));
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|p| p.from == 0 && p.to == 1));
        // The planned sessions are cooling: identical totals (zero
        // delta) ⇒ balanced ⇒ nothing planned, and even renewed skew
        // within the cooldown cannot re-move them.
        let plans2 = bal.tick(&obs([(500, 400), (10, 0)]));
        assert_eq!(plans2, []);
        let (planned, _, _) = bal.counters();
        assert_eq!(planned as usize, plans.len());
        assert!(bal.status().cooling >= plans.len());
    }

    #[test]
    fn off_mode_observes_but_never_plans() {
        let mut bal = Balancer::new(BalanceMode::Off, cfg());
        let obs = vec![
            ShardObservation {
                shard: 0,
                queued: 0,
                requests_total: 900,
                latency: LatencyHistogram::new(),
                sessions: vec![
                    SessionObservation {
                        session: "a".into(),
                        requests_total: 450,
                        dataset_bytes: 0,
                        in_flight: false,
                    },
                    SessionObservation {
                        session: "b".into(),
                        requests_total: 450,
                        dataset_bytes: 0,
                        in_flight: false,
                    },
                ],
            },
            ShardObservation {
                shard: 1,
                queued: 0,
                requests_total: 0,
                latency: LatencyHistogram::new(),
                sessions: vec![],
            },
        ];
        assert_eq!(bal.tick(&obs), []);
        assert_eq!(bal.ticks(), 1);
        // flipping to auto, the next tick sees only the delta (zero) —
        // no stale burst from the Off period
        bal.mode = BalanceMode::Auto;
        assert_eq!(bal.tick(&obs), []);
    }

    #[test]
    fn latency_weighting_scales_per_shard_cost() {
        // Same request counts, but shard 0's histogram says each request
        // cost ~3ms while shard 1's cost ~25µs: shard 0 must read hotter.
        let mut slow = LatencyHistogram::new();
        slow.counts[5] = 100; // ≈3000µs each
        let mut fast = LatencyHistogram::new();
        fast.counts[0] = 100; // ≈25µs each
        let mut bal = Balancer::new(BalanceMode::Auto, cfg());
        let obs = vec![
            ShardObservation {
                shard: 0,
                queued: 0,
                requests_total: 100,
                latency: slow,
                sessions: vec![
                    SessionObservation {
                        session: "s0".into(),
                        requests_total: 60,
                        dataset_bytes: 0,
                        in_flight: false,
                    },
                    SessionObservation {
                        session: "s1".into(),
                        requests_total: 40,
                        dataset_bytes: 0,
                        in_flight: false,
                    },
                ],
            },
            ShardObservation {
                shard: 1,
                queued: 0,
                requests_total: 100,
                latency: fast,
                sessions: vec![SessionObservation {
                    session: "f0".into(),
                    requests_total: 100,
                    dataset_bytes: 0,
                    in_flight: false,
                }],
            },
        ];
        let plans = bal.tick(&obs);
        assert!(!plans.is_empty(), "busy-time imbalance must trigger");
        assert!(plans.iter().all(|p| p.from == 0 && p.to == 1));
    }

    #[test]
    fn failed_moves_count_and_keep_their_cooldown() {
        let mut bal = Balancer::new(BalanceMode::Auto, cfg());
        let skew = vec![
            ShardObservation {
                shard: 0,
                queued: 0,
                requests_total: 800,
                latency: LatencyHistogram::new(),
                sessions: vec![
                    SessionObservation {
                        session: "a".into(),
                        requests_total: 400,
                        dataset_bytes: 0,
                        in_flight: false,
                    },
                    SessionObservation {
                        session: "b".into(),
                        requests_total: 400,
                        dataset_bytes: 0,
                        in_flight: false,
                    },
                ],
            },
            ShardObservation {
                shard: 1,
                queued: 0,
                requests_total: 0,
                latency: LatencyHistogram::new(),
                sessions: vec![],
            },
        ];
        let plans = bal.tick(&skew);
        assert_eq!(plans.len(), 1, "one move settles 800/0 into 400/400");
        bal.record_outcome(&plans[0].session, false);
        let status = bal.status();
        assert_eq!(status.failed, 1);
        assert_eq!(status.recent.last().unwrap().outcome, MoveOutcome::Failed);
        assert!(status.cooling >= 1, "failed session still cools down");
    }

    #[test]
    fn status_text_roundtrips() {
        let status = BalanceStatus {
            mode: BalanceMode::Auto,
            ticks: 42,
            planned: 5,
            completed: 4,
            failed: 1,
            cooling: 2,
            budget: 2,
            trigger_ratio: 1.5,
            settle_ratio: 1.15,
            cooldown_ticks: 8,
            min_total_load: 1000,
            recent: vec![
                MoveRecord {
                    tick: 40,
                    session: "alpha".into(),
                    from: 0,
                    to: 3,
                    load: 512,
                    outcome: MoveOutcome::Done,
                },
                MoveRecord {
                    tick: 41,
                    session: "beta".into(),
                    from: 2,
                    to: 1,
                    load: 77,
                    outcome: MoveOutcome::Failed,
                },
            ],
        };
        let text = format_balance(&status);
        assert_eq!(
            text,
            "balance mode=auto ticks=42 planned=5 completed=4 failed=1 cooling=2 budget=2 \
             trigger=1.5 settle=1.15 cooldown=8 min_load=1000\n  \
             move alpha 0 3 tick=40 load=512 outcome=done\n  \
             move beta 2 1 tick=41 load=77 outcome=failed"
        );
        assert_eq!(parse_balance(&text).unwrap(), status);
        // empty recent list roundtrips too
        let bare = BalanceStatus {
            recent: Vec::new(),
            mode: BalanceMode::Off,
            ..status
        };
        assert_eq!(parse_balance(&format_balance(&bare)).unwrap(), bare);
    }

    #[test]
    fn garbage_status_is_a_parse_error() {
        for bad in [
            "",
            "wat",
            "balance mode=sideways ticks=0 planned=0 completed=0 failed=0 cooling=0 budget=0 trigger=1 settle=1 cooldown=0 min_load=0",
            "balance mode=auto ticks=0",
            "balance mode=auto ticks=0 planned=0 completed=0 failed=0 cooling=0 budget=0 trigger=1 settle=1 cooldown=0 min_load=0\n  move x",
        ] {
            assert!(parse_balance(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
