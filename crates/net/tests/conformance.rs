//! Local-vs-remote conformance: replaying a script through a real
//! localhost server must produce a transcript byte-identical to
//! in-process `EngineHub::run_script` replay — including the golden
//! script that pins the whole protocol surface.

use fv_api::EngineHub;
use fv_net::{run_script_remote, Client, Server, ServerConfig};

/// The golden script of `fv-api` (the protocol's reference workload).
const GOLDEN_SCRIPT: &str = include_str!("../../api/tests/data/session.fvs");

/// Scene used by the golden transcript.
const SCENE: (usize, usize) = (800, 600);

fn server(shards: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards,
            scene: SCENE,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn local_transcript(script: &str) -> String {
    EngineHub::with_scene(SCENE.0, SCENE.1)
        .run_script(script)
        .expect("local replay succeeds")
        .transcript()
}

fn remote_transcript(addr: &str, script: &str) -> String {
    let mut out = String::new();
    run_script_remote(addr, script, |block| out.push_str(block)).expect("remote replay succeeds");
    out
}

#[test]
fn golden_script_is_byte_identical_over_the_wire() {
    let server = server(4);
    let addr = server.local_addr().to_string();
    let local = local_transcript(GOLDEN_SCRIPT);
    let remote = remote_transcript(&addr, GOLDEN_SCRIPT);
    assert_eq!(remote, local, "wire transcript drifted from local replay");
    // …and the checked-in golden file agrees too, transitively pinning
    // the wire format.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../api/tests/data/session.golden"
    ))
    .expect("golden file");
    assert_eq!(remote, golden);
    server.shutdown();
    server.join();
}

#[test]
fn remote_transcript_identical_across_shard_counts() {
    // Shard routing must be invisible to any single session's results.
    let local = local_transcript(GOLDEN_SCRIPT);
    for shards in [1, 4] {
        let server = server(shards);
        let addr = server.local_addr().to_string();
        assert_eq!(
            remote_transcript(&addr, GOLDEN_SCRIPT),
            local,
            "transcript must not depend on shard count {shards}"
        );
        server.shutdown();
        server.join();
    }
}

#[test]
fn failing_script_matches_local_prefix_and_error() {
    let script = "\
scenario 80 3
cluster_all
impute 9 3
session_info
";
    let mut hub = EngineHub::with_scene(SCENE.0, SCENE.1);
    let mut local = String::new();
    let local_err = hub
        .run_script_streaming(script, |e| local.push_str(&e.render()))
        .expect_err("impute 9 must fail");

    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut remote = String::new();
    let remote_err = run_script_remote(&addr, script, |b| remote.push_str(b))
        .expect_err("remote replay must fail identically");

    assert_eq!(remote, local, "executed-prefix transcripts must match");
    assert_eq!(remote_err.code, local_err.code);
    assert_eq!(remote_err.message, local_err.message);
    server.shutdown();
    server.join();
}

#[test]
fn typed_client_execute_roundtrips_responses() {
    // Client::execute must hand back typed responses equal to local
    // execution — the decode path the remote CLI rests on.
    use fv_api::{Mutation, Query, Request};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("typed").unwrap();
    let mut engine = fv_api::Engine::with_scene(SCENE.0, SCENE.1);

    let requests = [
        Request::Mutate(Mutation::LoadScenario {
            n_genes: 80,
            seed: 11,
        }),
        Request::Mutate(Mutation::Command(forestview::command::Command::ClusterAll)),
        Request::Mutate(Mutation::Command(forestview::command::Command::Search(
            "stress".into(),
        ))),
        Request::Query(Query::ListDatasets),
        Request::Query(Query::Spell {
            genes: vec![fv_synth::names::orf_name(0)],
            top_n: 3,
        }),
        Request::Query(Query::Render {
            width: 200,
            height: 150,
            path: None,
        }),
        Request::Query(Query::SessionInfo),
    ];
    for request in &requests {
        let local = engine.execute(request).unwrap();
        let remote = client.execute(request).unwrap();
        // Typed equality holds wherever the wire is lossless; for the
        // float-carrying SPELL response, canonical text equality is the
        // contract.
        match &local {
            fv_api::Response::SpellRanking { .. } => assert_eq!(
                fv_api::format_response(&remote),
                fv_api::format_response(&local)
            ),
            _ => assert_eq!(remote, local),
        }
    }
    // typed error parity
    let bad = Request::Mutate(Mutation::Impute { dataset: 9, k: 3 });
    let local_err = engine.execute(&bad).unwrap_err();
    let remote_err = client.execute(&bad).unwrap_err();
    assert_eq!(remote_err.code, local_err.code);
    assert_eq!(remote_err.message, local_err.message);
    server.shutdown();
    server.join();
}

#[test]
fn list_sessions_merges_across_shards_sorted_by_name() {
    use fv_api::{Mutation, Request, SessionEntry};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("alpha").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 1,
        }))
        .unwrap();
    client.use_session("beta").unwrap(); // materialized, empty
    let shard = |name: &str| fv_net::shard_of(&fv_api::SessionId::new(name).unwrap(), 2);
    // typed client path
    let listed = client.list_sessions().unwrap();
    assert_eq!(
        listed,
        [
            SessionEntry {
                name: "alpha".into(),
                shard: shard("alpha"),
                n_datasets: 3,
            },
            SessionEntry {
                name: "beta".into(),
                shard: shard("beta"),
                n_datasets: 0,
            },
        ]
    );
    // golden wire text (the merged + sorted reply shape is frozen)
    let raw = client.roundtrip("list-sessions").unwrap().unwrap();
    assert_eq!(
        raw,
        format!(
            "sessions n=2\n  session alpha shard={} datasets=3\n  session beta shard={} datasets=0",
            shard("alpha"),
            shard("beta")
        )
    );
    server.shutdown();
    server.join();
}

#[test]
fn stats_reports_connections_sessions_and_drained_queues() {
    use fv_api::{Mutation, Request};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("metered").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 1,
        }))
        .unwrap();
    client
        .execute(&Request::Query(fv_api::Query::SessionInfo))
        .unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.connections, 1, "only this client is connected");
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.busy_rejections, 0);
    assert!(
        stats.shards.iter().all(|s| s.queued == 0),
        "lockstep client leaves no stuck queues: {stats:?}"
    );
    // two single-request runs executed on `metered`'s shard
    assert_eq!(stats.runs, 2);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.max_run, 1);
    // use + 2 requests + stats were received; frames_out answered each,
    // the stats frame itself included
    assert_eq!(stats.frames_in, 4);
    assert_eq!(stats.frames_out, 4);
    assert_eq!(
        stats.sessions,
        stats.shards.iter().map(|s| s.sessions).sum::<usize>()
    );
    // the typed snapshot round-trips through the canonical wire text
    let raw = client.roundtrip("stats").unwrap().unwrap();
    let reparsed = fv_net::metrics::parse_stats(&raw).unwrap();
    assert_eq!(reparsed.connections, 1);
    assert_eq!(fv_net::metrics::format_stats(&reparsed), raw);
    server.shutdown();
    server.join();
}

/// Write a small PCL file and return its path.
fn write_pcl(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fv-conf-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.pcl"));
    std::fs::write(
        &path,
        "ID\tNAME\tGWEIGHT\tc0\tc1\tc2\n\
         EWEIGHT\t\t\t1\t1\t1\n\
         G1\tG1 alpha\t1\t1.0\t2.0\t3.0\n\
         G2\tG2 beta\t1\t4.0\t5.0\t6.0\n\
         G3\tG3 gamma\t1\t7.0\t8.0\t9.0\n",
    )
    .unwrap();
    path
}

#[test]
fn shared_cache_parses_once_across_sessions_and_shards() {
    use fv_api::{Mutation, Request};
    let pcl = write_pcl("shared");
    let server = server(4);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let load = Request::Mutate(Mutation::LoadDataset {
        path: pcl.to_string_lossy().into_owned(),
    });
    // 8 sessions spread over 4 shards, all loading the same file
    for i in 0..8 {
        client.use_session(&format!("cache{i}")).unwrap();
        client.execute(&load).unwrap();
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, 1, "one parse for eight sessions");
    assert_eq!(stats.cache_hits, 7);
    assert_eq!(stats.cache_entries, 1);
    assert_eq!(stats.cache_evictions, 0);
    // per-request latency histograms cover every executed request
    let observed: u64 = stats.shards.iter().map(|s| s.latency.total()).sum();
    assert_eq!(observed, stats.requests);
    server.shutdown();
    server.join();
}

#[test]
fn cached_and_cold_loads_produce_identical_transcripts_across_shard_counts() {
    // The cache must be semantically invisible: a transcript whose
    // sessions share cached parses must be byte-identical to a cold local
    // replay, whatever the shard count.
    let pcl = write_pcl("coldwarm");
    let path = pcl.to_string_lossy().into_owned();
    let script = format!(
        "use a\nload {path}\ncluster_all\nsession_info\n\
         use b\nload {path}\nsearch_select alpha\nsession_info\n\
         use c\nload {path}\nnormalize all zscore\nlist_datasets\n"
    );
    let local = local_transcript(&script);
    for shards in [1, 4] {
        let server = server(shards);
        let addr = server.local_addr().to_string();
        // run the script twice on one server: the second replay is fully
        // cache-warm (sessions d/e/f), and both must match local replay
        let warm_script = script
            .replace("use a", "use d")
            .replace("use b", "use e")
            .replace("use c", "use f");
        assert_eq!(remote_transcript(&addr, &script), local);
        assert_eq!(
            remote_transcript(&addr, &warm_script),
            local_transcript(&warm_script),
            "cache-warm replay must match cold local replay (shards={shards})"
        );
        let stats = Client::connect(&addr).unwrap().stats().unwrap();
        assert_eq!(stats.cache_misses, 1, "shards={shards}");
        assert_eq!(stats.cache_hits, 5, "shards={shards}");
        server.shutdown();
        server.join();
    }
}

#[test]
fn migrate_moves_a_live_session_with_transcript_parity() {
    use fv_api::{Mutation, Query, Request};
    let server = server(4);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("mover").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 80,
            seed: 9,
        }))
        .unwrap();
    client
        .execute(&Request::Mutate(Mutation::Command(
            forestview::command::Command::Search("stress".into()),
        )))
        .unwrap();
    let probe = |client: &mut Client| {
        let info = client.execute(&Request::Query(Query::SessionInfo)).unwrap();
        let frame = client
            .execute(&Request::Query(Query::Render {
                width: 200,
                height: 150,
                path: None,
            }))
            .unwrap();
        (
            fv_api::format_response(&info),
            fv_api::format_response(&frame),
        )
    };
    let before = probe(&mut client);
    let listed_before = client.list_sessions().unwrap();
    let home = fv_net::shard_of(&fv_api::SessionId::new("mover").unwrap(), 4);
    let away = (home + 1) % 4;

    // away: state must cross the shard boundary intact
    client.migrate("mover", away).unwrap();
    assert_eq!(
        probe(&mut client),
        before,
        "transcript parity after migrate"
    );
    let listed_away = client.list_sessions().unwrap();
    assert_eq!(listed_away.len(), 1);
    assert_eq!(listed_away[0].shard, away, "listing reflects the new shard");
    assert_eq!(listed_away[0].n_datasets, 3);

    // and back: the round trip restores the original listing exactly
    client.migrate("mover", home).unwrap();
    assert_eq!(probe(&mut client), before, "parity after the round trip");
    assert_eq!(client.list_sessions().unwrap(), listed_before);

    // migrating to the same shard is a checked no-op
    client.migrate("mover", home).unwrap();

    // typed errors: unknown session / out-of-range shard
    let err = client
        .roundtrip("migrate ghost 1")
        .unwrap()
        .expect_err("unknown session");
    assert_eq!(err.code, fv_api::ErrorCode::NotFound);
    let err = client
        .roundtrip("migrate mover 99")
        .unwrap()
        .expect_err("bad shard");
    assert_eq!(err.code, fv_api::ErrorCode::InvalidRequest);
    server.shutdown();
    server.join();
}

#[test]
fn migrated_session_serves_requests_and_closes_on_its_new_shard() {
    use fv_api::{Mutation, Query, Request, Response};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("roamer").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 3,
        }))
        .unwrap();
    let home = fv_net::shard_of(&fv_api::SessionId::new("roamer").unwrap(), 2);
    client.migrate("roamer", 1 - home).unwrap();
    // mutations keep landing on the migrated engine (routing overrides)
    client
        .execute(&Request::Mutate(Mutation::Command(
            forestview::command::Command::Scroll(2),
        )))
        .unwrap();
    // a second connection reaches the same migrated session
    let mut other = Client::connect(&addr).unwrap();
    other.use_session("roamer").unwrap();
    match other.execute(&Request::Query(Query::SessionInfo)).unwrap() {
        Response::SessionInfo(info) => assert_eq!(info.n_datasets, 3),
        other => panic!("wrong response: {other:?}"),
    }
    // close finds it on the override shard; a fresh use starts empty AND
    // falls back to hash routing — the override died with the session
    other.close_session().unwrap();
    client.use_session("roamer").unwrap();
    match client.execute(&Request::Query(Query::SessionInfo)).unwrap() {
        Response::SessionInfo(info) => assert_eq!(info.n_datasets, 0),
        other => panic!("wrong response: {other:?}"),
    }
    let listed = client.list_sessions().unwrap();
    let roamer = listed.iter().find(|e| e.name == "roamer").unwrap();
    assert_eq!(
        roamer.shard, home,
        "a re-created session routes by hash again"
    );
    server.shutdown();
    server.join();
}

#[test]
fn close_drops_only_the_current_session() {
    use fv_api::{Mutation, Query, Request, Response};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("keep").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 1,
        }))
        .unwrap();
    client.use_session("scratch").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 2,
        }))
        .unwrap();
    client.close_session().unwrap();
    // connection fell back to the default session; `keep` is untouched,
    // `scratch` is gone (a fresh `use` sees an empty hub entry).
    client.use_session("keep").unwrap();
    match client.execute(&Request::Query(Query::SessionInfo)).unwrap() {
        Response::SessionInfo(info) => assert_eq!(info.n_datasets, 3),
        other => panic!("wrong response: {other:?}"),
    }
    client.use_session("scratch").unwrap();
    match client.execute(&Request::Query(Query::SessionInfo)).unwrap() {
        Response::SessionInfo(info) => assert_eq!(info.n_datasets, 0, "scratch was dropped"),
        other => panic!("wrong response: {other:?}"),
    }
    server.shutdown();
    server.join();
}
