//! Local-vs-remote conformance: replaying a script through a real
//! localhost server must produce a transcript byte-identical to
//! in-process `EngineHub::run_script` replay — including the golden
//! script that pins the whole protocol surface.

use fv_api::EngineHub;
use fv_net::{run_script_remote, Client, Server, ServerConfig};

/// The golden script of `fv-api` (the protocol's reference workload).
const GOLDEN_SCRIPT: &str = include_str!("../../api/tests/data/session.fvs");

/// Scene used by the golden transcript.
const SCENE: (usize, usize) = (800, 600);

fn server(shards: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards,
            scene: SCENE,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn local_transcript(script: &str) -> String {
    EngineHub::with_scene(SCENE.0, SCENE.1)
        .run_script(script)
        .expect("local replay succeeds")
        .transcript()
}

fn remote_transcript(addr: &str, script: &str) -> String {
    let mut out = String::new();
    run_script_remote(addr, script, |block| out.push_str(block)).expect("remote replay succeeds");
    out
}

#[test]
fn golden_script_is_byte_identical_over_the_wire() {
    let server = server(4);
    let addr = server.local_addr().to_string();
    let local = local_transcript(GOLDEN_SCRIPT);
    let remote = remote_transcript(&addr, GOLDEN_SCRIPT);
    assert_eq!(remote, local, "wire transcript drifted from local replay");
    // …and the checked-in golden file agrees too, transitively pinning
    // the wire format.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../api/tests/data/session.golden"
    ))
    .expect("golden file");
    assert_eq!(remote, golden);
    server.shutdown();
    server.join();
}

#[test]
fn remote_transcript_identical_across_shard_counts() {
    // Shard routing must be invisible to any single session's results.
    let local = local_transcript(GOLDEN_SCRIPT);
    for shards in [1, 4] {
        let server = server(shards);
        let addr = server.local_addr().to_string();
        assert_eq!(
            remote_transcript(&addr, GOLDEN_SCRIPT),
            local,
            "transcript must not depend on shard count {shards}"
        );
        server.shutdown();
        server.join();
    }
}

#[test]
fn failing_script_matches_local_prefix_and_error() {
    let script = "\
scenario 80 3
cluster_all
impute 9 3
session_info
";
    let mut hub = EngineHub::with_scene(SCENE.0, SCENE.1);
    let mut local = String::new();
    let local_err = hub
        .run_script_streaming(script, |e| local.push_str(&e.render()))
        .expect_err("impute 9 must fail");

    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut remote = String::new();
    let remote_err = run_script_remote(&addr, script, |b| remote.push_str(b))
        .expect_err("remote replay must fail identically");

    assert_eq!(remote, local, "executed-prefix transcripts must match");
    assert_eq!(remote_err.code, local_err.code);
    assert_eq!(remote_err.message, local_err.message);
    server.shutdown();
    server.join();
}

#[test]
fn typed_client_execute_roundtrips_responses() {
    // Client::execute must hand back typed responses equal to local
    // execution — the decode path the remote CLI rests on.
    use fv_api::{Mutation, Query, Request};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("typed").unwrap();
    let mut engine = fv_api::Engine::with_scene(SCENE.0, SCENE.1);

    let requests = [
        Request::Mutate(Mutation::LoadScenario {
            n_genes: 80,
            seed: 11,
        }),
        Request::Mutate(Mutation::Command(forestview::command::Command::ClusterAll)),
        Request::Mutate(Mutation::Command(forestview::command::Command::Search(
            "stress".into(),
        ))),
        Request::Query(Query::ListDatasets),
        Request::Query(Query::Spell {
            genes: vec![fv_synth::names::orf_name(0)],
            top_n: 3,
        }),
        Request::Query(Query::Render {
            width: 200,
            height: 150,
            path: None,
        }),
        Request::Query(Query::SessionInfo),
    ];
    for request in &requests {
        let local = engine.execute(request).unwrap();
        let remote = client.execute(request).unwrap();
        // Typed equality holds wherever the wire is lossless; for the
        // float-carrying SPELL response, canonical text equality is the
        // contract.
        match &local {
            fv_api::Response::SpellRanking { .. } => assert_eq!(
                fv_api::format_response(&remote),
                fv_api::format_response(&local)
            ),
            _ => assert_eq!(remote, local),
        }
    }
    // typed error parity
    let bad = Request::Mutate(Mutation::Impute { dataset: 9, k: 3 });
    let local_err = engine.execute(&bad).unwrap_err();
    let remote_err = client.execute(&bad).unwrap_err();
    assert_eq!(remote_err.code, local_err.code);
    assert_eq!(remote_err.message, local_err.message);
    server.shutdown();
    server.join();
}

#[test]
fn list_sessions_merges_across_shards_sorted_by_name() {
    use fv_api::{Mutation, Request, SessionEntry};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("alpha").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 1,
        }))
        .unwrap();
    client.use_session("beta").unwrap(); // materialized, empty
    let shard = |name: &str| fv_net::shard_of(&fv_api::SessionId::new(name).unwrap(), 2);
    // typed client path
    let listed = client.list_sessions().unwrap();
    assert_eq!(
        listed,
        [
            SessionEntry {
                name: "alpha".into(),
                shard: shard("alpha"),
                n_datasets: 3,
            },
            SessionEntry {
                name: "beta".into(),
                shard: shard("beta"),
                n_datasets: 0,
            },
        ]
    );
    // golden wire text (the merged + sorted reply shape is frozen)
    let raw = client.roundtrip("list-sessions").unwrap().unwrap();
    assert_eq!(
        raw,
        format!(
            "sessions n=2\n  session alpha shard={} datasets=3\n  session beta shard={} datasets=0",
            shard("alpha"),
            shard("beta")
        )
    );
    server.shutdown();
    server.join();
}

#[test]
fn stats_reports_connections_sessions_and_drained_queues() {
    use fv_api::{Mutation, Request};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("metered").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 1,
        }))
        .unwrap();
    client
        .execute(&Request::Query(fv_api::Query::SessionInfo))
        .unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.connections, 1, "only this client is connected");
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.busy_rejections, 0);
    assert!(
        stats.shards.iter().all(|s| s.queued == 0),
        "lockstep client leaves no stuck queues: {stats:?}"
    );
    // two single-request runs executed on `metered`'s shard
    assert_eq!(stats.runs, 2);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.max_run, 1);
    // use + 2 requests + stats were received; frames_out answered each,
    // the stats frame itself included
    assert_eq!(stats.frames_in, 4);
    assert_eq!(stats.frames_out, 4);
    assert_eq!(
        stats.sessions,
        stats.shards.iter().map(|s| s.sessions).sum::<usize>()
    );
    // the typed snapshot round-trips through the canonical wire text
    let raw = client.roundtrip("stats").unwrap().unwrap();
    let reparsed = fv_net::metrics::parse_stats(&raw).unwrap();
    assert_eq!(reparsed.connections, 1);
    assert_eq!(fv_net::metrics::format_stats(&reparsed), raw);
    server.shutdown();
    server.join();
}

#[test]
fn close_drops_only_the_current_session() {
    use fv_api::{Mutation, Query, Request, Response};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("keep").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 1,
        }))
        .unwrap();
    client.use_session("scratch").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 2,
        }))
        .unwrap();
    client.close_session().unwrap();
    // connection fell back to the default session; `keep` is untouched,
    // `scratch` is gone (a fresh `use` sees an empty hub entry).
    client.use_session("keep").unwrap();
    match client.execute(&Request::Query(Query::SessionInfo)).unwrap() {
        Response::SessionInfo(info) => assert_eq!(info.n_datasets, 3),
        other => panic!("wrong response: {other:?}"),
    }
    client.use_session("scratch").unwrap();
    match client.execute(&Request::Query(Query::SessionInfo)).unwrap() {
        Response::SessionInfo(info) => assert_eq!(info.n_datasets, 0, "scratch was dropped"),
        other => panic!("wrong response: {other:?}"),
    }
    server.shutdown();
    server.join();
}
