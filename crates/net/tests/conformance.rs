//! Local-vs-remote conformance: replaying a script through a real
//! localhost server must produce a transcript byte-identical to
//! in-process `EngineHub::run_script` replay — including the golden
//! script that pins the whole protocol surface.

use fv_api::EngineHub;
use fv_net::{run_script_remote, Client, Server, ServerConfig};

/// The golden script of `fv-api` (the protocol's reference workload).
const GOLDEN_SCRIPT: &str = include_str!("../../api/tests/data/session.fvs");

/// Scene used by the golden transcript.
const SCENE: (usize, usize) = (800, 600);

fn server(shards: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards,
            scene: SCENE,
        },
    )
    .expect("bind ephemeral port")
}

fn local_transcript(script: &str) -> String {
    EngineHub::with_scene(SCENE.0, SCENE.1)
        .run_script(script)
        .expect("local replay succeeds")
        .transcript()
}

fn remote_transcript(addr: &str, script: &str) -> String {
    let mut out = String::new();
    run_script_remote(addr, script, |block| out.push_str(block)).expect("remote replay succeeds");
    out
}

#[test]
fn golden_script_is_byte_identical_over_the_wire() {
    let server = server(4);
    let addr = server.local_addr().to_string();
    let local = local_transcript(GOLDEN_SCRIPT);
    let remote = remote_transcript(&addr, GOLDEN_SCRIPT);
    assert_eq!(remote, local, "wire transcript drifted from local replay");
    // …and the checked-in golden file agrees too, transitively pinning
    // the wire format.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../api/tests/data/session.golden"
    ))
    .expect("golden file");
    assert_eq!(remote, golden);
    server.shutdown();
    server.join();
}

#[test]
fn remote_transcript_identical_across_shard_counts() {
    // Shard routing must be invisible to any single session's results.
    let local = local_transcript(GOLDEN_SCRIPT);
    for shards in [1, 4] {
        let server = server(shards);
        let addr = server.local_addr().to_string();
        assert_eq!(
            remote_transcript(&addr, GOLDEN_SCRIPT),
            local,
            "transcript must not depend on shard count {shards}"
        );
        server.shutdown();
        server.join();
    }
}

#[test]
fn failing_script_matches_local_prefix_and_error() {
    let script = "\
scenario 80 3
cluster_all
impute 9 3
session_info
";
    let mut hub = EngineHub::with_scene(SCENE.0, SCENE.1);
    let mut local = String::new();
    let local_err = hub
        .run_script_streaming(script, |e| local.push_str(&e.render()))
        .expect_err("impute 9 must fail");

    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut remote = String::new();
    let remote_err = run_script_remote(&addr, script, |b| remote.push_str(b))
        .expect_err("remote replay must fail identically");

    assert_eq!(remote, local, "executed-prefix transcripts must match");
    assert_eq!(remote_err.code, local_err.code);
    assert_eq!(remote_err.message, local_err.message);
    server.shutdown();
    server.join();
}

#[test]
fn typed_client_execute_roundtrips_responses() {
    // Client::execute must hand back typed responses equal to local
    // execution — the decode path the remote CLI rests on.
    use fv_api::{Mutation, Query, Request};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("typed").unwrap();
    let mut engine = fv_api::Engine::with_scene(SCENE.0, SCENE.1);

    let requests = [
        Request::Mutate(Mutation::LoadScenario {
            n_genes: 80,
            seed: 11,
        }),
        Request::Mutate(Mutation::Command(forestview::command::Command::ClusterAll)),
        Request::Mutate(Mutation::Command(forestview::command::Command::Search(
            "stress".into(),
        ))),
        Request::Query(Query::ListDatasets),
        Request::Query(Query::Spell {
            genes: vec![fv_synth::names::orf_name(0)],
            top_n: 3,
        }),
        Request::Query(Query::Render {
            width: 200,
            height: 150,
            path: None,
        }),
        Request::Query(Query::SessionInfo),
    ];
    for request in &requests {
        let local = engine.execute(request).unwrap();
        let remote = client.execute(request).unwrap();
        // Typed equality holds wherever the wire is lossless; for the
        // float-carrying SPELL response, canonical text equality is the
        // contract.
        match &local {
            fv_api::Response::SpellRanking { .. } => assert_eq!(
                fv_api::format_response(&remote),
                fv_api::format_response(&local)
            ),
            _ => assert_eq!(remote, local),
        }
    }
    // typed error parity
    let bad = Request::Mutate(Mutation::Impute { dataset: 9, k: 3 });
    let local_err = engine.execute(&bad).unwrap_err();
    let remote_err = client.execute(&bad).unwrap_err();
    assert_eq!(remote_err.code, local_err.code);
    assert_eq!(remote_err.message, local_err.message);
    server.shutdown();
    server.join();
}

#[test]
fn close_drops_only_the_current_session() {
    use fv_api::{Mutation, Query, Request, Response};
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("keep").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 1,
        }))
        .unwrap();
    client.use_session("scratch").unwrap();
    client
        .execute(&Request::Mutate(Mutation::LoadScenario {
            n_genes: 60,
            seed: 2,
        }))
        .unwrap();
    client.close_session().unwrap();
    // connection fell back to the default session; `keep` is untouched,
    // `scratch` is gone (a fresh `use` sees an empty hub entry).
    client.use_session("keep").unwrap();
    match client.execute(&Request::Query(Query::SessionInfo)).unwrap() {
        Response::SessionInfo(info) => assert_eq!(info.n_datasets, 3),
        other => panic!("wrong response: {other:?}"),
    }
    client.use_session("scratch").unwrap();
    match client.execute(&Request::Query(Query::SessionInfo)).unwrap() {
        Response::SessionInfo(info) => assert_eq!(info.n_datasets, 0, "scratch was dropped"),
        other => panic!("wrong response: {other:?}"),
    }
    server.shutdown();
    server.join();
}
