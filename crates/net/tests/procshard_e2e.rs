//! End-to-end tests of the process shard backend: a real server whose
//! shards are child `fv-shard-worker` processes must be byte-identical
//! to the thread backend (golden conformance), migrate sessions across
//! process boundaries with diff-identical probe transcripts, rebalance
//! automatically under skewed load, answer `E_SHARD_DOWN` for a killed
//! worker while other shards keep serving, and leave zero orphaned
//! children behind after shutdown.

use fv_api::{EngineHub, SessionId};
use fv_net::balance::BalanceConfig;
use fv_net::{
    run_script_remote, shard_of, BalanceMode, Client, Server, ServerConfig, ShardBackendConfig,
};
use std::time::{Duration, Instant};

/// The golden script of `fv-api` (the protocol's reference workload).
const GOLDEN_SCRIPT: &str = include_str!("../../api/tests/data/session.fvs");

/// Scene used by the golden transcript.
const SCENE: (usize, usize) = (800, 600);

/// The standalone worker binary Cargo built alongside this test.
fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_fv-shard-worker").to_string()]
}

fn proc_server(shards: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards,
            backend: ShardBackendConfig::Procs {
                worker_cmd: worker_cmd(),
            },
            scene: SCENE,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port with process shards")
}

fn local_transcript(script: &str) -> String {
    EngineHub::with_scene(SCENE.0, SCENE.1)
        .run_script(script)
        .expect("local replay succeeds")
        .transcript()
}

fn remote_transcript(addr: &str, script: &str) -> String {
    let mut out = String::new();
    run_script_remote(addr, script, |block| out.push_str(block)).expect("remote replay succeeds");
    out
}

/// `kill -0` probe: whether `pid` is still alive (or an unreaped
/// zombie). Tests may spawn processes; production code may not.
fn pid_alive(pid: u32) -> bool {
    std::process::Command::new("kill")
        .args(["-0", &pid.to_string()])
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

#[test]
fn golden_script_is_byte_identical_against_process_shards() {
    let server = proc_server(2);
    let addr = server.local_addr().to_string();

    // The conformance contract, unchanged: a transcript produced by
    // child worker processes is byte-identical to in-process replay and
    // to the checked-in golden file.
    let local = local_transcript(GOLDEN_SCRIPT);
    let remote = remote_transcript(&addr, GOLDEN_SCRIPT);
    assert_eq!(remote, local, "proc-shard transcript drifted from local");
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../api/tests/data/session.golden"
    ))
    .expect("golden file");
    assert_eq!(remote, golden);

    // The stats plane names the backend and the per-shard child pids.
    let mut client = Client::connect(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.backend, "procs");
    let me = std::process::id();
    for shard in &stats.shards {
        assert_ne!(shard.pid, 0, "shard {} has no pid", shard.shard);
        assert_ne!(
            shard.pid, me,
            "shard {} runs in the server process, not a child",
            shard.shard
        );
    }
    let pids: Vec<u32> = stats.shards.iter().map(|s| s.pid).collect();
    let mut dedup = pids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), pids.len(), "one process per shard: {pids:?}");

    server.shutdown();
    server.join();
    // Zero orphans: every child was reaped before join() returned.
    for pid in pids {
        assert!(!pid_alive(pid), "worker {pid} survived shutdown");
    }
}

#[test]
fn migration_between_process_shards_preserves_probe_transcripts() {
    let server = proc_server(2);
    let addr = server.local_addr().to_string();

    // Build real state in one child process: datasets, clustering, a
    // selection, scroll position.
    let setup = "use mover\nscenario 80 9\ncluster_all\nsearch_select stress\nscroll 2\n";
    assert_eq!(remote_transcript(&addr, setup), local_transcript(setup));

    // The probe transcript exercises summary text AND a frame checksum,
    // so any state lost in the image round trip shows up as a diff.
    let probe = "use mover\nsession_info\nlist_datasets\nrender 320 240\n";
    let before = remote_transcript(&addr, probe);

    let home = shard_of(&SessionId::new("mover").unwrap(), 2);
    let away = 1 - home;
    let mut client = Client::connect(&addr).unwrap();
    let pid_of = |client: &mut Client, shard: usize| client.stats().unwrap().shards[shard].pid;
    assert_ne!(
        pid_of(&mut client, home),
        pid_of(&mut client, away),
        "the two shards must be distinct processes"
    );

    // Across the process boundary and back: the probe transcript must
    // be diff-identical at every stop.
    client.migrate("mover", away).unwrap();
    let listed = client.list_sessions().unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0].shard, away, "listing reflects the new process");
    assert_eq!(
        remote_transcript(&addr, probe),
        before,
        "probe transcript diff after migrating into another process"
    );
    client.migrate("mover", home).unwrap();
    assert_eq!(
        remote_transcript(&addr, probe),
        before,
        "probe transcript diff after migrating back"
    );

    // Still byte-identical to a local replay of the same history.
    let mut hub = EngineHub::with_scene(SCENE.0, SCENE.1);
    hub.run_script(setup).expect("local setup succeeds");
    let mut expected = String::new();
    hub.run_script_streaming(probe, |e| expected.push_str(&e.render()))
        .expect("local probe succeeds");
    assert_eq!(before, expected, "probe transcript drifted from local");

    server.shutdown();
    server.join();
}

#[test]
fn skewed_load_triggers_automatic_cross_process_migration() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            backend: ShardBackendConfig::Procs {
                worker_cmd: worker_cmd(),
            },
            scene: SCENE,
            balance: BalanceMode::Auto,
            balance_interval: Duration::from_millis(50),
            balance_cfg: BalanceConfig {
                budget: 2,
                trigger_ratio: 1.3,
                settle_ratio: 1.1,
                min_total_load: 1,
                cooldown_ticks: 3,
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Sessions that all hash-route to shard 0: only an automatic
    // migration can ever populate the shard-1 process.
    let names: Vec<String> = (0..)
        .map(|i| format!("skew{i}"))
        .filter(|name| shard_of(&SessionId::new(name.clone()).unwrap(), 2) == 0)
        .take(4)
        .collect();
    fn round_script(session: &str, round: usize) -> String {
        if round == 0 {
            format!(
                "use {session}\nscenario 80 1\ncluster_all\nsearch_select stress\nsession_info\n"
            )
        } else {
            format!(
                "use {session}\ncluster_all\nsearch_select stress\nscroll {round}\nsession_info\n"
            )
        }
    }
    // Drive all sessions *concurrently* each round (one client thread
    // per session), so the balancer's interval snapshots observe
    // overlapping load — a strictly sequential driver makes whichever
    // session is running the interval's whale, which the policy rightly
    // refuses to move.
    let mut local = EngineHub::with_scene(SCENE.0, SCENE.1);
    let mut drive_round = |round: usize| {
        let handles: Vec<_> = names
            .iter()
            .cloned()
            .map(|name| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let script = round_script(&name, round);
                    let remote = remote_transcript(&addr, &script);
                    (name, script, remote)
                })
            })
            .collect();
        for handle in handles {
            let (name, script, remote) = handle.join().expect("client thread");
            let mut expected = String::new();
            local
                .run_script_streaming(&script, |e| expected.push_str(&e.render()))
                .expect("local replay succeeds");
            assert_eq!(
                remote, expected,
                "round {round}, session {name}: transcript drifted"
            );
        }
    };
    drive_round(0);

    let mut client = Client::connect(&addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut round = 1;
    loop {
        let stats = client.stats().expect("stats");
        if stats.balancer_moves >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no automatic cross-process migration; ticks={} moves={} failed={}",
            stats.balancer_ticks,
            stats.balancer_moves,
            stats.balancer_failed
        );
        drive_round(round);
        round += 1;
        std::thread::sleep(Duration::from_millis(60));
    }

    // A session genuinely moved between processes, none were lost, and
    // its state survived the image round trip.
    std::thread::sleep(Duration::from_millis(300));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.balancer_failed, 0, "no move may fail in this test");
    let sessions = client.list_sessions().expect("list-sessions");
    assert_eq!(sessions.len(), names.len(), "no session may be lost");
    assert!(
        sessions.iter().any(|s| s.shard == 1),
        "at least one session must live in the shard-1 process: {sessions:?}"
    );
    for name in &names {
        let probe = format!("use {name}\nsession_info\nlist_datasets\n");
        let remote = remote_transcript(&addr, &probe);
        let mut expected = String::new();
        local
            .run_script_streaming(&probe, |e| expected.push_str(&e.render()))
            .expect("local probe succeeds");
        assert_eq!(remote, expected, "post-balance probe drifted for {name}");
    }
    server.shutdown();
    server.join();
}

#[test]
fn killed_worker_answers_shard_down_and_other_shards_survive() {
    let server = proc_server(2);
    let addr = server.local_addr().to_string();

    // One session per shard, so each child process holds real state.
    let mut client = Client::connect(&addr).unwrap();
    let name_on = |shard: usize| {
        (0..)
            .map(|i| format!("s{i}"))
            .find(|n| shard_of(&SessionId::new(n.clone()).unwrap(), 2) == shard)
            .unwrap()
    };
    let (victim, survivor) = (name_on(0), name_on(1));
    for name in [&victim, &survivor] {
        client.use_session(name).unwrap();
        client.roundtrip("scenario 60 5").unwrap().unwrap();
    }
    let pid = client.stats().unwrap().shards[0].pid;

    // Kill the shard-0 worker out from under the server. The child
    // lingers as a zombie until the backend reaps it at shutdown; the
    // observable effect is the typed refusal, which the server notices
    // as soon as the dead socket surfaces.
    assert!(std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .unwrap()
        .success());

    // The dead shard's session answers a typed E_SHARD_DOWN naming the
    // pid — not a hang, not a dropped connection.
    client.use_session(&victim).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let err = loop {
        match client.roundtrip("session_info").expect("transport alive") {
            Err(e) => break e,
            Ok(_) => {
                assert!(
                    Instant::now() < deadline,
                    "server never noticed the dead worker {pid}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    assert_eq!(err.code, fv_api::ErrorCode::ShardDown);
    assert!(
        err.message.contains(&pid.to_string()),
        "error should name the dead pid: {err}"
    );

    // The other process keeps serving, stats still answers, and the
    // dead shard's sessions are gone from the listing.
    client.use_session(&survivor).unwrap();
    client.roundtrip("session_info").unwrap().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), 2);
    let sessions = client.list_sessions().unwrap();
    assert!(
        sessions.iter().all(|s| s.shard == 1),
        "lost sessions must not be listed: {sessions:?}"
    );

    // Shutdown still reaps cleanly with one shard already dead.
    let surviving_pid = stats.shards[1].pid;
    server.shutdown();
    server.join();
    assert!(!pid_alive(surviving_pid), "survivor not reaped");
}
