//! End-to-end autobalancer tests against a real localhost server:
//! skewed traffic must trigger at least one *automatic* migration with
//! transcripts staying byte-identical to local replay, and an
//! install-failure during an automatic migration must restore the
//! session to its source shard and keep it excluded for its cooldown.

use fv_api::{EngineHub, SessionId};
use fv_net::balance::BalanceConfig;
use fv_net::{run_script_remote, shard_of, BalanceMode, Client, Server, ServerConfig};
use std::time::{Duration, Instant};

const SCENE: (usize, usize) = (800, 600);

/// Session names that all hash-route to shard 0 of `shards` — the
/// worst-case skew a static partitioner can produce.
fn skewed_names(n: usize, shards: usize) -> Vec<String> {
    (0..)
        .map(|i| format!("skew{i}"))
        .filter(|name| shard_of(&SessionId::new(name.clone()).unwrap(), shards) == 0)
        .take(n)
        .collect()
}

/// One round of real work for `session` — enough latency and request
/// count for the balancer's load deltas to register. Round 0 loads the
/// scenario datasets; later rounds re-run the analysis pipeline over
/// them (a scenario can only be loaded once per session).
fn round_script(session: &str, round: usize) -> String {
    if round == 0 {
        format!(
            "use {session}\nscenario 80 1\ncluster_all\nsearch_select stress\nscroll 1\nsession_info\n"
        )
    } else {
        format!("use {session}\ncluster_all\nsearch_select stress\nscroll {round}\nsession_info\n")
    }
}

fn remote_transcript(addr: &str, script: &str) -> String {
    let mut out = String::new();
    run_script_remote(addr, script, |block| out.push_str(block)).expect("remote replay succeeds");
    out
}

#[test]
fn skewed_load_triggers_automatic_migration_with_identical_transcripts() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            scene: SCENE,
            balance: BalanceMode::Auto,
            balance_interval: Duration::from_millis(50),
            balance_cfg: BalanceConfig {
                budget: 2,
                trigger_ratio: 1.3,
                settle_ratio: 1.1,
                min_total_load: 1,
                cooldown_ticks: 3,
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Six sessions, all hash-routed to shard 0: a statically-partitioned
    // server would leave shard 1 idle forever. Each round drives all six
    // sessions *concurrently* (pipelined clients), so the balancer's
    // interval snapshots observe genuinely overlapping load — and every
    // transcript is still compared byte-for-byte against local replay.
    let names = skewed_names(6, 2);
    let mut local = EngineHub::with_scene(SCENE.0, SCENE.1);
    let mut drive_round = |round: usize| {
        let handles: Vec<_> = names
            .iter()
            .cloned()
            .map(|name| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let script = round_script(&name, round);
                    let remote = remote_transcript(&addr, &script);
                    (name, script, remote)
                })
            })
            .collect();
        for handle in handles {
            let (name, script, remote) = handle.join().expect("client thread");
            let mut expected = String::new();
            local
                .run_script_streaming(&script, |e| expected.push_str(&e.render()))
                .expect("local replay succeeds");
            assert_eq!(
                remote, expected,
                "round {round}, session {name}: transcript drifted from local replay"
            );
        }
    };
    drive_round(0);

    // Keep skewed load flowing, one concurrent round per poll, until the
    // balancer has moved at least one session off the hot shard.
    let mut client = Client::connect(&addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut round = 1;
    loop {
        let stats = client.stats().expect("stats");
        if stats.balancer_moves >= 1 {
            assert!(stats.balancer_ticks >= 1);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no automatic migration after skewed load; stats: ticks={} moves={} failed={}",
            stats.balancer_ticks,
            stats.balancer_moves,
            stats.balancer_failed
        );
        drive_round(round);
        round += 1;
        std::thread::sleep(Duration::from_millis(60));
    }

    // Let in-flight work drain, then assert the post-balance steady
    // state: nothing stuck in any shard queue, no failed move.
    std::thread::sleep(Duration::from_millis(300));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.balancer_failed, 0, "no move may fail in this test");
    for shard in &stats.shards {
        assert_eq!(
            shard.queued, 0,
            "shard {} still has queued jobs after balancing",
            shard.shard
        );
    }
    // The placement itself moved: some session now lives on shard 1, and
    // none were lost.
    let sessions = client.list_sessions().expect("list-sessions");
    assert_eq!(sessions.len(), names.len(), "no session may be lost");
    assert!(
        sessions.iter().any(|s| s.shard == 1),
        "at least one session must live on shard 1: {sessions:?}"
    );
    // The balance status plane agrees with stats and shows the decisions.
    let status = client.balance_status().expect("balance status");
    assert_eq!(status.mode, BalanceMode::Auto);
    assert!(
        status.completed >= stats.balancer_moves,
        "status plane lags stats: {} < {}",
        status.completed,
        stats.balancer_moves
    );
    assert!(!status.recent.is_empty());

    // And after all that movement, transcripts still match local replay
    // byte for byte — migration is invisible to session semantics.
    for name in &names {
        let probe = format!("use {name}\nsession_info\nlist_datasets\n");
        let remote = remote_transcript(&addr, &probe);
        let mut expected = String::new();
        local
            .run_script_streaming(&probe, |e| expected.push_str(&e.render()))
            .expect("local probe succeeds");
        assert_eq!(remote, expected, "post-balance probe drifted for {name}");
    }

    server.shutdown();
    server.join();
}

#[test]
fn install_failure_restores_session_and_cooldown_excludes_it() {
    // Shard 1 refuses every install (injected fault): each automatic
    // migration must take the extract → install → restore chain, leave
    // the session alive on its source shard with state intact, and put
    // it in cooldown so the balancer does not hammer the refusing
    // target.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            scene: SCENE,
            balance: BalanceMode::Auto,
            balance_interval: Duration::from_millis(50),
            balance_cfg: BalanceConfig {
                budget: 1,
                trigger_ratio: 1.2,
                settle_ratio: 1.1,
                min_total_load: 1,
                // Effectively infinite: within this test no cooldown may
                // lapse, so each session is attempted at most once.
                cooldown_ticks: 1_000_000,
            },
            fault_refuse_install_to: Some(1),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Two sessions, both hash-routed to shard 0 — everything the
    // balancer plans must target the refusing shard 1.
    let names = skewed_names(2, 2);
    let mut local = EngineHub::with_scene(SCENE.0, SCENE.1);
    for name in &names {
        let script = round_script(name, 0);
        let remote = remote_transcript(&addr, &script);
        let mut expected = String::new();
        local
            .run_script_streaming(&script, |e| expected.push_str(&e.render()))
            .expect("local replay succeeds");
        assert_eq!(remote, expected);
    }

    // Keep light traffic flowing so every tick sees a fresh load delta,
    // until both sessions have been tried (and failed) once. The
    // deadline is generous: under a fully parallel test run (including
    // the process-shard suite spawning worker children) balancer ticks
    // can lag well behind the 50ms interval.
    let mut client = Client::connect(&addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        for name in &names {
            for line in [format!("use {name}"), "session_info".to_string()] {
                client
                    .roundtrip(&line)
                    .expect("transport alive")
                    .expect("request succeeds");
            }
        }
        let stats = client.stats().expect("stats");
        assert_eq!(stats.balancer_moves, 0, "no install can succeed here");
        if stats.balancer_failed >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "balancer never attempted both sessions; failed={}",
            stats.balancer_failed
        );
        std::thread::sleep(Duration::from_millis(40));
    }

    // Both sessions are now cooling. Keep driving skewed load across
    // many more intervals: the cooldown must hold — no third failure,
    // still no successful move.
    for _ in 0..12 {
        for name in &names {
            client.roundtrip(&format!("use {name}")).unwrap().unwrap();
            client.roundtrip("session_info").unwrap().unwrap();
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.balancer_failed, 2,
        "cooldown must exclude both sessions after their single failed attempt"
    );
    assert_eq!(stats.balancer_moves, 0);
    let status = client.balance_status().expect("balance status");
    assert_eq!(status.failed, 2);
    assert!(status.cooling >= 2, "both sessions must still be cooling");
    assert!(status
        .recent
        .iter()
        .all(|m| m.outcome == fv_net::balance::MoveOutcome::Failed));

    // The restore path preserved everything: both sessions still live on
    // shard 0, and their state is byte-identical to local replay (the
    // poll traffic above was queries only, so the local hub's sessions
    // saw the same mutations).
    let sessions = client.list_sessions().expect("list-sessions");
    assert_eq!(sessions.len(), names.len());
    for s in &sessions {
        assert_eq!(
            s.shard, 0,
            "restored session {} must stay on shard 0",
            s.name
        );
    }
    for name in &names {
        let probe = format!("use {name}\nsession_info\nlist_datasets\n");
        let remote = remote_transcript(&addr, &probe);
        let mut expected = String::new();
        local
            .run_script_streaming(&probe, |e| expected.push_str(&e.render()))
            .expect("local probe succeeds");
        assert_eq!(
            remote, expected,
            "restored session {name} lost state on the failed migration"
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn flipping_to_auto_reacts_to_fresh_load_only_no_stale_burst() {
    // Regression for the Off→Auto flip: the server keeps gathering and
    // ticking while the balancer is Off (plans nothing, but load-delta
    // baselines stay fresh), so flipping to auto after a long skewed
    // history must NOT replay that history as one giant delta and start
    // migrating idle sessions.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            scene: SCENE,
            balance: BalanceMode::Off,
            balance_interval: Duration::from_millis(50),
            balance_cfg: BalanceConfig {
                budget: 2,
                trigger_ratio: 1.3,
                settle_ratio: 1.1,
                min_total_load: 1,
                cooldown_ticks: 3,
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Heavy skewed history while Off: all sessions on shard 0.
    let names = skewed_names(4, 2);
    for name in &names {
        remote_transcript(&addr, &round_script(name, 0));
    }
    // Let several Off-mode ticks absorb that history into the baselines.
    let mut client = Client::connect(&addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client.stats().expect("stats");
        assert_eq!(stats.balancer_moves, 0, "off mode must never move");
        if stats.balancer_ticks >= 3 {
            break;
        }
        assert!(Instant::now() < deadline, "off-mode ticks never ran");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Flip to auto with the system idle: across many intervals, zero
    // moves — the stale history is already baselined away.
    client.set_balance(BalanceMode::Auto).expect("set auto");
    std::thread::sleep(Duration::from_millis(500));
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.balancer_moves, 0,
        "idle flip must not migrate on stale load"
    );
    assert_eq!(stats.balancer_failed, 0);
    let status = client.balance_status().expect("status");
    assert_eq!(status.mode, BalanceMode::Auto);
    assert_eq!(status.planned, 0);
    server.shutdown();
    server.join();
}
