//! fv-stream end-to-end: one render on the server must reach N
//! subscribers byte-identical to a local [`EngineHub`] replay's render;
//! a stalled subscriber must never block the event loop, its peers, or
//! request/response traffic; a migrated session's subscribers must
//! re-sync via a keyframe with no sequence gap.

use fv_api::{EngineHub, SessionId};
use fv_net::{shard_of, Client, Server, ServerConfig, Watcher};
use fv_render::Framebuffer;
use fv_wall::stream::FrameKind;
use std::time::Duration;

const SCENE: (usize, usize) = (800, 600);

fn server(shards: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards,
            scene: SCENE,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// Render what a local replay of `lines` (on a fresh hub) looks like —
/// the ground truth every subscriber's reassembled wall must match.
fn local_render(session: &str, lines: &[&str]) -> Framebuffer {
    let mut hub = EngineHub::with_scene(SCENE.0, SCENE.1);
    let script = format!("use {session}\n{}\n", lines.join("\n"));
    hub.run_script(&script).expect("local replay succeeds");
    let sid = SessionId::new(session.to_string()).unwrap();
    let engine = hub.get(&sid).expect("session exists");
    forestview::renderer::render_desktop(engine.session(), SCENE.0, SCENE.1)
}

/// Run `lines` on the server through a request/response client.
fn run_remote(client: &mut Client, session: &str, lines: &[&str]) {
    client.use_session(session).unwrap();
    for line in lines {
        client
            .roundtrip(line)
            .expect("transport up")
            .unwrap_or_else(|e| panic!("request {line:?} failed: {e}"));
    }
}

/// Drain every frame currently flowing (until `idle` of silence).
fn drain(watcher: &mut Watcher, idle: Duration) -> Vec<(u64, FrameKind)> {
    watcher.set_read_timeout(Some(idle)).unwrap();
    let mut seen = Vec::new();
    while let Some(frame) = watcher.next_frame().expect("stream stays well-formed") {
        seen.push((frame.seq, frame.kind));
    }
    seen
}

#[test]
fn keyframe_matches_local_render_for_every_subscriber() {
    let server = server(4);
    let addr = server.local_addr().to_string();
    let mutations = [
        "scenario 80 3",
        "cluster_all",
        "scroll 2",
        "set_contrast 0 1.8",
    ];
    let mut client = Client::connect(&addr).unwrap();
    run_remote(&mut client, "walls", &mutations);

    // Subscribe AFTER the state exists: each viewer gets a keyframe of
    // the current desktop, regardless of its tiling.
    let expected = local_render("walls", &mutations);
    for (tx, ty) in [(4, 2), (2, 3), (1, 1)] {
        let mut w = Watcher::connect(&addr, "walls", tx, ty).unwrap();
        let seen = drain(&mut w, Duration::from_millis(400));
        assert_eq!(seen.len(), tx * ty, "one keyframe per tile");
        assert!(seen
            .iter()
            .all(|&(seq, kind)| seq == 0 && kind == FrameKind::Key));
        assert_eq!(
            w.framebuffer().bytes(),
            expected.bytes(),
            "{tx}x{ty} viewer reassembled a different wall than a local render"
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn deltas_converge_with_contiguous_seqs() {
    let server = server(2);
    let addr = server.local_addr().to_string();
    let setup = ["scenario 80 3", "cluster_all"];
    let mut client = Client::connect(&addr).unwrap();
    run_remote(&mut client, "walls", &setup);

    let mut w = Watcher::connect(&addr, "walls", 4, 2).unwrap();
    let key = drain(&mut w, Duration::from_millis(400));
    assert!(key.iter().all(|&(_, k)| k == FrameKind::Key));

    // Mutations after the keyframe arrive as damage-limited deltas.
    let extra = ["scroll 1", "scroll 2", "set_contrast 0 2.5", "toggle_sync"];
    for line in extra {
        client.roundtrip(line).unwrap().unwrap();
    }
    let deltas = drain(&mut w, Duration::from_millis(400));
    assert!(!deltas.is_empty(), "mutations must stream deltas");
    assert!(deltas.iter().all(|&(_, k)| k == FrameKind::Delta));

    // Per-subscriber seqs are contiguous from 0 — the proof no frame was
    // lost or skipped.
    let mut seqs: Vec<u64> = key.iter().chain(&deltas).map(|&(s, _)| s).collect();
    seqs.dedup();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(seqs, sorted, "seqs arrived out of order");
    assert_eq!(sorted.first(), Some(&0));
    assert_eq!(
        sorted.last().map(|&s| s + 1),
        Some(sorted.len() as u64),
        "sequence numbers must be gapless: {sorted:?}"
    );

    let all: Vec<&str> = setup.iter().chain(&extra).copied().collect();
    assert_eq!(
        w.framebuffer().bytes(),
        local_render("walls", &all).bytes(),
        "delta stream diverged from local render"
    );
    server.shutdown();
    server.join();
}

#[test]
fn stalled_subscriber_never_blocks_peers_and_recovers_via_keyframe() {
    let server = server(2);
    let addr = server.local_addr().to_string();
    let setup = ["scenario 80 3", "cluster_all"];
    let mut client = Client::connect(&addr).unwrap();
    run_remote(&mut client, "walls", &setup);

    // The stalled viewer subscribes, acks once, and then never reads:
    // either its outbox fills past the watermark (the initial keyframe
    // is 800×600×3 ≈ 1.4 MB) or its ack lag crosses the threshold —
    // both mark it for a fresh keyframe instead of a backlog.
    let mut stalled = Watcher::connect(&addr, "walls", 2, 2).unwrap();
    stalled.ack(0);
    // A healthy viewer rides along.
    let mut fast = Watcher::connect(&addr, "walls", 4, 2).unwrap();
    let _ = drain(&mut fast, Duration::from_millis(400));

    // Hammer mutations; request/response must stay live throughout even
    // though one subscriber is comatose.
    let mut hammered = Vec::new();
    for i in 0..60 {
        let line = format!("scroll {}", i % 7);
        client.roundtrip(&line).unwrap().unwrap();
        hammered.push(line);
    }
    client.ping().expect("request/response stays live");
    let _ = drain(&mut fast, Duration::from_millis(400));

    // The healthy viewer converged on the final state.
    let mut all: Vec<&str> = setup.to_vec();
    all.extend(hammered.iter().map(|s| s.as_str()));
    let expected = local_render("walls", &all);
    assert_eq!(
        fast.framebuffer().bytes(),
        expected.bytes(),
        "fast viewer diverged while a peer was stalled"
    );

    // The server noticed the backlog and dropped the stalled viewer to a
    // keyframe re-sync rather than queueing 60 updates behind it.
    let stats = client.stats().unwrap();
    assert_eq!(stats.stream.subscribers, 2);
    assert!(stats.stream.dropped >= 1, "stats: {:?}", stats.stream);
    assert!(stats.stream.frames > 0 && stats.stream.bytes > 0);

    // The stalled viewer finally reads: whatever was in flight before
    // the cutoff, then — once it acks up to date — a fresh keyframe of
    // the CURRENT state, never the 60-update backlog.
    let mut seen = drain(&mut stalled, Duration::from_millis(600));
    assert!(!seen.is_empty());
    if let Some(last) = stalled.last_seq() {
        stalled.ack(last);
    }
    seen.extend(drain(&mut stalled, Duration::from_millis(600)));
    assert!(stalled.keyframes() >= 2, "initial + re-sync keyframes");
    // Per-subscriber seqs stay gapless even across the drop-to-keyframe:
    // the encoder freezes while the viewer is cut off, so the re-sync
    // keyframe lands at exactly the next seq.
    let seqs: Vec<u64> = seen.iter().map(|&(s, _)| s).collect();
    let mut uniq = seqs.clone();
    uniq.dedup();
    assert_eq!(
        uniq.last().map(|&s| s + 1),
        Some(uniq.len() as u64),
        "stalled viewer saw a seq gap: {uniq:?}"
    );
    assert_eq!(
        stalled.framebuffer().bytes(),
        expected.bytes(),
        "recovered viewer must land on the current state"
    );
    server.shutdown();
    server.join();
}

#[test]
fn migration_resyncs_subscribers_with_a_gapless_keyframe() {
    let shards = 4;
    let server = server(shards);
    let addr = server.local_addr().to_string();
    let setup = ["scenario 60 1", "cluster_all", "scroll 1"];
    let mut client = Client::connect(&addr).unwrap();
    run_remote(&mut client, "walls", &setup);

    let mut w = Watcher::connect(&addr, "walls", 2, 2).unwrap();
    let key = drain(&mut w, Duration::from_millis(400));
    assert!(key.iter().all(|&(seq, k)| seq == 0 && k == FrameKind::Key));

    // Move the watched session to another shard; the subscription must
    // survive with a keyframe cut on the NEW shard, at the next seq.
    let sid = SessionId::new("walls".to_string()).unwrap();
    let to = (shard_of(&sid, shards) + 1) % shards;
    client.migrate("walls", to).expect("migration succeeds");
    let resync = drain(&mut w, Duration::from_millis(600));
    assert_eq!(resync.len(), 4, "one keyframe per tile after migration");
    assert!(
        resync
            .iter()
            .all(|&(seq, k)| seq == 1 && k == FrameKind::Key),
        "re-sync must be a keyframe at the next seq (no gap): {resync:?}"
    );
    assert_eq!(
        w.framebuffer().bytes(),
        local_render("walls", &setup).bytes(),
        "post-migration keyframe diverged from local render"
    );

    // The stream keeps flowing from the new shard.
    client.roundtrip("scroll 3").unwrap().unwrap();
    let after = drain(&mut w, Duration::from_millis(400));
    assert!(!after.is_empty(), "stream died after migration");
    server.shutdown();
    server.join();
}

#[test]
fn unsubscribe_stops_the_stream_and_is_idempotent() {
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    run_remote(&mut client, "walls", &["scenario 60 1"]);

    let mut w = Watcher::connect(&addr, "walls", 2, 2).unwrap();
    let _ = drain(&mut w, Duration::from_millis(400));
    w.set_read_timeout(None).unwrap();
    w.unsubscribe().expect("unsubscribe acks");

    // Mutations after unsubscribe must not reach the ex-viewer.
    client.roundtrip("scroll 5").unwrap().unwrap();
    client.roundtrip("toggle_sync").unwrap().unwrap();
    let after = drain(&mut w, Duration::from_millis(400));
    assert!(after.is_empty(), "frames after unsubscribe: {after:?}");

    let stats = client.stats().unwrap();
    assert_eq!(stats.stream.subscribers, 0);
    server.shutdown();
    server.join();
}

#[test]
fn subscribe_validation_rejects_bad_grids() {
    let server = server(1);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    // 800x600 does not divide into 7x3 tiles.
    let err = client
        .roundtrip("subscribe walls 7x3")
        .unwrap()
        .expect_err("grid must divide the scene");
    assert_eq!(err.code, fv_api::ErrorCode::InvalidRequest);
    assert!(err.message.contains("does not divide"), "{}", err.message);
    // Malformed grids are parse errors.
    let err = client
        .roundtrip("subscribe walls 4by2")
        .unwrap()
        .unwrap_err();
    assert_eq!(err.code, fv_api::ErrorCode::Parse);
    let err = client
        .roundtrip("subscribe walls 0x2")
        .unwrap()
        .unwrap_err();
    assert_eq!(err.code, fv_api::ErrorCode::Parse);
    // The connection survives and request/response still works.
    client.ping().unwrap();
    server.shutdown();
    server.join();
}
