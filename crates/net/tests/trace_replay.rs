//! End-to-end wire-trace tests: record a live exchange (by hand or
//! through the [`fv_net::tap`] proxy), then prove replays of that trace
//! are byte-identical — against fresh servers, across servers, and
//! against a local hub.
//!
//! The regression the E_BUSY test pins: a trace whose recorded burst
//! overflowed the server's pending-request queue (so its transcript
//! contains an `E_BUSY` rejection AND the skipped tail of a failed
//! pipelined run) must replay to the *same bytes* on a fresh server —
//! i.e. replay preserves the pipelining that produced those replies,
//! and the server's reply order is deterministic under it.

use fv_api::{ErrorCode, TraceEvent};
use fv_net::frame::{read_reply, LineReader};
use fv_net::{replay_local, replay_remote, Server, ServerConfig};
use std::io::Write;
use std::net::{TcpListener, TcpStream};

fn tiny_server(queue_limit: usize) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            scene: (640, 480),
            queue_limit,
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

/// Write all of `lines` as ONE pipelined burst, then read one reply per
/// line, returning the exchange as a well-formed trace (sends first,
/// then recvs — exactly how replay re-batches them).
fn record_pipelined_burst(addr: &str, lines: &[&str]) -> Vec<TraceEvent> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut burst = lines.join("\n");
    burst.push('\n');
    writer.write_all(burst.as_bytes()).expect("write burst");
    let mut reader = LineReader::new(stream);
    let mut events: Vec<TraceEvent> = lines
        .iter()
        .map(|l| TraceEvent::Send(l.to_string()))
        .collect();
    for _ in lines {
        let reply = read_reply(&mut reader)
            .expect("read reply")
            .expect("server closed early");
        events.push(TraceEvent::Recv(reply));
    }
    events
}

/// A burst that overflows a queue_limit=3 server *and* fails mid-run:
/// the recorded transcript must contain an E_BUSY rejection and a
/// skipped-tail error, and replaying the trace twice against fresh
/// servers must reproduce both, byte-for-byte.
#[test]
fn busy_and_skipped_tail_replays_byte_identically() {
    let recorder = tiny_server(3);
    let lines = [
        "use t",
        "scenario 60 7", // ok (slow: queue stays occupied)
        "impute 9 3",    // E_NOT_FOUND: only datasets 0..3 exist
        "scroll 1",      // same run as the failure -> skipped tail
        "session_info",  // past the queue limit -> E_BUSY
        "session_info",
        "ping",
    ];
    let events = record_pipelined_burst(&recorder.local_addr().to_string(), &lines);
    recorder.shutdown();
    recorder.join();

    let errs: Vec<&fv_api::ApiError> = events.iter().filter_map(|e| e.err()).collect();
    assert!(
        errs.iter().any(|e| e.code == ErrorCode::Busy),
        "burst should have overflowed the queue: {errs:?}"
    );
    assert!(
        errs.iter()
            .any(|e| e.code == ErrorCode::NotFound && e.message.contains("dataset")),
        "impute of a missing dataset should fail typed: {errs:?}"
    );
    assert!(
        errs.iter().any(|e| e.message.starts_with("skipped:")),
        "the failed run should skip its tail: {errs:?}"
    );

    // Two fresh servers with the same shape; the replays must agree with
    // the recording and (therefore) with each other, byte for byte.
    let mut transcripts = Vec::new();
    for _ in 0..2 {
        let server = tiny_server(3);
        let outcome = replay_remote(&server.local_addr().to_string(), &events).expect("replay ran");
        assert!(
            outcome.matches(),
            "replay diverged: {:?}",
            outcome.first_divergence()
        );
        transcripts.push(outcome.received);
        server.shutdown();
        server.join();
    }
    assert_eq!(transcripts[0], transcripts[1]);
}

/// The same trace survives a round-trip through the text format: what
/// `fvtool trace record` writes, `fvtool trace replay` reproduces.
#[test]
fn formatted_trace_replays_after_reparse() {
    let server = tiny_server(128);
    let lines = ["use fmt", "scenario 60 3", "session_info", "scroll 2"];
    let events = record_pipelined_burst(&server.local_addr().to_string(), &lines);
    server.shutdown();
    server.join();

    let text = fv_api::format_trace(&events);
    let reparsed = fv_api::parse_trace(&text).expect("trace text parses");
    assert_eq!(events, reparsed);

    let server = tiny_server(128);
    let outcome = replay_remote(&server.local_addr().to_string(), &reparsed).expect("replay ran");
    assert!(
        outcome.matches(),
        "replay diverged: {:?}",
        outcome.first_divergence()
    );
    server.shutdown();
    server.join();
}

/// Record through the tap proxy (a real client talking through it to a
/// real server), then replay the captured trace both remotely and
/// locally: all three transcripts must agree.
#[test]
fn tap_recorded_trace_replays_remotely_and_locally() {
    let server = tiny_server(128);
    let upstream = server.local_addr().to_string();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind tap");
    let tap_addr = listener.local_addr().expect("tap addr").to_string();
    let recorder = std::thread::spawn(move || fv_net::record_session(listener, &upstream));

    // Drive the session *through the tap* with the plain client.
    let mut client = fv_net::Client::connect(&tap_addr).expect("connect via tap");
    for line in ["use tapped", "scenario 60 5", "session_info", "scroll -1"] {
        let _ = client.roundtrip(line).expect("roundtrip");
    }
    drop(client);
    let events = recorder
        .join()
        .expect("tap thread")
        .expect("recording succeeded");
    assert_eq!(events.iter().filter(|e| e.is_send()).count(), 4);
    assert_eq!(events.iter().filter(|e| !e.is_send()).count(), 4);

    let remote = {
        let fresh = tiny_server(128);
        let outcome =
            replay_remote(&fresh.local_addr().to_string(), &events).expect("remote replay");
        assert!(
            outcome.matches(),
            "remote replay diverged: {:?}",
            outcome.first_divergence()
        );
        fresh.shutdown();
        fresh.join();
        outcome.received
    };
    let local = {
        let outcome = replay_local((640, 480), &events).expect("local replay");
        assert!(
            outcome.matches(),
            "local replay diverged: {:?}",
            outcome.first_divergence()
        );
        outcome.received
    };
    assert_eq!(remote, local);

    server.shutdown();
    server.join();
}
