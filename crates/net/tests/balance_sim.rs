//! Deterministic load-simulation harness for the rebalancing policy.
//!
//! The policy core is a pure function and the [`Balancer`] around it is
//! clock-free, so thousands of synthetic ticks replay here in
//! milliseconds with **no server, no sockets, no wall clock**: the
//! simulator owns a session→shard placement map, feeds the balancer
//! scripted per-tick demand as cumulative observations (exactly the
//! shape the server builds from shard reports), applies the plans it
//! gets back, and checks the safety invariants on *every* tick:
//!
//! - a plan never exceeds the per-tick budget;
//! - a move never targets its source shard (and both ends are in range);
//! - a move's source matches the session's actual placement;
//! - no session moves twice within its cooldown (no-thrash);
//! - a "whale" session that *is* the imbalance is never bounced around.
//!
//! Five named load patterns drive it — uniform, zipfian-skewed,
//! single-whale, flash-crowd, draining-shard — each asserting
//! convergence (bounded max/mean shard-load ratio) where convergence is
//! possible. A seeded xorshift generator makes every run byte-for-byte
//! reproducible; running a scenario twice must yield identical move
//! histories.
//!
//! The property tests at the bottom hit `plan_moves` directly with
//! random snapshots: source≠target, budget respect, pinned exclusion,
//! the balanced/empty fixpoint, and spread monotonicity.

use fv_net::balance::{
    plan_moves, BalanceConfig, BalanceMode, Balancer, MovePlan, SessionLoad, SessionObservation,
    ShardLoad, ShardObservation, ShardSnapshot,
};
use fv_net::metrics::LatencyHistogram;
use std::collections::BTreeMap;

/// Deterministic xorshift64* — the simulator's only randomness source.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

/// One move the simulator applied, for history/no-thrash assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AppliedMove {
    tick: u64,
    session: String,
    from: usize,
    to: usize,
}

struct Sim {
    n_shards: usize,
    bal: Balancer,
    cfg: BalanceConfig,
    /// session → shard, the simulated cluster state.
    placement: BTreeMap<String, usize>,
    /// session → cumulative attempted requests.
    totals: BTreeMap<String, u64>,
    /// Every applied move, in order.
    history: Vec<AppliedMove>,
    tick: u64,
}

impl Sim {
    fn new(n_shards: usize, cfg: BalanceConfig, placement: &[(&str, usize)]) -> Sim {
        Sim {
            n_shards,
            bal: Balancer::new(BalanceMode::Auto, cfg),
            cfg,
            placement: placement
                .iter()
                .map(|&(s, shard)| (s.to_string(), shard))
                .collect(),
            totals: placement.iter().map(|&(s, _)| (s.to_string(), 0)).collect(),
            history: Vec::new(),
            tick: 0,
        }
    }

    /// One tick: add `demand` (requests this interval, per session) to
    /// the cumulative totals, observe, plan, verify the invariants, and
    /// apply the moves.
    fn tick(&mut self, demand: &[(String, u64)]) -> Vec<MovePlan> {
        self.tick += 1;
        for (session, d) in demand {
            *self
                .totals
                .get_mut(session)
                .unwrap_or_else(|| panic!("demand for unknown session {session}")) += d;
        }
        let observations = self.observe();
        let plans = self.bal.tick(&observations);
        self.verify_and_apply(&plans);
        plans
    }

    /// Build cumulative observations from the current placement — the
    /// same shape the server assembles from shard reports. Histograms
    /// stay empty, so session loads degrade to pure request deltas.
    fn observe(&self) -> Vec<ShardObservation> {
        (0..self.n_shards)
            .map(|shard| {
                let sessions: Vec<SessionObservation> = self
                    .placement
                    .iter()
                    .filter(|&(_, &s)| s == shard)
                    .map(|(name, _)| SessionObservation {
                        session: name.clone(),
                        requests_total: self.totals[name],
                        dataset_bytes: 0,
                        in_flight: false,
                    })
                    .collect();
                ShardObservation {
                    shard,
                    queued: 0,
                    requests_total: sessions.iter().map(|s| s.requests_total).sum(),
                    latency: LatencyHistogram::new(),
                    sessions,
                }
            })
            .collect()
    }

    fn verify_and_apply(&mut self, plans: &[MovePlan]) {
        assert!(
            plans.len() <= self.cfg.budget,
            "tick {}: {} moves exceed budget {}",
            self.tick,
            plans.len(),
            self.cfg.budget
        );
        for plan in plans {
            assert_ne!(
                plan.to, plan.from,
                "tick {}: move targets its source shard",
                self.tick
            );
            assert!(plan.from < self.n_shards && plan.to < self.n_shards);
            assert_eq!(
                self.placement[&plan.session], plan.from,
                "tick {}: plan's source disagrees with actual placement of {}",
                self.tick, plan.session
            );
            // No-thrash: the same session must not have moved within its
            // cooldown window.
            if let Some(previous) = self
                .history
                .iter()
                .rev()
                .find(|m| m.session == plan.session)
            {
                assert!(
                    self.tick - previous.tick >= self.cfg.cooldown_ticks,
                    "tick {}: session {} moved again only {} tick(s) after tick {} \
                     (cooldown {})",
                    self.tick,
                    plan.session,
                    self.tick - previous.tick,
                    previous.tick,
                    self.cfg.cooldown_ticks
                );
            }
            self.placement.insert(plan.session.clone(), plan.to);
            self.bal.record_outcome(&plan.session, true);
            self.history.push(AppliedMove {
                tick: self.tick,
                session: plan.session.clone(),
                from: plan.from,
                to: plan.to,
            });
        }
    }

    /// Per-shard load under `demand` and the *current* placement — the
    /// convergence metric patterns assert on.
    fn shard_loads(&self, demand: &[(String, u64)]) -> Vec<u64> {
        let mut loads = vec![0u64; self.n_shards];
        for (session, d) in demand {
            loads[self.placement[session]] += d;
        }
        loads
    }
}

/// Convergence bound: the hottest shard carries at most `ratio × mean`.
fn assert_converged(loads: &[u64], ratio: f64, context: &str) {
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().unwrap() as f64;
    assert!(
        max <= mean * ratio,
        "{context}: max shard load {max} exceeds {ratio}×mean ({mean:.1}); loads {loads:?}"
    );
}

fn cfg() -> BalanceConfig {
    BalanceConfig {
        budget: 2,
        trigger_ratio: 1.4,
        settle_ratio: 1.1,
        min_total_load: 16,
        cooldown_ticks: 4,
    }
}

// ── the five named load patterns ────────────────────────────────────────

#[test]
fn uniform_load_is_a_fixpoint() {
    // 16 sessions, 4 per shard, identical demand: the balancer must not
    // touch a balanced system, ever.
    let names: Vec<String> = (0..16).map(|i| format!("u{i}")).collect();
    let placement: Vec<(&str, usize)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i % 4))
        .collect();
    let mut sim = Sim::new(4, cfg(), &placement);
    let demand: Vec<(String, u64)> = names.iter().map(|n| (n.clone(), 50)).collect();
    for _ in 0..200 {
        let plans = sim.tick(&demand);
        assert_eq!(plans, [], "uniform load must plan nothing");
    }
    assert!(sim.history.is_empty());
}

#[test]
fn zipfian_skew_converges_and_stays_put() {
    // 24 sessions with zipf-ish demand (weight ∝ 1/rank), all parked on
    // shard 0 of 4 — the worst-case cold start. The balancer must fan
    // them out until the hottest shard is within the settle band, then
    // go quiet.
    let names: Vec<String> = (0..24).map(|i| format!("z{i:02}")).collect();
    let placement: Vec<(&str, usize)> = names.iter().map(|n| (n.as_str(), 0)).collect();
    let mut sim = Sim::new(4, cfg(), &placement);
    let mut rng = Rng::new(0x5EED);
    let demand: Vec<(String, u64)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), 1200 / (i as u64 + 1) + rng.below(5)))
        .collect();
    for _ in 0..60 {
        sim.tick(&demand);
    }
    assert!(!sim.history.is_empty(), "skew must trigger moves");
    assert_converged(&sim.shard_loads(&demand), 1.4, "zipfian");
    // Once converged, a long steady tail must not thrash: no further
    // moves at all across another 100 ticks.
    let settled = sim.history.len();
    for _ in 0..100 {
        sim.tick(&demand);
    }
    assert_eq!(
        sim.history.len(),
        settled,
        "steady state after convergence must be move-free"
    );
}

#[test]
fn zipfian_runs_are_deterministic() {
    let run = |seed: u64| -> Vec<AppliedMove> {
        let names: Vec<String> = (0..24).map(|i| format!("z{i:02}")).collect();
        let placement: Vec<(&str, usize)> = names.iter().map(|n| (n.as_str(), 0)).collect();
        let mut sim = Sim::new(4, cfg(), &placement);
        let mut rng = Rng::new(seed);
        let demand: Vec<(String, u64)> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), 1200 / (i as u64 + 1) + rng.below(5)))
            .collect();
        for _ in 0..60 {
            sim.tick(&demand);
        }
        sim.history
    };
    assert_eq!(run(42), run(42), "same seed ⇒ identical move history");
}

#[test]
fn single_whale_is_left_alone_and_its_neighbors_flee() {
    // One session carries ~80% of the demand; 15 small ones share its
    // shard. Moving the whale only relocates the hotspot, so the policy
    // must shed the *small* sessions and never touch the whale.
    let mut placement: Vec<(&str, usize)> = vec![("whale", 0)];
    let names: Vec<String> = (0..15).map(|i| format!("m{i:02}")).collect();
    placement.extend(names.iter().map(|n| (n.as_str(), 0)));
    let mut sim = Sim::new(4, cfg(), &placement);
    let mut demand: Vec<(String, u64)> = vec![("whale".to_string(), 4000)];
    demand.extend(names.iter().map(|n| (n.clone(), 64)));
    for _ in 0..60 {
        sim.tick(&demand);
    }
    assert!(!sim.history.is_empty());
    assert!(
        sim.history.iter().all(|m| m.session != "whale"),
        "the whale must never move: {:?}",
        sim.history
    );
    // Everything else left the whale's shard; the whale's shard load is
    // the irreducible floor, the rest is spread.
    let loads = sim.shard_loads(&demand);
    assert_eq!(loads[0], 4000, "only the whale remains on shard 0");
    let others = &loads[1..];
    let spread_max = *others.iter().max().unwrap();
    let spread_min = *others.iter().min().unwrap();
    assert!(
        spread_max <= spread_min.max(1) * 2,
        "non-whale load must spread: {loads:?}"
    );
}

#[test]
fn flash_crowd_is_absorbed_within_budget_and_cooldown() {
    // Start balanced under light uniform load; at tick 20 the sessions
    // on shard 1 spike 40×. The balancer must react (move load off the
    // hot shard), never exceed the budget in any tick, and never move
    // one session twice within its cooldown — both checked by the sim
    // on every tick.
    let names: Vec<String> = (0..16).map(|i| format!("f{i}")).collect();
    let placement: Vec<(&str, usize)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i % 4))
        .collect();
    let mut sim = Sim::new(4, cfg(), &placement);
    let calm: Vec<(String, u64)> = names.iter().map(|n| (n.clone(), 20)).collect();
    let crowd: Vec<(String, u64)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), if i % 4 == 1 { 800 } else { 20 }))
        .collect();
    for _ in 0..20 {
        let plans = sim.tick(&calm);
        assert_eq!(plans, [], "calm phase is balanced");
    }
    for _ in 0..40 {
        sim.tick(&crowd);
    }
    assert!(
        sim.history.iter().any(|m| m.from == 1),
        "the crowd's shard must shed load"
    );
    assert_converged(&sim.shard_loads(&crowd), 1.5, "flash crowd");
    // Crowd subsides: back to calm. The calm distribution is whatever
    // the crowd left behind; it may warrant a few correction moves but
    // must then go quiet (no oscillation).
    for _ in 0..40 {
        sim.tick(&calm);
    }
    let settled = sim.history.len();
    for _ in 0..60 {
        sim.tick(&calm);
    }
    assert_eq!(sim.history.len(), settled, "post-crowd state must settle");
}

#[test]
fn draining_shard_is_refilled() {
    // Shard 0's sessions go idle at tick 15 while everyone else stays
    // busy: the drained shard becomes the coldest and the balancer must
    // route load toward it. Three busy shards of four equal sessions sit
    // at 4/3 ≈ 1.33×mean, so this scenario runs with a tighter trigger
    // than the default — the knob exists exactly for this shape.
    let names: Vec<String> = (0..16).map(|i| format!("d{i}")).collect();
    let placement: Vec<(&str, usize)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i % 4))
        .collect();
    let eager = BalanceConfig {
        trigger_ratio: 1.25,
        ..cfg()
    };
    let mut sim = Sim::new(4, eager, &placement);
    let busy: Vec<(String, u64)> = names.iter().map(|n| (n.clone(), 100)).collect();
    let drained: Vec<(String, u64)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), if i % 4 == 0 { 0 } else { 130 }))
        .collect();
    for _ in 0..15 {
        sim.tick(&busy);
    }
    let before = sim.history.len();
    for _ in 0..60 {
        sim.tick(&drained);
    }
    let refills: Vec<&AppliedMove> = sim.history[before..].iter().collect();
    assert!(!refills.is_empty(), "the drained shard must attract load");
    assert!(
        refills.iter().any(|m| m.to == 0),
        "moves must target the drained shard: {refills:?}"
    );
    assert_converged(&sim.shard_loads(&drained), 1.5, "draining shard");
}

// ── property tests over random snapshots ────────────────────────────────

use proptest::prelude::*;
use proptest::strategy::FnStrategy;
use proptest::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Case {
    snapshot: ShardSnapshot,
    cfg: BalanceConfig,
}

fn arb_case() -> impl Strategy<Value = Case> {
    FnStrategy::new(|rng: &mut TestRng| {
        let n_shards = 2 + rng.below(5) as usize;
        let mut next_id = 0u32;
        let shards = (0..n_shards)
            .map(|shard| {
                let n_sessions = rng.below(6) as usize;
                ShardLoad {
                    shard,
                    queued_load: rng.below(200),
                    sessions: (0..n_sessions)
                        .map(|_| {
                            next_id += 1;
                            SessionLoad {
                                session: format!("s{next_id}"),
                                load: rng.below(1_000),
                                pinned: rng.below(4) == 0,
                            }
                        })
                        .collect(),
                }
            })
            .collect();
        Case {
            snapshot: ShardSnapshot { shards },
            cfg: BalanceConfig {
                budget: rng.below(5) as usize,
                trigger_ratio: 1.0 + rng.unit_f64(),
                settle_ratio: 1.0 + rng.unit_f64() / 2.0,
                min_total_load: rng.below(500),
                cooldown_ticks: 1 + rng.below(8),
            },
        }
    })
}

proptest! {
    #[test]
    fn policy_invariants_hold_for_random_snapshots(case in arb_case()) {
        let Case { snapshot, cfg } = case;
        let plans = plan_moves(&snapshot, &cfg);
        prop_assert!(plans.len() <= cfg.budget, "budget exceeded");
        let mut seen = std::collections::BTreeSet::new();
        let mut loads: Vec<u64> = snapshot.shards.iter().map(ShardLoad::total).collect();
        let spread_before =
            loads.iter().max().copied().unwrap_or(0) - loads.iter().min().copied().unwrap_or(0);
        for plan in &plans {
            prop_assert!(plan.from != plan.to, "move targets its source shard");
            let from = snapshot.shards.iter().position(|s| s.shard == plan.from);
            let to = snapshot.shards.iter().position(|s| s.shard == plan.to);
            prop_assert!(from.is_some() && to.is_some(), "move names unknown shards");
            let source = snapshot.shards[from.unwrap()]
                .sessions
                .iter()
                .find(|s| s.session == plan.session);
            prop_assert!(source.is_some(), "moved session does not live on its source");
            let source = source.unwrap();
            prop_assert!(!source.pinned, "pinned session moved");
            prop_assert!(source.load == plan.load, "plan misreports the load");
            prop_assert!(seen.insert(plan.session.clone()), "session moved twice in one plan");
            loads[from.unwrap()] -= plan.load;
            loads[to.unwrap()] += plan.load;
        }
        // Applying the plan never widens the max−min spread.
        let spread_after =
            loads.iter().max().copied().unwrap_or(0) - loads.iter().min().copied().unwrap_or(0);
        prop_assert!(
            spread_after <= spread_before,
            "plan widened the spread: {spread_before} → {spread_after}"
        );
    }

    #[test]
    fn balanced_snapshots_are_fixpoints(case in arb_case()) {
        let Case { snapshot, cfg } = case;
        // Flatten the random snapshot into a perfectly balanced one: one
        // session of identical load per shard, no queue pressure.
        let balanced = ShardSnapshot {
            shards: snapshot
                .shards
                .iter()
                .map(|s| ShardLoad {
                    shard: s.shard,
                    queued_load: 0,
                    sessions: vec![SessionLoad {
                        session: format!("b{}", s.shard),
                        load: 500,
                        pinned: false,
                    }],
                })
                .collect(),
        };
        prop_assert!(plan_moves(&balanced, &cfg).is_empty(), "balanced snapshot must be a fixpoint");
        prop_assert!(
            plan_moves(&ShardSnapshot::default(), &cfg).is_empty(),
            "empty snapshot must be a fixpoint"
        );
    }
}
