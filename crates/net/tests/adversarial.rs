//! Adversarial framing: malformed lines, oversized requests, truncated
//! frames, binary garbage, and mid-script disconnects must produce typed
//! `E_PARSE`/`E_INVALID` frames — with the connection surviving every
//! one of them — and must never poison a shard: sessions on the same
//! shard keep working, and new connections keep being served. Includes a
//! property test over byte-mangled valid scripts.

use fv_net::frame::{read_reply, write_err, LineReader, MAX_LINE};
use fv_net::{Client, Server, ServerConfig};
use proptest::test_runner::TestRng;
use std::io::Write;
use std::net::TcpStream;

fn server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: 4,
            scene: (800, 600),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let server = server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    for (line, code) in [
        ("wat 7", fv_api::ErrorCode::Parse),
        ("scroll", fv_api::ErrorCode::Parse),
        ("scroll abc", fv_api::ErrorCode::Parse),
        ("select_region 0 0.5", fv_api::ErrorCode::Parse),
        ("set_linkage diagonal", fv_api::ErrorCode::Parse),
        ("use two words", fv_api::ErrorCode::Parse),
        ("spell 5 YAL001C", fv_api::ErrorCode::InvalidRequest), // parses; invalid without datasets
    ] {
        let err = client
            .roundtrip(line)
            .expect("transport stays up")
            .expect_err("server must reject");
        assert_eq!(err.code, code, "line {line:?}");
    }
    // the same connection still works
    client.roundtrip("scenario 60 1").unwrap().unwrap();
    let info = client.roundtrip("session_info").unwrap().unwrap();
    assert!(info.starts_with("session datasets=3"));
    server.shutdown();
    server.join();
}

#[test]
fn execution_errors_do_not_poison_the_session_or_shard() {
    let server = server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("victim").unwrap();
    client.roundtrip("scenario 60 1").unwrap().unwrap();
    let err = client
        .roundtrip("impute 9 3")
        .unwrap()
        .expect_err("bad dataset index");
    assert_eq!(err.code, fv_api::ErrorCode::NotFound);
    // state before the error is intact, further requests fine
    let info = client.roundtrip("session_info").unwrap().unwrap();
    assert!(info.starts_with("session datasets=3"));
    server.shutdown();
    server.join();
}

#[test]
fn oversized_request_line_is_rejected_and_the_connection_survives() {
    // Regression (connection lifecycle): an oversized line used to tear
    // down the whole connection even though later pipelined requests were
    // valid. Now the offending line is answered `err E_INVALID`, its
    // remaining bytes are discarded up to the newline, and the
    // connection keeps serving — error parity with local script replay.
    let server = server();
    let addr = server.local_addr().to_string();
    let stream = TcpStream::connect(&addr).unwrap();
    let mut write_half = stream.try_clone().unwrap();
    let mut reader = LineReader::new(stream);
    // MAX_LINE+ bytes, then the line ends and valid requests follow
    let mut blob = vec![b'a'; MAX_LINE + 128];
    blob.extend_from_slice(b"\nping\nscenario 60 1\n");
    write_half.write_all(&blob).unwrap();
    write_half.flush().unwrap();
    let err = read_reply(&mut reader)
        .expect("typed frame, not a hangup")
        .expect("a frame arrives")
        .expect_err("oversized line is an error");
    assert_eq!(err.code, fv_api::ErrorCode::InvalidRequest);
    assert!(err.message.contains("exceeds"), "{}", err.message);
    // …and the SAME connection keeps working past the discarded line
    assert_eq!(read_reply(&mut reader).unwrap().unwrap().unwrap(), "pong");
    let reply = read_reply(&mut reader).unwrap().unwrap().unwrap();
    assert!(reply.starts_with("scenario datasets="), "{reply}");
    server.shutdown();
    server.join();
}

#[test]
fn binary_garbage_is_rejected_but_the_line_boundary_recovers() {
    let server = server();
    let addr = server.local_addr().to_string();
    let stream = TcpStream::connect(&addr).unwrap();
    let mut write_half = stream.try_clone().unwrap();
    let mut reader = LineReader::new(stream);
    write_half.write_all(&[0xff, 0xfe, 0x00, b'\n']).unwrap();
    write_half.write_all(b"ping\n").unwrap();
    write_half.flush().unwrap();
    let err = read_reply(&mut reader).unwrap().unwrap().unwrap_err();
    assert_eq!(err.code, fv_api::ErrorCode::InvalidRequest);
    assert_eq!(read_reply(&mut reader).unwrap().unwrap().unwrap(), "pong");
    server.shutdown();
    server.join();
}

/// Property test over the outbound half: `err` frames flatten any
/// newlines in their message, so multi-line error messages round-trip
/// through `read_reply` as single-frame, whitespace-flattened text.
#[test]
fn multiline_error_messages_roundtrip_flattened() {
    let mut rng = TestRng::from_name("multiline_err");
    const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "eps"];
    for _ in 0..64 {
        let n = 1 + rng.below(6) as usize;
        let message: String = (0..n)
            .map(|_| WORDS[rng.below(WORDS.len() as u64) as usize])
            .collect::<Vec<_>>()
            .join(if rng.below(2) == 0 { "\n" } else { "\r\n" });
        let err = fv_api::ApiError::invalid(message.clone());
        let mut buf = Vec::new();
        write_err(&mut buf, &err).unwrap();
        let mut reader = LineReader::new(&buf[..]);
        let got = read_reply(&mut reader).unwrap().unwrap().unwrap_err();
        assert_eq!(got.code, err.code);
        assert_eq!(got.message, message.replace(['\n', '\r'], " "));
        assert!(read_reply(&mut reader).unwrap().is_none(), "one frame");
    }
}

#[test]
fn mid_script_disconnect_leaves_the_session_usable() {
    let server = server();
    let addr = server.local_addr().to_string();
    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut write_half = stream.try_clone().unwrap();
        // a complete use + request, then a TRUNCATED line, then vanish
        write_half
            .write_all(b"use torn\nscenario 60 1\nsearch_sel")
            .unwrap();
        write_half.flush().unwrap();
        // read the `using` ack so we know the server got the prefix
        let mut reader = LineReader::new(stream);
        assert_eq!(
            read_reply(&mut reader).unwrap().unwrap().unwrap(),
            "using torn"
        );
        // drop both halves: connection dies with a partial line pending
    }
    // the shard is healthy and the session's completed prefix persisted
    let mut client = Client::connect(&addr).unwrap();
    client.use_session("torn").unwrap();
    let info = client.roundtrip("session_info").unwrap().unwrap();
    assert!(
        info.starts_with("session datasets=3"),
        "scenario before the disconnect must have executed: {info}"
    );
    server.shutdown();
    server.join();
}

#[test]
fn blank_and_comment_lines_produce_no_frames() {
    let server = server();
    let addr = server.local_addr().to_string();
    let stream = TcpStream::connect(&addr).unwrap();
    let mut write_half = stream.try_clone().unwrap();
    let mut reader = LineReader::new(stream);
    write_half
        .write_all(b"# comment\n\n   \nping\n# tail\n")
        .unwrap();
    write_half.shutdown(std::net::Shutdown::Write).unwrap();
    assert_eq!(read_reply(&mut reader).unwrap().unwrap().unwrap(), "pong");
    assert!(
        read_reply(&mut reader).unwrap().is_none(),
        "exactly 1 frame"
    );
    server.shutdown();
    server.join();
}

/// Property test: mangling bytes of a valid script must never hang,
/// crash, or poison the server — every mangled non-blank non-comment line
/// still gets exactly one frame (ok or err), and the shard answers a
/// clean request afterwards.
#[test]
fn mangled_scripts_never_poison_the_shard() {
    const CASES: usize = 48;
    let base = [
        "scenario 80 7",
        "set_metric euclidean",
        "cluster_all",
        "search_select stress",
        "select_region 0 0.1 0.9",
        "scroll 2",
        "export_selection gene_list",
        "session_info",
        "list_datasets",
    ];
    let server = server();
    let addr = server.local_addr().to_string();
    let mut rng = TestRng::from_name("mangled_scripts");
    for case in 0..CASES {
        // mangle 1–3 lines: flip one byte each to a random byte
        let mut lines: Vec<Vec<u8>> = base.iter().map(|l| l.as_bytes().to_vec()).collect();
        for _ in 0..=(rng.below(3)) {
            let li = rng.below(lines.len() as u64) as usize;
            let bi = rng.below(lines[li].len() as u64) as usize;
            let mut b = rng.below(256) as u8;
            if b == b'\n' || b == b'\r' {
                b = b'x';
            }
            lines[li][bi] = b;
        }
        // a mangled line could accidentally spell a control word; keep the
        // property about *request* handling
        lines.retain(|l| l.as_slice() != b"shutdown" && l.as_slice() != b"close");
        let expect_frames = lines
            .iter()
            .filter(|l| {
                let t = String::from_utf8_lossy(l);
                let t = t.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .count();

        let stream = TcpStream::connect(&addr).unwrap_or_else(|e| {
            panic!("case {case}: server stopped accepting: {e}");
        });
        let mut write_half = stream.try_clone().unwrap();
        let mut reader = LineReader::new(stream);
        let mut blob = format!("use mangle{case}\n").into_bytes();
        for l in &lines {
            blob.extend_from_slice(l);
            blob.push(b'\n');
        }
        write_half.write_all(&blob).unwrap();
        write_half.shutdown(std::net::Shutdown::Write).unwrap();
        let mut frames = 0usize;
        while let Some(_reply) = read_reply(&mut reader).unwrap_or_else(|e| {
            panic!("case {case}: transport failure instead of typed frames: {e}")
        }) {
            frames += 1;
        }
        assert_eq!(
            frames,
            expect_frames + 1, // +1 for the `using` ack
            "case {case}: frame-per-line broken for {:?}",
            lines
                .iter()
                .map(|l| String::from_utf8_lossy(l).into_owned())
                .collect::<Vec<_>>()
        );
        // shard still healthy
        let mut probe = Client::connect(&addr).unwrap();
        probe.use_session(&format!("mangle{case}")).unwrap();
        probe.roundtrip("session_info").unwrap().unwrap();
    }
    server.shutdown();
    server.join();
}
