//! Connection/server lifecycle regressions. The headline one: shutting a
//! server down must complete promptly even while idle clients sit on
//! open connections — the threaded design could hang `join()` until
//! every idle peer disconnected on its own; the event loop is woken
//! explicitly and closes them.

use fv_net::{Client, Server, ServerConfig};
use std::time::Duration;

fn server() -> Server {
    Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind")
}

/// Run `f` on a watchdog thread; panic if it does not finish in time.
fn within(limit: Duration, what: &str, f: impl FnOnce() + Send + 'static) {
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(limit)
        .unwrap_or_else(|_| panic!("{what} did not complete within {limit:?}"));
    let _ = h.join();
}

#[test]
fn shutdown_join_completes_under_idle_open_connections() {
    // Regression: `shutdown(); join()` used to block until idle clients
    // hung up, because nothing woke their blocked reader threads.
    let server = server();
    let addr = server.local_addr().to_string();
    let mut idle1 = Client::connect(&addr).unwrap();
    idle1.ping().unwrap();
    let mut idle2 = Client::connect(&addr).unwrap();
    idle2.use_session("parked").unwrap();
    // both connections stay open and silent across the shutdown
    within(Duration::from_secs(10), "shutdown+join", move || {
        server.shutdown();
        server.join();
    });
    // the parked clients observe the close instead of hanging forever
    assert!(idle1.ping().is_err(), "server is gone");
    drop(idle2);
}

#[test]
fn wire_shutdown_stops_the_server_despite_other_idle_connections() {
    let server = server();
    let addr = server.local_addr().to_string();
    let mut idle = Client::connect(&addr).unwrap();
    idle.ping().unwrap();
    let mut closer = Client::connect(&addr).unwrap();
    within(Duration::from_secs(10), "wire shutdown", move || {
        closer.shutdown_server().unwrap();
        server.join();
    });
    assert!(idle.ping().is_err(), "server is gone");
}

#[test]
fn clients_connected_mid_shutdown_are_refused_not_stranded() {
    let server = server();
    let addr = server.local_addr().to_string();
    server.shutdown();
    server.join();
    // after join, the listener is gone: connects fail fast
    assert!(Client::connect(&addr).is_err());
}
