//! Chaos-derived failure-path tests: what clients report when a server
//! dies at the worst possible moments. These pin the *typed* error
//! contract — a dropped connection is `E_IO` (CLI exit 66), never a
//! parse error on the fragment that did arrive, and never a silent
//! success.
//!
//! Each test runs a tiny scripted fake server on a thread: accept one
//! connection, emit some exact bytes, hang up.

use fv_api::ErrorCode;
use fv_net::{Client, Watcher};
use std::io::{Read, Write};
use std::net::TcpListener;

/// A one-shot fake server: accepts a single connection, reads until it
/// has seen `\n` at least once (the client's request line), writes
/// `reply` verbatim, and drops the socket.
fn fake_server(reply: &'static [u8]) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 4096];
        let mut seen = Vec::new();
        while !seen.contains(&b'\n') {
            match conn.read(&mut buf) {
                Ok(0) => return,
                Ok(n) => seen.extend_from_slice(&buf[..n]),
                Err(_) => return,
            }
        }
        let _ = conn.write_all(reply);
        // drop(conn): the mid-reply hangup under test
    });
    addr
}

/// Server advertises a 3-line body but dies after one line: the client
/// must surface E_IO (exit 66), not a parse error and not a truncated
/// success.
#[test]
fn roundtrip_mid_frame_drop_is_typed_io() {
    let addr = fake_server(b"ok 3\nline one\n");
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .roundtrip("session_info")
        .expect_err("truncated frame must be a transport error");
    assert_eq!(err.code, ErrorCode::Io, "got {err:?}");
    assert_eq!(err.code.exit_code(), 66);
    assert!(
        err.message.contains("mid-frame"),
        "message should say what broke: {err:?}"
    );
}

/// Server dies before sending any reply at all: same contract.
#[test]
fn roundtrip_drop_before_reply_is_typed_io() {
    let addr = fake_server(b"");
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .roundtrip("ping")
        .expect_err("no reply must be a transport error");
    assert_eq!(err.code, ErrorCode::Io, "got {err:?}");
    assert_eq!(err.code.exit_code(), 66);
}

/// Server drops mid-way through the subscribe ack (header promised one
/// body line, none arrives). Historically this was misreported as an
/// E_PARSE "malformed subscribe ack" on the empty fragment — exit 2, as
/// if the *user* had typed something wrong. It must be E_IO.
#[test]
fn watcher_truncated_subscribe_ack_is_typed_io() {
    let addr = fake_server(b"ok 1\n");
    let err = match Watcher::connect(&addr, "main", 2, 2) {
        Ok(_) => panic!("truncated ack must be a transport error"),
        Err(e) => e,
    };
    assert_eq!(err.code, ErrorCode::Io, "got {err:?}");
    assert_eq!(err.code.exit_code(), 66);
    assert!(
        err.message.contains("subscribe"),
        "message should say what broke: {err:?}"
    );
}

/// A complete, valid subscribe ack followed by a hangup: the connect
/// succeeds, the stream ends — and the watcher reports the EOF as a
/// hangup, distinguishable from a read-timeout idle, so callers (like
/// `fvtool watch`) can turn an unexpected mid-stream disconnect into a
/// typed failure instead of exiting 0.
#[test]
fn watcher_hangup_after_ack_is_detectable() {
    let addr = fake_server(b"ok 1\nsubscribed main 2x2 640x480\n");
    let mut watcher = Watcher::connect(&addr, "main", 2, 2).expect("valid ack connects");
    assert!(!watcher.hung_up());
    let frame = watcher.next_frame().expect("EOF is not an error");
    assert!(frame.is_none(), "no frames were sent");
    assert!(
        watcher.hung_up(),
        "EOF must be reported as a hangup, not an idle timeout"
    );
}
