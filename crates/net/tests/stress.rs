//! Concurrency stress: many client threads hammering disjoint sessions on
//! a sharded server. Asserts (1) no deadlocks (the test finishes), (2)
//! per-connection response ordering, (3) final per-session state equal to
//! a sequential in-process replay of the same requests, (4) thread count
//! independent of connection count (the event-loop property), and (5)
//! overload answered with `E_BUSY` while committed state stays equal to
//! sequential replay of exactly the accepted requests.

use fv_api::{EngineHub, SessionId};
use fv_net::{shard_of, Client, Server, ServerConfig};

const SCENE: (usize, usize) = (800, 600);
const N_CLIENTS: usize = 8;
const N_SHARDS: usize = 4;
const ROUNDS: usize = 3;

fn config(shards: usize) -> ServerConfig {
    ServerConfig {
        shards,
        scene: SCENE,
        ..ServerConfig::default()
    }
}

/// The per-client workload: deterministic per client index, touching
/// clustering, selection, scrolling, and introspection.
fn client_script(i: usize) -> String {
    let mut s = String::new();
    s.push_str(&format!("scenario {} {}\n", 60 + 10 * (i % 4), i));
    s.push_str("set_metric euclidean\nset_linkage average\ncluster_all\n");
    for round in 0..ROUNDS {
        s.push_str(&format!("search_select stress\nscroll {}\n", i + round));
        s.push_str("select_region 0 0.1 0.8\nclear_selection\n");
    }
    s.push_str(&format!("scroll {i}\nsession_info\nlist_datasets\n"));
    s
}

/// Expected response texts, via sequential in-process replay.
fn expected_responses(i: usize) -> Vec<String> {
    let mut hub = EngineHub::with_scene(SCENE.0, SCENE.1);
    let id = SessionId::new(format!("s{i}")).unwrap();
    let lines = fv_api::parse_script(&client_script(i)).unwrap();
    let requests: Vec<fv_api::Request> = lines
        .into_iter()
        .map(|l| match l.item {
            fv_api::codec::ScriptItem::Request(r) => r,
            other => panic!("unexpected item {other:?}"),
        })
        .collect();
    requests
        .iter()
        .map(|r| fv_api::format_response(&hub.execute_on(&id, r).unwrap()))
        .collect()
}

#[test]
fn disjoint_sessions_under_concurrent_load() {
    let server = Server::bind("127.0.0.1:0", config(N_SHARDS)).expect("bind");
    let addr = server.local_addr().to_string();

    // The fixed session names must actually exercise shard parallelism.
    let hit: std::collections::BTreeSet<usize> = (0..N_CLIENTS)
        .map(|i| shard_of(&SessionId::new(format!("s{i}")).unwrap(), N_SHARDS))
        .collect();
    assert!(
        hit.len() >= 2,
        "test sessions all hash to one shard; rename them"
    );

    let workers: Vec<_> = (0..N_CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Result<(), String> {
                let mut client =
                    Client::connect(&addr).map_err(|e| format!("client {i}: {e}"))?;
                client
                    .use_session(&format!("s{i}"))
                    .map_err(|e| format!("client {i}: {e}"))?;
                let expected = expected_responses(i);
                let script = client_script(i);
                let mut got = Vec::with_capacity(expected.len());
                for line in script.lines().filter(|l| !l.trim().is_empty()) {
                    let reply = client
                        .roundtrip(line)
                        .map_err(|e| format!("client {i} transport: {e}"))?
                        .map_err(|e| format!("client {i} server error: {e}"))?;
                    got.push(reply);
                }
                if got != expected {
                    return Err(format!(
                        "client {i}: responses out of order or wrong\n got: {got:#?}\nwant: {expected:#?}"
                    ));
                }
                Ok(())
            })
        })
        .collect();
    for w in workers {
        w.join()
            .expect("client thread panicked")
            .expect("client failed");
    }

    // Final state check: one more connection reads every session's info
    // and compares against the sequential replay.
    let mut probe = Client::connect(&addr).unwrap();
    for i in 0..N_CLIENTS {
        probe.use_session(&format!("s{i}")).unwrap();
        let remote = probe
            .roundtrip("session_info")
            .unwrap()
            .expect("session_info succeeds");
        let expected = expected_responses(i);
        // the workload's second-to-last response is its session_info
        let want = &expected[expected.len() - 2];
        assert_eq!(
            &remote, want,
            "final state of s{i} diverged from sequential replay"
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn pipelined_burst_preserves_order() {
    // Send the whole workload in one write, then read every frame: the
    // frames must come back exactly in request order. This is the path
    // that exercises server-side run batching hardest.
    use std::io::Write;
    let server = Server::bind("127.0.0.1:0", config(N_SHARDS)).expect("bind");
    let addr = server.local_addr().to_string();

    let workers: Vec<_> = (0..N_CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(&addr).unwrap();
                let mut write_half = stream.try_clone().unwrap();
                let mut reader = fv_net::frame::LineReader::new(stream);
                let script = client_script(i);
                let burst = format!("use s{i}\n{script}");
                write_half.write_all(burst.as_bytes()).unwrap();
                write_half.shutdown(std::net::Shutdown::Write).unwrap();
                // one frame per non-blank line (use included)
                let mut replies = Vec::new();
                while let Some(reply) = fv_net::frame::read_reply(&mut reader).unwrap() {
                    replies.push(reply.expect("no server errors in this workload"));
                }
                assert_eq!(replies[0], format!("using s{i}"));
                let expected = expected_responses(i);
                assert_eq!(&replies[1..], &expected[..], "client {i} order broken");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }
    server.shutdown();
    server.join();
}

#[test]
fn same_session_from_many_connections_serializes() {
    // Not disjoint this time: 6 connections scroll the SAME session.
    // Interleaving across connections is unspecified, but the total
    // scroll must equal the sum — no lost updates, no torn state.
    let server = Server::bind("127.0.0.1:0", config(N_SHARDS)).expect("bind");
    let addr = server.local_addr().to_string();
    let mut setup = Client::connect(&addr).unwrap();
    setup.use_session("shared").unwrap();
    setup.roundtrip("scenario 300 1").unwrap().unwrap();
    // scroll clamps to the selection size, so select everything first —
    // 300 genes leaves headroom for every client's scrolls to count.
    setup.roundtrip("select_region 0 0.0 1.0").unwrap().unwrap();

    const PER_CLIENT_SCROLLS: usize = 20;
    let workers: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.use_session("shared").unwrap();
                for _ in 0..PER_CLIENT_SCROLLS {
                    client.roundtrip("scroll 1").unwrap().unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread panicked");
    }
    let info = setup.roundtrip("session_info").unwrap().unwrap();
    let scroll = info
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .find_map(|t| t.strip_prefix("scroll="))
        .and_then(|v| v.parse::<usize>().ok())
        .expect("session_info carries scroll=");
    assert_eq!(scroll, 6 * PER_CLIENT_SCROLLS, "lost scroll updates");
    server.shutdown();
    server.join();
}

/// Threads in this process, via /proc (Linux). `None` elsewhere.
fn thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

#[test]
fn idle_connections_cost_no_threads() {
    // The event-loop property the transport rewrite exists for: the
    // server's thread count is 1 loop + N shards, independent of how
    // many connections are open. 256 live connections must not add a
    // single thread.
    const N_CONNS: usize = 256;
    let server = Server::bind("127.0.0.1:0", config(N_SHARDS)).expect("bind");
    let addr = server.local_addr().to_string();

    // Prove the server is up (and fully spawned) before the baseline.
    let mut probe = Client::connect(&addr).unwrap();
    probe.ping().unwrap();
    let baseline = thread_count();

    let mut conns = Vec::with_capacity(N_CONNS);
    for i in 0..N_CONNS {
        let mut c =
            Client::connect(&addr).unwrap_or_else(|e| panic!("connection {i} refused: {e}"));
        c.ping()
            .unwrap_or_else(|e| panic!("connection {i} not served: {e}"));
        conns.push(c);
    }
    // every connection is live and answered; none of them cost a thread
    if let (Some(before), Some(after)) = (baseline, thread_count()) {
        assert_eq!(
            after, before,
            "connection count leaked into thread count ({before} -> {after})"
        );
    }
    // they all still work (round-robin a second ping through a sample)
    for c in conns.iter_mut().step_by(17) {
        c.ping().unwrap();
    }
    drop(conns);
    server.shutdown();
    server.join();
}

#[test]
fn overload_gets_busy_and_committed_state_matches_sequential_replay() {
    // A client pipelining far past the pending-request bound gets typed
    // `E_BUSY` frames (in request order) for the overflow — and the
    // session's committed state equals a sequential replay of exactly
    // the requests that were answered `ok`.
    use std::io::Write;
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: 2,
            scene: SCENE,
            queue_limit: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().to_string();

    let mut setup = Client::connect(&addr).unwrap();
    setup.use_session("flood").unwrap();
    setup.roundtrip("scenario 300 1").unwrap().unwrap();
    setup.roundtrip("select_region 0 0.0 1.0").unwrap().unwrap();

    const BURST: usize = 500;
    let stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut write_half = stream.try_clone().unwrap();
    let mut reader = fv_net::frame::LineReader::new(stream);
    let mut burst = String::from("use flood\n");
    for _ in 0..BURST {
        burst.push_str("scroll 1\n");
    }
    write_half.write_all(burst.as_bytes()).unwrap();
    write_half.shutdown(std::net::Shutdown::Write).unwrap();

    let first = fv_net::frame::read_reply(&mut reader).unwrap().unwrap();
    assert_eq!(first.unwrap(), "using flood");
    let (mut n_ok, mut n_busy) = (0usize, 0usize);
    while let Some(reply) = fv_net::frame::read_reply(&mut reader).unwrap() {
        match reply {
            Ok(text) => {
                assert!(text.starts_with("applied "), "unexpected reply {text}");
                n_ok += 1;
            }
            Err(e) => {
                assert_eq!(e.code, fv_api::ErrorCode::Busy, "{e}");
                n_busy += 1;
            }
        }
    }
    assert_eq!(n_ok + n_busy, BURST, "every request got exactly one frame");
    assert!(n_busy > 0, "a 500-deep pipeline must overrun a bound of 8");
    assert!(n_ok > 0, "the bound admits work up to the limit");

    // Committed state == sequential replay of the accepted prefix.
    let mut hub = EngineHub::with_scene(SCENE.0, SCENE.1);
    let id = SessionId::new("flood").unwrap();
    for line in ["scenario 300 1", "select_region 0 0.0 1.0"] {
        hub.execute_on(&id, &fv_api::parse_request(line).unwrap())
            .unwrap();
    }
    let scroll = fv_api::parse_request("scroll 1").unwrap();
    for _ in 0..n_ok {
        hub.execute_on(&id, &scroll).unwrap();
    }
    let expected = fv_api::format_response(
        &hub.execute_on(&id, &fv_api::parse_request("session_info").unwrap())
            .unwrap(),
    );
    let remote = setup.roundtrip("session_info").unwrap().unwrap();
    assert_eq!(
        remote, expected,
        "committed state diverged from replaying the {n_ok} accepted requests"
    );

    // …and the busy counter is visible in server metrics.
    let stats = setup.stats().unwrap();
    assert_eq!(stats.busy_rejections as usize, n_busy);
    assert!(stats.shards.iter().all(|s| s.queued == 0), "{stats:?}");
    server.shutdown();
    server.join();
}
