//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free,
//! non-poisoning API (`lock()` returns the guard directly). Performance
//! characteristics are std's, which is fine for the workspace's usage — a
//! compositor mutex whose traffic is already serialized by a channel.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

/// Non-poisoning mutex with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock. A poisoned std mutex (panicked holder) is
    /// re-entered rather than propagated, matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Non-poisoning reader–writer lock with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(0);
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
    }
}
