//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crate registry, so the workspace vendors a
//! minimal benchmarking harness with criterion's API shape: benchmark
//! groups, `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Timing is a simple best-of-N wall-clock measurement printed per
//! benchmark — no statistics, HTML reports, or regression tracking.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside the time).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing for `iter_batched`; the shim re-runs setup per iteration
/// regardless of the hint.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function_id: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Trait unifying `&str` and `BenchmarkId` arguments.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    /// Iterations per sample (tuned by the harness).
    iters: u64,
    /// Best observed per-iteration time.
    best: Duration,
}

impl Bencher {
    /// Time `routine`, keeping the best per-iteration time over the run.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }

    /// Time `routine` on fresh input from `setup` (setup excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed();
            if dt < self.best {
                self.best = dt;
            }
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's floor is 10 samples; the shim scales iterations down
        // aggressively since it reports best-of-N, not distributions.
        self.samples = (n as u64).clamp(1, 20);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<N: IntoBenchmarkId>(
        &mut self,
        id: N,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.samples,
            best: Duration::MAX,
        };
        f(&mut b);
        self.report(&id.into_id(), b.best);
        self
    }

    pub fn bench_with_input<N: IntoBenchmarkId, I: ?Sized>(
        &mut self,
        id: N,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.samples,
            best: Duration::MAX,
        };
        f(&mut b, input);
        self.report(&id.into_id(), b.best);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, best: Duration) {
        let rate = match (self.throughput, best.as_secs_f64()) {
            (Some(Throughput::Elements(n)), s) if s > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / s)
            }
            (Some(Throughput::Bytes(n)), s) if s > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / s)
            }
            _ => String::new(),
        };
        println!("{}/{id}: best {best:?}{rate}", self.name);
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
