//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crate registry, so the workspace vendors a
//! small property-testing engine exposing the subset of proptest's API the
//! test suites use: the `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`, and `prop_assert_eq!` macros, the [`strategy::Strategy`]
//! trait, numeric-range / `Just` / `any::<T>()` strategies, and the
//! `prop::collection` / `prop::option` constructors.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via the assert macros) but is not minimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from the hash of
//!   its function name, so runs are reproducible; set `PROPTEST_SEED` to a
//!   u64 to perturb the whole suite.
//! - Failure is reported by panic, not `Result`, so `prop_assert!` is
//!   `assert!` with the same message formatting.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 test RNG, seeded per-property from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, perturbed by PROPTEST_SEED if set.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra;
                }
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound > 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A reusable generator of values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy from a plain closure (backs `prop_compose!`).
    pub struct FnStrategy<F> {
        f: F,
    }

    impl<F> FnStrategy<F> {
        pub fn new<T>(f: F) -> Self
        where
            F: Fn(&mut TestRng) -> T,
        {
            FnStrategy { f }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always produces a clone of the given value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }
}

use strategy::Strategy;
use test_runner::TestRng;

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Explicit test-case rejection (what proptest's `prop_assert!` family
/// produces; the shim's asserts panic instead, but bodies can still
/// `return Err(TestCaseError::fail(..))` / `return Ok(())`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Types with a default whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, sign-symmetric spread; real proptest generates specials
        // too, but the suites here expect workable numbers.
        ((rng.unit_f64() * 2.0 - 1.0) * 1.0e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() * 2.0 - 1.0) * 1.0e9
    }
}

/// Strategy for the whole domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::option`, …).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Collection size specifications: a range or an exact count.
        pub trait SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize;
            fn upper(&self) -> usize;
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
            fn upper(&self) -> usize {
                self.end.saturating_sub(1)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                *self.start() + rng.below((*self.end() - *self.start() + 1) as u64) as usize
            }
            fn upper(&self) -> usize {
                *self.end()
            }
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
            fn upper(&self) -> usize {
                *self
            }
        }

        /// Strategy for `Vec<T>` with a size in `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// Strategy for `BTreeSet<T>` with a size in `size` (best-effort
        /// when the element domain is smaller than the requested size).
        pub struct BTreeSetStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S, R> Strategy for BTreeSetStrategy<S, R>
        where
            S: Strategy,
            S::Value: Ord,
            R: SizeRange,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = self.size.pick(rng);
                let mut set = BTreeSet::new();
                let mut attempts = 0usize;
                let max_attempts = (target + 1) * 50;
                while set.len() < target && attempts < max_attempts {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }

        pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
        where
            S: Strategy,
            S::Value: Ord,
            R: SizeRange,
        {
            BTreeSetStrategy { element, size }
        }
    }

    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Option<T>`: `Some` three times out of four.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Everything a test file needs, for glob import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Define property tests. Each `fn name(binding in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // Bodies run inside a Result-returning closure so that
                // proptest-style `return Ok(())` early exits type-check.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property case rejected: {e:?}");
                }
            }
        }
    )*};
}

/// Define a named composite strategy:
/// `fn name(args…)(bindings in strategies…) -> Type { body }`.
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])*
      $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
          ($($pat:pat in $strat:expr),* $(,)?)
          -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(
                move |__rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                },
            )
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Property assertion (no shrinking: equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (no shrinking: equivalent to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// Pairs (a, b) with a <= b.
        fn ordered_pair(max: usize)(
            a in 0usize..=100,
            b in 0usize..=100,
        ) -> (usize, usize) {
            let (a, b) = (a.min(max), b.min(max));
            (a.min(b), a.max(b))
        }
    }

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(any::<u8>(), 0..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hit_bounds(x in 3usize..7, y in 1u64..=4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn composed_pairs_ordered((a, b) in ordered_pair(50)) {
            prop_assert!(a <= b);
            prop_assert!(b <= 50);
        }

        #[test]
        fn vec_sizes_respected(v in small_vec()) {
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn oneof_picks_from_all(choice in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1u8..=3).contains(&choice));
        }

        #[test]
        fn btree_set_sizes(s in prop::collection::btree_set(0usize..30, 1..20)) {
            prop_assert!(!s.is_empty() && s.len() < 20);
        }

        #[test]
        fn options_mixed(o in prop::option::of(0f32..1.0)) {
            if let Some(v) = o {
                prop_assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_given_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
