//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with real MPMC semantics (cloneable
//! senders **and** receivers, disconnect on last-drop) built on
//! `Mutex<VecDeque>` + `Condvar`. This is a genuinely concurrent
//! implementation — the `fv-wall` tile pipeline runs real worker threads
//! through it — just without crossbeam's lock-free fast paths.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signals receivers: item available or all senders gone.
        recv_cv: Condvar,
        /// Signals senders: capacity available or all receivers gone.
        send_cv: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Block until there is queue capacity (bounded channels), then
        /// enqueue. Errs when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.capacity.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(value);
                    self.shared.recv_cv.notify_one();
                    return Ok(());
                }
                st = self.shared.send_cv.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives. Errs when the queue is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.recv_cv.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => {
                    self.shared.send_cv.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Drain as a blocking iterator until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.recv_cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.send_cv.notify_all();
            }
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Channel holding at most `cap` queued items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    /// Channel with no queue bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_workers_drain_queue() {
        let (tx, rx) = channel::bounded::<usize>(64);
        for i in 0..64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errs_after_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errs_after_receivers_drop() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn bounded_blocks_until_capacity() {
        let (tx, rx) = channel::bounded::<u8>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }
}
