//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors a minimal, API-compatible subset of `rand` covering
//! exactly what `fv-synth` uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen`, and `Rng::gen_range`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic, high-quality, and stable across
//! platforms (the synthetic-data crates rely on seed-reproducibility, not
//! on matching upstream `StdRng`'s exact stream).

#![forbid(unsafe_code)]

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types `Rng::gen_range` can sample uniformly. The output type is a
/// standalone parameter (mirroring real `rand`) so that the expected type
/// at the call site drives literal inference.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range in gen_range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (reject_sample(rng, span + 1) as $t)
                } else {
                    assert!(lo < hi, "empty range in gen_range");
                    lo + (reject_sample(rng, (hi - lo) as u64) as $t)
                }
            }
        }
    )*};
}
int_uniform!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let u: $t = Standard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// Range shapes accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Unbiased integer sampling in `[0, span)` by rejection.
fn reject_sample<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of `T` (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f32 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
