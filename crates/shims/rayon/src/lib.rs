//! Offline shim for the `rayon` crate.
//!
//! The build environment has no crate registry, so the workspace vendors an
//! API-compatible subset of rayon's `prelude`. The `par_*` entry points
//! return **sequential** standard-library iterators: every adapter chain
//! written against rayon (`map`, `filter_map`, `enumerate`, `for_each`,
//! `collect`, …) type-checks and produces identical results, just without
//! work-stealing. Thread-level parallelism in this workspace comes from the
//! explicit channel pipeline in `fv-wall` (std threads), which this shim
//! does not touch.
//!
//! When a real registry is available, deleting this crate and taking
//! `rayon` from crates.io restores the parallel implementations without
//! any source change elsewhere.

#![forbid(unsafe_code)]

pub mod prelude {
    /// `par_iter` / `par_iter_mut` / `par_chunks_exact_mut` on slices (and,
    /// via deref, `Vec`).
    pub trait ParallelSliceExt<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_exact_mut(&mut self, chunk: usize) -> std::slice::ChunksExactMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceExt<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_exact_mut(&mut self, chunk: usize) -> std::slice::ChunksExactMut<'_, T> {
            self.chunks_exact_mut(chunk)
        }
        fn par_chunks_mut(&mut self, chunk: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk)
        }
    }

    /// `into_par_iter` on anything iterable (ranges, `Vec`, …).
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// rayon-only adapters grafted onto every sequential iterator so
    /// `par_iter()` chains keep type-checking.
    pub trait ParallelIteratorExt: Iterator + Sized {
        /// rayon's `flat_map_iter` — sequentially identical to `flat_map`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// Splitting granularity hint; meaningless sequentially.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Splitting granularity hint; meaningless sequentially.
        fn with_max_len(self, _max: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}

    /// Marker for rayon's indexed parallel iterators, usable in
    /// `impl IndexedParallelIterator<Item = …>` return position. Every
    /// sequential iterator qualifies in the shim.
    pub trait IndexedParallelIterator: Iterator {}

    impl<I: Iterator> IndexedParallelIterator for I {}
}

/// Error type for [`ThreadPoolBuilder::build`]; never produced by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Shimmed thread pool: `install` runs the closure on the calling thread.
pub struct ThreadPool {
    n_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.n_threads
    }
}

/// Builder matching `rayon::ThreadPoolBuilder`'s common calls.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    n_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { n_threads: 0 }
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.n_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            n_threads: if self.n_threads == 0 {
                1
            } else {
                self.n_threads
            },
        })
    }
}

/// `rayon::join` — sequential in the shim.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// `rayon::current_num_threads` — the shim never forks.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chains_match_sequential() {
        let v = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);

        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);

        let mut buf = vec![0u8; 6];
        buf.par_chunks_exact_mut(2).enumerate().for_each(|(i, c)| {
            c[0] = i as u8;
            c[1] = i as u8 + 10;
        });
        assert_eq!(buf, vec![0, 10, 1, 11, 2, 12]);

        let flat: Vec<usize> = [1usize, 2].par_iter().flat_map_iter(|&n| 0..n).collect();
        assert_eq!(flat, vec![0, 0, 1]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 42), 42);
    }
}
