//! Seeded, wall-clock-free **workload generator**: synthetic *traffic*
//! the way the sibling modules synthesize *data*.
//!
//! Each [`WorkloadKind`] is a named, parameterized query mix derived from
//! the visualization task taxonomies the ROADMAP cites (GQVis questions;
//! Nusrat/Harbig/Gehlenborg tasks): an **overview** skim, a **zoom/filter
//! cascade**, a **cluster–recluster loop**, a **spell-search burst**, and
//! a **many-viewer fan-in** on one shared session. [`generate`] expands a
//! [`WorkloadSpec`] into per-client scripts — for every client a private
//! (or, for fan-in, shared) session plus a list of *bursts*, each burst a
//! batch of wire lines meant to be pipelined in one write.
//!
//! The generator is deliberately decoupled from `fv-api`: it emits typed
//! [`WorkloadOp`]s that format themselves to canonical wire-grammar lines
//! ([`WorkloadOp::wire_line`]), and the `fv-api`/`fv-net` test suites
//! verify every emitted line parses. Only script-compatible lines are
//! emitted (`use`, `close`, requests — never transport controls), so the
//! same stream can be replayed against a TCP server or a local
//! `EngineHub` and compared byte-for-byte.
//!
//! Determinism: everything derives from the spec's `u64` seed through the
//! same xorshift64* generator the balance simulation harness uses — no
//! wall clock, no global state. Equal specs produce equal scripts.

use crate::names::orf_name;

/// Deterministic xorshift64* RNG (the balance_sim pattern): tiny, seeded,
/// and good enough for workload shaping.
#[derive(Debug, Clone)]
pub struct WorkloadRng(u64);

impl WorkloadRng {
    pub fn new(seed: u64) -> WorkloadRng {
        WorkloadRng(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw in `0..bound` (`bound` 0 is treated as 1).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// A named query mix from the task-taxonomy catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Read-mostly skim: session summaries, dataset listings, full-frame
    /// renders, scrolling — the taxonomy's "overview first".
    Overview,
    /// Zoom-and-filter cascades: region/gene/text selections narrowing a
    /// view, renders between refinements, selection exports, resets.
    ZoomFilter,
    /// Cluster–recluster loops: metric/linkage changes with a full
    /// recluster and render after each — the compute-heavy analyst loop.
    ClusterLoop,
    /// SPELL query bursts against a compendium: ranked gene-list searches
    /// interleaved with text search and ontology enrichment.
    SpellBurst,
    /// Many-viewer fan-in: every client of the spec shares ONE session —
    /// client 0 drives mutations, all others issue read-only queries.
    FanIn,
    /// Per-client mix over the four single-session kinds above.
    Mixed,
}

/// All kinds, for catalogs and CLI listings.
pub const WORKLOAD_KINDS: &[WorkloadKind] = &[
    WorkloadKind::Overview,
    WorkloadKind::ZoomFilter,
    WorkloadKind::ClusterLoop,
    WorkloadKind::SpellBurst,
    WorkloadKind::FanIn,
    WorkloadKind::Mixed,
];

impl WorkloadKind {
    /// Stable name used on CLIs and in docs.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Overview => "overview",
            WorkloadKind::ZoomFilter => "zoom-filter",
            WorkloadKind::ClusterLoop => "cluster-loop",
            WorkloadKind::SpellBurst => "spell-burst",
            WorkloadKind::FanIn => "fan-in",
            WorkloadKind::Mixed => "mixed",
        }
    }

    /// Inverse of [`WorkloadKind::name`].
    pub fn from_name(s: &str) -> Option<WorkloadKind> {
        WORKLOAD_KINDS.iter().copied().find(|k| k.name() == s)
    }

    /// Whether every client's stream touches only its own private
    /// session, making a per-client sequential replay byte-deterministic.
    /// Fan-in clients share a session (reads race the driver's writes),
    /// so their replies depend on interleaving.
    pub fn replay_deterministic(self) -> bool {
        !matches!(self, WorkloadKind::FanIn)
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Which mix to expand.
    pub kind: WorkloadKind,
    /// Number of concurrent clients to script.
    pub clients: usize,
    /// Bursts per client after the setup burst.
    pub bursts: usize,
    /// Gene-universe scale passed to `scenario` / `compendium` setup.
    pub n_genes: usize,
    /// Master seed; every derived stream is a pure function of it.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A small spec suitable for tests and CI smokes.
    pub fn small(kind: WorkloadKind, clients: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            kind,
            clients,
            bursts: 6,
            n_genes: 120,
            seed,
        }
    }
}

/// One typed request-stream element. Formats to a canonical wire-grammar
/// line; the set is intentionally a subset of the script grammar (no
/// transport controls), so streams replay against servers and local hubs
/// alike.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOp {
    /// `use <session>` — switch to (or create) the client's session.
    Use(String),
    /// `close <session>` — drop the session at teardown.
    Close(String),
    /// `scenario <n_genes> <seed>` — three-dataset setup.
    Scenario { n_genes: usize, seed: u64 },
    /// `compendium <n_genes> <n_datasets> <seed>` — SPELL-scale setup.
    Compendium {
        n_genes: usize,
        n_datasets: usize,
        seed: u64,
    },
    /// `ontology <n_filler> <seed>` — enrichment ground truth.
    Ontology { n_filler: usize, seed: u64 },
    /// `select_region <dataset> <start> <end>` (fractions in 64ths, so
    /// the float text is short and exact).
    SelectRegion {
        dataset: usize,
        start_64ths: u32,
        end_64ths: u32,
    },
    /// `select_genes <g,g,...>`.
    SelectGenes(Vec<String>),
    /// `search_select <text>` — select by substring match.
    SearchSelect(String),
    /// `clear_selection`.
    ClearSelection,
    /// `scroll <delta>`.
    Scroll(i64),
    /// `cluster_all`.
    ClusterAll,
    /// `set_linkage <kw>`.
    SetLinkage(&'static str),
    /// `set_metric <kw>`.
    SetMetric(&'static str),
    /// `normalize all <method>`.
    Normalize(&'static str),
    /// `impute <dataset> <k>`.
    Impute { dataset: usize, k: usize },
    /// `cluster_arrays <dataset>`.
    ClusterArrays(usize),
    /// `search <text>`.
    Search(String),
    /// `spell <top_n> <g,g,...>`.
    Spell { top_n: usize, genes: Vec<String> },
    /// `enrich <max_terms> <g,g,...>`.
    Enrich {
        max_terms: usize,
        genes: Vec<String>,
    },
    /// `export_selection <what>`.
    ExportSelection(&'static str),
    /// `render <w> <h>` (no path: nothing written to disk under load).
    Render { width: usize, height: usize },
    /// `session_info`.
    SessionInfo,
    /// `list_datasets`.
    ListDatasets,
}

impl WorkloadOp {
    /// The canonical wire line for this op (no trailing newline).
    pub fn wire_line(&self) -> String {
        match self {
            WorkloadOp::Use(s) => format!("use {s}"),
            WorkloadOp::Close(s) => format!("close {s}"),
            WorkloadOp::Scenario { n_genes, seed } => format!("scenario {n_genes} {seed}"),
            WorkloadOp::Compendium {
                n_genes,
                n_datasets,
                seed,
            } => format!("compendium {n_genes} {n_datasets} {seed}"),
            WorkloadOp::Ontology { n_filler, seed } => format!("ontology {n_filler} {seed}"),
            WorkloadOp::SelectRegion {
                dataset,
                start_64ths,
                end_64ths,
            } => {
                let start = *start_64ths as f32 / 64.0;
                let end = *end_64ths as f32 / 64.0;
                format!("select_region {dataset} {start:?} {end:?}")
            }
            WorkloadOp::SelectGenes(genes) => format!("select_genes {}", join_list(genes)),
            WorkloadOp::SearchSelect(text) => format!("search_select {text}"),
            WorkloadOp::ClearSelection => "clear_selection".into(),
            WorkloadOp::Scroll(delta) => format!("scroll {delta}"),
            WorkloadOp::ClusterAll => "cluster_all".into(),
            WorkloadOp::SetLinkage(kw) => format!("set_linkage {kw}"),
            WorkloadOp::SetMetric(kw) => format!("set_metric {kw}"),
            WorkloadOp::Normalize(method) => format!("normalize all {method}"),
            WorkloadOp::Impute { dataset, k } => format!("impute {dataset} {k}"),
            WorkloadOp::ClusterArrays(d) => format!("cluster_arrays {d}"),
            WorkloadOp::Search(text) => format!("search {text}"),
            WorkloadOp::Spell { top_n, genes } => format!("spell {top_n} {}", join_list(genes)),
            WorkloadOp::Enrich { max_terms, genes } => {
                format!("enrich {max_terms} {}", join_list(genes))
            }
            WorkloadOp::ExportSelection(what) => format!("export_selection {what}"),
            WorkloadOp::Render { width, height } => format!("render {width} {height}"),
            WorkloadOp::SessionInfo => "session_info".into(),
            WorkloadOp::ListDatasets => "list_datasets".into(),
        }
    }
}

fn join_list(items: &[String]) -> String {
    if items.is_empty() {
        "-".to_string()
    } else {
        items.join(",")
    }
}

/// One scripted client: a session plus bursts of ops. Bursts are meant to
/// be pipelined (written in one batch, replies read after), so their size
/// stays far below the server's per-connection queue limit — generated
/// load never trips `E_BUSY`, which keeps replay comparisons exact.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientScript {
    /// Session this client drives (`use`d by the first burst).
    pub session: String,
    /// The query mix this client runs (differs per client under `Mixed`).
    pub kind: WorkloadKind,
    /// Op batches; each inner vec is one pipelined write.
    pub bursts: Vec<Vec<WorkloadOp>>,
}

impl ClientScript {
    /// All bursts flattened to wire lines, in send order.
    pub fn wire_lines(&self) -> Vec<String> {
        self.bursts
            .iter()
            .flatten()
            .map(WorkloadOp::wire_line)
            .collect()
    }

    /// The whole client stream as a replayable script text.
    pub fn script_text(&self) -> String {
        let mut out = String::new();
        for line in self.wire_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Largest burst the generator will emit. Far below the server's default
/// per-connection queue limit (128): generated clients must never be the
/// ones to trigger `E_BUSY`, or replay comparisons would depend on
/// scheduler timing.
pub const MAX_BURST: usize = 8;

/// Session shared by every client of a [`WorkloadKind::FanIn`] workload.
pub const FAN_IN_SESSION: &str = "wall";

/// Expand a spec into one script per client. Pure: equal specs give
/// equal scripts.
pub fn generate(spec: &WorkloadSpec) -> Vec<ClientScript> {
    (0..spec.clients)
        .map(|client| {
            let kind = match spec.kind {
                WorkloadKind::Mixed => {
                    let mut rng =
                        WorkloadRng::new(spec.seed ^ (client as u64).wrapping_mul(0x9E37));
                    match rng.below(4) {
                        0 => WorkloadKind::Overview,
                        1 => WorkloadKind::ZoomFilter,
                        2 => WorkloadKind::ClusterLoop,
                        _ => WorkloadKind::SpellBurst,
                    }
                }
                k => k,
            };
            client_script(spec, kind, client)
        })
        .collect()
}

fn client_script(spec: &WorkloadSpec, kind: WorkloadKind, client: usize) -> ClientScript {
    // Each client's stream is seeded independently, so adding clients
    // never reshuffles existing ones.
    let mut rng = WorkloadRng::new(
        spec.seed
            .wrapping_mul(0x100000001B3)
            .wrapping_add(client as u64),
    );
    let session = match kind {
        WorkloadKind::FanIn => FAN_IN_SESSION.to_string(),
        k => format!("{}-{client}", k.name()),
    };
    let mut bursts = vec![setup_burst(spec, kind, &session, client)];
    for _ in 0..spec.bursts {
        let burst = match kind {
            WorkloadKind::Overview => overview_burst(&mut rng, spec),
            WorkloadKind::ZoomFilter => zoom_filter_burst(&mut rng, spec),
            WorkloadKind::ClusterLoop => cluster_loop_burst(&mut rng, spec),
            WorkloadKind::SpellBurst => spell_burst(&mut rng, spec),
            WorkloadKind::FanIn if client == 0 => fan_in_driver_burst(&mut rng, spec),
            WorkloadKind::FanIn => fan_in_viewer_burst(&mut rng),
            WorkloadKind::Mixed => unreachable!("Mixed resolves to a concrete kind per client"),
        };
        debug_assert!(burst.len() <= MAX_BURST, "bursts must stay pipelinable");
        bursts.push(burst);
    }
    ClientScript {
        session,
        kind,
        bursts,
    }
}

/// First burst: enter the session and load its data. Fan-in viewers load
/// nothing — they read whatever the driver builds.
fn setup_burst(
    spec: &WorkloadSpec,
    kind: WorkloadKind,
    session: &str,
    client: usize,
) -> Vec<WorkloadOp> {
    let mut ops = vec![WorkloadOp::Use(session.to_string())];
    match kind {
        WorkloadKind::SpellBurst => {
            ops.push(WorkloadOp::Compendium {
                n_genes: spec.n_genes,
                n_datasets: 8,
                seed: spec.seed,
            });
            ops.push(WorkloadOp::Ontology {
                n_filler: 40,
                seed: spec.seed,
            });
        }
        WorkloadKind::FanIn if client != 0 => {}
        _ => {
            ops.push(WorkloadOp::Scenario {
                n_genes: spec.n_genes,
                seed: spec.seed,
            });
            ops.push(WorkloadOp::Ontology {
                n_filler: 40,
                seed: spec.seed,
            });
        }
    }
    ops
}

fn gene_list(rng: &mut WorkloadRng, spec: &WorkloadSpec, n: usize) -> Vec<String> {
    (0..n)
        .map(|_| orf_name(rng.below(spec.n_genes as u64) as usize))
        .collect()
}

const SEARCH_TERMS: &[&str] = &["stress", "heat", "ribosome", "kinase", "YAL", "transport"];
const METRICS: &[&str] = &[
    "pearson",
    "abspearson",
    "uncentered",
    "spearman",
    "euclidean",
];
const LINKAGES: &[&str] = &["single", "complete", "average", "ward"];
const NORMALIZE_METHODS: &[&str] = &["log2", "center", "median", "zscore"];
const EXPORTS: &[&str] = &["gene_list", "merged", "coverage"];

fn pick<'a>(rng: &mut WorkloadRng, items: &[&'a str]) -> &'a str {
    items[rng.below(items.len() as u64) as usize]
}

fn render_op(rng: &mut WorkloadRng) -> WorkloadOp {
    WorkloadOp::Render {
        width: 320 + 64 * rng.below(6) as usize,
        height: 240 + 48 * rng.below(6) as usize,
    }
}

fn overview_burst(rng: &mut WorkloadRng, _spec: &WorkloadSpec) -> Vec<WorkloadOp> {
    let mut ops = vec![WorkloadOp::SessionInfo, WorkloadOp::ListDatasets];
    ops.push(WorkloadOp::Scroll(rng.below(7) as i64 - 3));
    ops.push(render_op(rng));
    if rng.below(3) == 0 {
        ops.push(WorkloadOp::Search(pick(rng, SEARCH_TERMS).to_string()));
    }
    ops
}

fn zoom_filter_burst(rng: &mut WorkloadRng, spec: &WorkloadSpec) -> Vec<WorkloadOp> {
    let mut ops = Vec::new();
    match rng.below(3) {
        0 => {
            let start = rng.below(48) as u32;
            let len = 1 + rng.below(16) as u32;
            ops.push(WorkloadOp::SelectRegion {
                dataset: rng.below(3) as usize,
                start_64ths: start,
                end_64ths: (start + len).min(64),
            });
        }
        1 => {
            let n = 1 + rng.below(5) as usize;
            ops.push(WorkloadOp::SelectGenes(gene_list(rng, spec, n)));
        }
        _ => ops.push(WorkloadOp::SearchSelect(
            pick(rng, SEARCH_TERMS).to_string(),
        )),
    }
    ops.push(render_op(rng));
    match rng.below(3) {
        0 => ops.push(WorkloadOp::ExportSelection(pick(rng, EXPORTS))),
        1 => {
            let max_terms = 1 + rng.below(8) as usize;
            let n = 1 + rng.below(4) as usize;
            ops.push(WorkloadOp::Enrich {
                max_terms,
                genes: gene_list(rng, spec, n),
            });
        }
        _ => {}
    }
    if rng.below(2) == 0 {
        ops.push(WorkloadOp::ClearSelection);
    }
    ops
}

fn cluster_loop_burst(rng: &mut WorkloadRng, spec: &WorkloadSpec) -> Vec<WorkloadOp> {
    let mut ops = Vec::new();
    match rng.below(6) {
        0 => ops.push(WorkloadOp::Normalize(pick(rng, NORMALIZE_METHODS))),
        1 => ops.push(WorkloadOp::Impute {
            dataset: rng.below(3) as usize,
            k: 1 + rng.below(8) as usize,
        }),
        2 => ops.push(WorkloadOp::ClusterArrays(rng.below(3) as usize)),
        _ => {}
    }
    ops.push(WorkloadOp::SetMetric(pick(rng, METRICS)));
    ops.push(WorkloadOp::SetLinkage(pick(rng, LINKAGES)));
    ops.push(WorkloadOp::ClusterAll);
    ops.push(render_op(rng));
    let _ = spec;
    ops
}

fn spell_burst(rng: &mut WorkloadRng, spec: &WorkloadSpec) -> Vec<WorkloadOp> {
    let top_n = 3 + rng.below(10) as usize;
    let n = 1 + rng.below(4) as usize;
    let mut ops = vec![WorkloadOp::Spell {
        top_n,
        genes: gene_list(rng, spec, n),
    }];
    if rng.below(2) == 0 {
        ops.push(WorkloadOp::Search(pick(rng, SEARCH_TERMS).to_string()));
    }
    if rng.below(3) == 0 {
        let max_terms = 1 + rng.below(6) as usize;
        let n = 1 + rng.below(4) as usize;
        ops.push(WorkloadOp::Enrich {
            max_terms,
            genes: gene_list(rng, spec, n),
        });
    }
    ops
}

fn fan_in_driver_burst(rng: &mut WorkloadRng, spec: &WorkloadSpec) -> Vec<WorkloadOp> {
    let mut ops = Vec::new();
    match rng.below(3) {
        0 => ops.push(WorkloadOp::SearchSelect(
            pick(rng, SEARCH_TERMS).to_string(),
        )),
        1 => {
            let n = 1 + rng.below(4) as usize;
            ops.push(WorkloadOp::SelectGenes(gene_list(rng, spec, n)));
        }
        _ => ops.push(WorkloadOp::Scroll(rng.below(5) as i64 - 2)),
    }
    ops.push(render_op(rng));
    ops
}

fn fan_in_viewer_burst(rng: &mut WorkloadRng) -> Vec<WorkloadOp> {
    let mut ops = vec![WorkloadOp::SessionInfo];
    if rng.below(2) == 0 {
        ops.push(WorkloadOp::ListDatasets);
    }
    ops.push(render_op(rng));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_per_client_stable() {
        let spec = WorkloadSpec::small(WorkloadKind::Mixed, 6, 42);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b, "equal specs must generate equal scripts");
        // adding clients never reshuffles existing streams
        let more = generate(&WorkloadSpec {
            clients: 9,
            ..spec.clone()
        });
        assert_eq!(&more[..6], &a[..]);
    }

    #[test]
    fn every_kind_produces_bounded_bursts_and_private_sessions() {
        for &kind in WORKLOAD_KINDS {
            let spec = WorkloadSpec::small(kind, 4, 7);
            let scripts = generate(&spec);
            assert_eq!(scripts.len(), 4);
            for (i, script) in scripts.iter().enumerate() {
                assert_eq!(script.bursts.len(), spec.bursts + 1, "setup + N bursts");
                for burst in &script.bursts {
                    assert!(!burst.is_empty());
                    assert!(burst.len() <= MAX_BURST, "{kind}: burst too large");
                }
                match kind {
                    WorkloadKind::FanIn => assert_eq!(script.session, FAN_IN_SESSION),
                    WorkloadKind::Mixed => {
                        assert!(script.session.ends_with(&format!("-{i}")))
                    }
                    k => assert_eq!(script.session, format!("{}-{i}", k.name())),
                }
            }
        }
    }

    #[test]
    fn fan_in_viewers_are_read_only() {
        let spec = WorkloadSpec::small(WorkloadKind::FanIn, 5, 3);
        let scripts = generate(&spec);
        for script in &scripts[1..] {
            for op in script.bursts.iter().flatten() {
                assert!(
                    matches!(
                        op,
                        WorkloadOp::Use(_)
                            | WorkloadOp::SessionInfo
                            | WorkloadOp::ListDatasets
                            | WorkloadOp::Render { .. }
                    ),
                    "viewer emitted a mutation: {op:?}"
                );
            }
        }
        assert!(
            scripts[0]
                .bursts
                .iter()
                .flatten()
                .any(|op| matches!(op, WorkloadOp::Scenario { .. })),
            "the driver loads the shared session's data"
        );
    }

    #[test]
    fn kind_names_roundtrip() {
        for &kind in WORKLOAD_KINDS {
            assert_eq!(WorkloadKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(WorkloadKind::from_name("nope"), None);
        assert!(!WorkloadKind::FanIn.replay_deterministic());
        assert!(WorkloadKind::Overview.replay_deterministic());
    }

    #[test]
    fn wire_lines_look_like_the_script_grammar() {
        let spec = WorkloadSpec::small(WorkloadKind::ZoomFilter, 2, 11);
        for script in generate(&spec) {
            let text = script.script_text();
            assert!(text.starts_with("use zoom-filter-"));
            for line in text.lines() {
                assert!(!line.trim().is_empty());
                assert_eq!(line, line.trim(), "lines carry no stray whitespace");
            }
        }
    }
}
