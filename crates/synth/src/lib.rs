//! # fv-synth — synthetic genomic workloads with planted structure
//!
//! The paper's evaluation runs on published yeast data: the Gasch
//! environmental-stress compendium [11], the Saldanha/Brauer nutrient
//! limitation chemostats [12] and the Hughes knockout compendium [13].
//! Those datasets are not redistributable here, so this crate generates
//! structurally equivalent synthetic ones (see DESIGN.md's substitution
//! table): yeast-like gene names, planted co-expression modules — most
//! importantly an **environmental stress response (ESR)** module that is
//! active across stress, nutrient-limitation *and* knockout conditions,
//! which is precisely the cross-dataset signal the Section-4 case study
//! discovers — plus per-dataset specific modules, gene-level noise, and
//! missing values.
//!
//! Everything is deterministic given a `u64` seed.
//!
//! - [`names`] — systematic ORF-style names (`YAL001C`) and common names,
//! - [`modules`] — module specifications and the planted ground truth,
//! - [`dataset`] — stress / nutrient-limitation / knockout generators,
//! - [`compendium`] — many-dataset compendia for SPELL-scale experiments,
//! - [`ontogen`] — a GO-like ontology whose terms align with the planted
//!   modules, so GOLEM enrichment has a discoverable signal,
//! - [`scenario`] — paper-scale presets used by examples, tests, benches,
//! - [`workload`] — seeded *traffic* (taxonomy-derived query mixes), the
//!   request-stream counterpart of the data generators.

#![forbid(unsafe_code)]

pub mod compendium;
pub mod dataset;
pub mod modules;
pub mod names;
pub mod ontogen;
pub mod scenario;
pub mod workload;

pub use compendium::{generate_compendium, CompendiumSpec};
pub use modules::{GroundTruth, ModuleKind, ModuleSpec};
pub use scenario::Scenario;
pub use workload::{
    generate as generate_workload, ClientScript, WorkloadKind, WorkloadOp, WorkloadRng,
    WorkloadSpec, WORKLOAD_KINDS,
};
