//! Yeast-like gene naming.
//!
//! Systematic names follow the *S. cerevisiae* ORF convention:
//! `Y<chromosome A–P><arm L|R><3-digit index><strand W|C>`, e.g.
//! `YAL005C`. Common names are three uppercase letters plus a number
//! (`HSP12`). Deterministic: gene `i` always gets the same names.

/// Systematic ORF-style name for gene index `i`.
pub fn orf_name(i: usize) -> String {
    const CHROMS: [char; 16] = [
        'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P',
    ];
    let strand = if i.is_multiple_of(2) { 'W' } else { 'C' };
    let arm = if (i / 2).is_multiple_of(2) { 'L' } else { 'R' };
    let chrom = CHROMS[(i / 4) % 16];
    // Combine blocks so names stay unique for large i: the numeric field
    // carries both the within-block index and the block number.
    let numeric = (i / (16 * 4)) * 128 + (i % 128) + 1;
    format!("Y{chrom}{arm}{numeric:03}{strand}")
}

/// Common (gene-symbol) name for gene index `i`.
pub fn common_name(i: usize) -> String {
    const PREFIXES: [&str; 24] = [
        "HSP", "SSA", "RPL", "RPS", "CTT", "TPS", "GPD", "ENO", "PGK", "ADH", "CYC", "COX", "ATP",
        "PMA", "SNF", "GAL", "MIG", "TUP", "MSN", "YAP", "SOD", "TRX", "GRX", "PHO",
    ];
    format!("{}{}", PREFIXES[i % PREFIXES.len()], i / PREFIXES.len() + 1)
}

/// Annotation text for gene `i`, mentioning its module role so that
/// ForestView's annotation search has realistic material to match.
pub fn annotation_text(i: usize, module: Option<&str>) -> String {
    match module {
        Some(m) => format!("protein involved in {m}; ORF index {i}"),
        None => format!("uncharacterized protein; ORF index {i}"),
    }
}

/// The first `n` ORF names.
pub fn orf_names(n: usize) -> Vec<String> {
    (0..n).map(orf_name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn orf_name_format() {
        let n = orf_name(0);
        assert_eq!(n.len(), 7);
        assert!(n.starts_with('Y'));
        assert!(n.ends_with('W') || n.ends_with('C'));
        let arm = n.chars().nth(2).unwrap();
        assert!(arm == 'L' || arm == 'R');
    }

    #[test]
    fn orf_names_unique_at_scale() {
        let names = orf_names(50_000);
        let set: HashSet<&String> = names.iter().collect();
        assert_eq!(set.len(), 50_000, "ORF names must be unique");
    }

    #[test]
    fn orf_name_deterministic() {
        assert_eq!(orf_name(1234), orf_name(1234));
        assert_ne!(orf_name(1), orf_name(2));
    }

    #[test]
    fn common_names_plausible() {
        let c = common_name(0);
        assert!(c.starts_with("HSP"));
        assert_eq!(common_name(24), "HSP2");
        // unique across a realistic range
        let set: HashSet<String> = (0..10_000).map(common_name).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn annotation_mentions_module() {
        let a = annotation_text(5, Some("oxidative stress response"));
        assert!(a.contains("oxidative stress response"));
        let b = annotation_text(5, None);
        assert!(b.contains("uncharacterized"));
    }
}
