//! GO-like ontology generation aligned with planted modules.
//!
//! GOLEM needs a hierarchy and annotations. We build one whose *leaf* terms
//! correspond to the planted modules (so enrichment of a recovered module
//! is discoverable), embedded in a filler hierarchy of realistic size and
//! branching, with genes annotated to their module's term plus background
//! annotations spread over filler terms.

use crate::modules::GroundTruth;
use crate::names;
use fv_ontology::annotations::AnnotationSet;
use fv_ontology::dag::{DagBuilder, OntologyDag, RelType};
use fv_ontology::term::{Namespace, Term, TermId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated ontology bundle.
#[derive(Debug)]
pub struct GeneratedOntology {
    /// The DAG.
    pub dag: OntologyDag,
    /// Direct annotations (un-propagated).
    pub annotations: AnnotationSet,
    /// Term ids corresponding to each planted module (same order as
    /// `truth.modules`).
    pub module_terms: Vec<TermId>,
}

/// Generate an ontology of roughly `n_filler` filler terms plus one leaf
/// term per planted module.
///
/// Structure: a root, a small layer of top categories, filler terms
/// attached by preferential chains (each term picks a parent among earlier
/// terms, keeping depth realistic), occasional `part_of` second parents
/// (GO is a DAG, not a tree), and the module terms attached under the
/// "response to stimulus" category.
pub fn generate_ontology(truth: &GroundTruth, n_filler: usize, seed: u64) -> GeneratedOntology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::new();
    let mut next_acc = 0usize;
    let acc = |next_acc: &mut usize| -> String {
        let s = format!("GO:{:07}", *next_acc);
        *next_acc += 1;
        s
    };

    let root = b
        .add_term(Term::new(
            acc(&mut next_acc),
            "biological_process",
            Namespace::BiologicalProcess,
        ))
        .unwrap();
    const CATEGORIES: [&str; 5] = [
        "response to stimulus",
        "metabolic process",
        "cellular component organization",
        "transport",
        "gene expression",
    ];
    let cats: Vec<TermId> = CATEGORIES
        .iter()
        .map(|name| {
            let t = b
                .add_term(Term::new(
                    acc(&mut next_acc),
                    *name,
                    Namespace::BiologicalProcess,
                ))
                .unwrap();
            b.add_edge(t, root, RelType::IsA);
            t
        })
        .collect();

    // Filler terms: parent chosen among all existing non-root terms,
    // biased toward recent ones to produce chains (depth) as well as
    // bushes (breadth).
    let mut filler: Vec<TermId> = Vec::with_capacity(n_filler);
    let mut all_attachable: Vec<TermId> = cats.clone();
    for i in 0..n_filler {
        let t = b
            .add_term(Term::new(
                acc(&mut next_acc),
                format!("filler process {i}"),
                Namespace::BiologicalProcess,
            ))
            .unwrap();
        let parent = if rng.gen::<f32>() < 0.5 && !filler.is_empty() {
            // chain: attach under a recent filler term
            let lo = filler.len().saturating_sub(20);
            filler[rng.gen_range(lo..filler.len())]
        } else {
            all_attachable[rng.gen_range(0..all_attachable.len())]
        };
        b.add_edge(t, parent, RelType::IsA);
        // occasional second parent (part_of) makes it a true DAG
        if rng.gen::<f32>() < 0.15 {
            let second = all_attachable[rng.gen_range(0..all_attachable.len())];
            if second != parent {
                b.add_edge(t, second, RelType::PartOf);
            }
        }
        filler.push(t);
        all_attachable.push(t);
    }

    // Module terms under "response to stimulus".
    let stimulus = cats[0];
    let module_terms: Vec<TermId> = truth
        .modules
        .iter()
        .map(|m| {
            let t = b
                .add_term(Term::new(
                    acc(&mut next_acc),
                    m.name.clone(),
                    Namespace::BiologicalProcess,
                ))
                .unwrap();
            b.add_edge(t, stimulus, RelType::IsA);
            t
        })
        .collect();

    let dag = b.build().expect("generated ontology is acyclic");

    // Annotations: module genes to their module term; every gene gets 1–3
    // background annotations on filler terms.
    let mut ann = AnnotationSet::new();
    for g in 0..truth.n_genes {
        let gene = names::orf_name(g);
        ann.ensure_gene(&gene);
        if let Some(mi) = truth.membership[g] {
            ann.annotate(&gene, module_terms[mi]);
        }
        if !filler.is_empty() {
            let extra = rng.gen_range(1..=3);
            for _ in 0..extra {
                let t = filler[rng.gen_range(0..filler.len())];
                ann.annotate(&gene, t);
            }
        }
    }

    GeneratedOntology {
        dag,
        annotations: ann,
        module_terms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::plant_modules;

    fn setup() -> (GroundTruth, GeneratedOntology) {
        let truth = plant_modules(300, 3, 25, 17);
        let onto = generate_ontology(&truth, 200, 17);
        (truth, onto)
    }

    #[test]
    fn sizes_and_structure() {
        let (truth, o) = setup();
        // 1 root + 5 categories + 200 filler + module terms
        assert_eq!(o.dag.n_terms(), 206 + truth.modules.len());
        assert_eq!(o.module_terms.len(), truth.modules.len());
        assert_eq!(o.dag.roots().len(), 1);
    }

    #[test]
    fn module_genes_annotated_to_module_terms() {
        let (truth, o) = setup();
        let prop = o.annotations.propagate(&o.dag);
        for (mi, m) in truth.modules.iter().enumerate() {
            let t = o.module_terms[mi];
            assert_eq!(prop.count(t), m.genes.len(), "module {}", m.name);
            let g0 = names::orf_name(m.genes[0]);
            assert!(prop.is_annotated(&g0, t));
        }
    }

    #[test]
    fn propagation_reaches_root() {
        let (truth, o) = setup();
        let prop = o.annotations.propagate(&o.dag);
        let root = o.dag.roots()[0];
        // every gene has ≥1 annotation → root covers the whole population
        assert_eq!(prop.count(root), truth.n_genes);
    }

    #[test]
    fn dag_has_multi_parent_terms() {
        let (_, o) = setup();
        let multi = o.dag.ids().filter(|&t| o.dag.parents(t).len() > 1).count();
        assert!(multi > 5, "expected part_of second parents, found {multi}");
    }

    #[test]
    fn deterministic() {
        let truth = plant_modules(100, 2, 15, 3);
        let a = generate_ontology(&truth, 50, 3);
        let b = generate_ontology(&truth, 50, 3);
        assert_eq!(a.dag.n_terms(), b.dag.n_terms());
        assert_eq!(a.dag.n_edges(), b.dag.n_edges());
        let pa = a.annotations.propagate(&a.dag);
        let pb = b.annotations.propagate(&b.dag);
        for t in a.dag.ids() {
            assert_eq!(pa.count(t), pb.count(t));
        }
    }

    #[test]
    fn enrichment_of_planted_module_detected() {
        // end-to-end sanity: GOLEM enrichment must find the module term.
        let (truth, o) = setup();
        let prop = o.annotations.propagate(&o.dag);
        let m = &truth.modules[2];
        let genes: Vec<String> = m
            .genes
            .iter()
            .take(15)
            .map(|&g| names::orf_name(g))
            .collect();
        let refs: Vec<&str> = genes.iter().map(|s| s.as_str()).collect();
        let res = fv_golem::enrich(&o.dag, &prop, &refs, &fv_golem::EnrichmentConfig::default());
        assert!(!res.is_empty());
        assert_eq!(
            res[0].term, o.module_terms[2],
            "module term should top the list"
        );
        assert!(res[0].p_bonferroni < 1e-10);
    }
}
