//! Planted co-expression modules and ground truth.
//!
//! A module is a set of genes that move together under some conditions.
//! The central one is the **ESR** (environmental stress response, after
//! Gasch et al. [11]): a large gene set induced (or repressed) by *any*
//! stress — the signal the Section-4 case study traces across dataset
//! types. Specific modules (heat, oxidative, nutrient, ribosome, …)
//! respond only to their own conditions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What kind of regulation a module's genes share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// Induced by general stress (ESR up-cluster).
    EsrInduced,
    /// Repressed by general stress (ESR down-cluster: ribosome biogenesis).
    EsrRepressed,
    /// Responds only to a specific condition family.
    Specific,
}

/// A planted module: a named gene set with an expression amplitude.
#[derive(Debug, Clone)]
pub struct ModuleSpec {
    /// Human-readable name, e.g. `heat shock response`.
    pub name: String,
    /// Member gene indices (into the shared gene universe).
    pub genes: Vec<usize>,
    /// Regulation kind.
    pub kind: ModuleKind,
    /// Expression amplitude in log₂ units at full activity.
    pub amplitude: f32,
}

/// The planted truth for a generated universe.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Number of genes in the universe.
    pub n_genes: usize,
    /// All planted modules. Index 0 is always ESR-induced, 1 ESR-repressed.
    pub modules: Vec<ModuleSpec>,
    /// For each gene: the module it belongs to (one module per gene here,
    /// which keeps recovery metrics unambiguous), or `None`.
    pub membership: Vec<Option<usize>>,
}

impl GroundTruth {
    /// Gene indices of the ESR-induced module.
    pub fn esr_induced(&self) -> &[usize] {
        &self.modules[0].genes
    }

    /// Gene indices of the ESR-repressed module.
    pub fn esr_repressed(&self) -> &[usize] {
        &self.modules[1].genes
    }

    /// Module of a gene, if any.
    pub fn module_of(&self, gene: usize) -> Option<&ModuleSpec> {
        self.membership[gene].map(|m| &self.modules[m])
    }

    /// Names (for annotation text) of a gene's module.
    pub fn module_name_of(&self, gene: usize) -> Option<&str> {
        self.module_of(gene).map(|m| m.name.as_str())
    }
}

/// Build a module layout over `n_genes` genes.
///
/// Fractions follow the Gasch-scale proportions: ~5% ESR-induced, ~10%
/// ESR-repressed, then `n_specific` specific modules of `specific_size`
/// genes each. Gene indices are assigned by a seeded shuffle so module
/// members are scattered through the universe (as in real data, where row
/// order is arbitrary).
pub fn plant_modules(
    n_genes: usize,
    n_specific: usize,
    specific_size: usize,
    seed: u64,
) -> GroundTruth {
    assert!(n_genes >= 20, "need a non-trivial universe");
    let esr_up = (n_genes / 20).max(5); // 5%
    let esr_down = (n_genes / 10).max(5); // 10%
    let needed = esr_up + esr_down + n_specific * specific_size;
    assert!(
        needed <= n_genes,
        "modules need {needed} genes but universe has {n_genes}"
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n_genes).collect();
    // Fisher-Yates shuffle.
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }

    let mut cursor = 0usize;
    let take = |k: usize, cursor: &mut usize| -> Vec<usize> {
        let mut v = idx[*cursor..*cursor + k].to_vec();
        *cursor += k;
        v.sort_unstable();
        v
    };

    const SPECIFIC_NAMES: [&str; 8] = [
        "heat shock response",
        "oxidative stress response",
        "osmotic stress response",
        "nitrogen metabolism",
        "phosphate metabolism",
        "galactose utilization",
        "amino acid biosynthesis",
        "cell wall organization",
    ];

    let mut modules = vec![
        ModuleSpec {
            name: "general stress response (induced)".to_string(),
            genes: take(esr_up, &mut cursor),
            kind: ModuleKind::EsrInduced,
            amplitude: 2.5,
        },
        ModuleSpec {
            name: "ribosome biogenesis (stress repressed)".to_string(),
            genes: take(esr_down, &mut cursor),
            kind: ModuleKind::EsrRepressed,
            amplitude: 2.0,
        },
    ];
    for s in 0..n_specific {
        modules.push(ModuleSpec {
            name: SPECIFIC_NAMES[s % SPECIFIC_NAMES.len()].to_string(),
            genes: take(specific_size, &mut cursor),
            kind: ModuleKind::Specific,
            amplitude: 2.2,
        });
    }

    let mut membership = vec![None; n_genes];
    for (mi, m) in modules.iter().enumerate() {
        for &g in &m.genes {
            membership[g] = Some(mi);
        }
    }
    GroundTruth {
        n_genes,
        modules,
        membership,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportions_roughly_gasch() {
        let t = plant_modules(6000, 4, 50, 7);
        assert_eq!(t.esr_induced().len(), 300);
        assert_eq!(t.esr_repressed().len(), 600);
        assert_eq!(t.modules.len(), 6);
        assert_eq!(t.modules[2].genes.len(), 50);
    }

    #[test]
    fn membership_consistent() {
        let t = plant_modules(1000, 3, 30, 11);
        for (mi, m) in t.modules.iter().enumerate() {
            for &g in &m.genes {
                assert_eq!(t.membership[g], Some(mi));
            }
        }
        let member_count = t.membership.iter().filter(|m| m.is_some()).count();
        let expected: usize = t.modules.iter().map(|m| m.genes.len()).sum();
        assert_eq!(member_count, expected, "no overlaps between modules");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = plant_modules(500, 2, 20, 42);
        let b = plant_modules(500, 2, 20, 42);
        assert_eq!(a.esr_induced(), b.esr_induced());
        let c = plant_modules(500, 2, 20, 43);
        assert_ne!(a.esr_induced(), c.esr_induced());
    }

    #[test]
    fn genes_scattered_not_contiguous() {
        let t = plant_modules(2000, 2, 40, 5);
        let g = t.esr_induced();
        // A contiguous block would span exactly len; a shuffled draw spans
        // nearly the whole universe.
        let span = g.last().unwrap() - g.first().unwrap();
        assert!(span > t.n_genes / 2, "span {span} too tight");
    }

    #[test]
    fn module_name_lookup() {
        let t = plant_modules(200, 1, 20, 3);
        let g = t.modules[2].genes[0];
        assert_eq!(t.module_name_of(g), Some("heat shock response"));
        let free = (0..200).find(|&i| t.membership[i].is_none()).unwrap();
        assert_eq!(t.module_name_of(free), None);
    }

    #[test]
    #[should_panic(expected = "modules need")]
    fn overfull_universe_panics() {
        let _ = plant_modules(100, 10, 50, 1);
    }
}
