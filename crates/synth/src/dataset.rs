//! Dataset generators: stress time courses, nutrient-limitation chemostats,
//! knockout compendia, and generic compendium members.
//!
//! Every generator follows the same model. A condition carries an *activity
//! level* for each planted module; gene `g`'s log₂-ratio in condition `c` is
//!
//! ```text
//! value(g, c) = load(g) · signed_amplitude(module(g)) · activity(c, module(g))
//!             + N(0, noise_sd)
//! ```
//!
//! where `load(g)` is a fixed per-gene responsiveness (so the same gene
//! responds consistently across datasets — the property that makes
//! cross-dataset correlation, and hence the Section-4 analysis, work), and
//! ESR-repressed modules contribute with negative sign. Rows are emitted in
//! a per-dataset shuffled order: real datasets never agree on row order,
//! which is exactly what ForestView's merged interface and synchronized
//! views exist to handle.

use crate::modules::{GroundTruth, ModuleKind};
use crate::names;
use fv_expr::matrix::ExprMatrix;
use fv_expr::meta::{ConditionMeta, GeneMeta};
use fv_expr::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise / missingness configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Standard deviation of the additive Gaussian noise (log₂ units).
    pub noise_sd: f32,
    /// Fraction of cells marked missing, in `[0, 1)`.
    pub missing_fraction: f32,
    /// Seed for this dataset's randomness.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            noise_sd: 0.35,
            missing_fraction: 0.02,
            seed: 1,
        }
    }
}

/// One condition: display label plus per-module activity levels.
#[derive(Debug, Clone)]
pub struct CondSpec {
    /// Column label, e.g. `heat shock 15 min`.
    pub label: String,
    /// Activity of each module (indexed like `truth.modules`), in `[0, 1]`
    /// typically; negative collapses a module.
    pub activity: Vec<f32>,
}

/// Standard normal via Box–Muller (rand 0.8 has no Gaussian distribution
/// without the `rand_distr` crate, which we avoid pulling in).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fixed per-gene responsiveness in ~N(1, 0.15), derived from the gene
/// index alone so it is identical across datasets.
pub fn gene_load(gene: usize) -> f32 {
    // splitmix64 hash → uniform → mild spread around 1.0
    let mut z = (gene as u64).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    let u = (z >> 11) as f32 / (1u64 << 53) as f32;
    0.7 + 0.6 * u // uniform in [0.7, 1.3]
}

fn signed_amplitude(kind: ModuleKind, amplitude: f32) -> f32 {
    match kind {
        ModuleKind::EsrRepressed => -amplitude,
        _ => amplitude,
    }
}

/// Synthesize a dataset from condition specs. Rows are shuffled with the
/// config seed; gene metadata carries the universe index in its ORF name.
pub fn synthesize(
    name: &str,
    truth: &GroundTruth,
    conditions: &[CondSpec],
    cfg: &GenConfig,
) -> Dataset {
    let n = truth.n_genes;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Shuffled row order.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }

    let mut matrix = ExprMatrix::zeros(n, conditions.len());
    for (row, &g) in order.iter().enumerate() {
        let load = gene_load(g);
        let contribution = truth.membership[g].map(|mi| {
            let m = &truth.modules[mi];
            (mi, signed_amplitude(m.kind, m.amplitude))
        });
        for (c, cond) in conditions.iter().enumerate() {
            let signal = match contribution {
                Some((mi, amp)) => load * amp * cond.activity[mi],
                None => 0.0,
            };
            let v = signal + cfg.noise_sd * gaussian(&mut rng);
            if cfg.missing_fraction > 0.0 && rng.gen::<f32>() < cfg.missing_fraction {
                matrix.set_missing(row, c);
            } else {
                matrix.set(row, c, v);
            }
        }
    }

    let genes: Vec<GeneMeta> = order
        .iter()
        .map(|&g| GeneMeta {
            id: names::orf_name(g),
            name: names::common_name(g),
            annotation: names::annotation_text(g, truth.module_name_of(g)),
            weight: 1.0,
        })
        .collect();
    let conds: Vec<ConditionMeta> = conditions
        .iter()
        .map(|c| ConditionMeta::new(c.label.clone()))
        .collect();
    Dataset::new(name, matrix, genes, conds).expect("generated shapes agree")
}

/// Index of the first specific module whose name contains `needle`.
fn specific_module(truth: &GroundTruth, needle: &str) -> Option<usize> {
    truth
        .modules
        .iter()
        .position(|m| m.kind == ModuleKind::Specific && m.name.contains(needle))
}

/// Gasch-style environmental stress time courses: for each stress family,
/// a 5-point ramp activating the ESR plus the family's specific module.
pub fn stress_dataset(name: &str, truth: &GroundTruth, cfg: &GenConfig) -> Dataset {
    const RAMP: [(u32, f32); 5] = [(0, 0.0), (5, 0.4), (15, 0.8), (30, 1.0), (60, 0.7)];
    const FAMILIES: [(&str, &str); 3] = [
        ("heat shock", "heat shock"),
        ("oxidative", "oxidative"),
        ("osmotic", "osmotic"),
    ];
    let n_mod = truth.modules.len();
    let mut conds = Vec::new();
    for (label, needle) in FAMILIES {
        let sm = specific_module(truth, needle);
        for (minutes, level) in RAMP {
            let mut act = vec![0.0f32; n_mod];
            act[0] = level; // ESR induced
            act[1] = level; // ESR repressed (sign handled by amplitude)
            if let Some(s) = sm {
                act[s] = level;
            }
            conds.push(CondSpec {
                label: format!("{label} {minutes} min"),
                activity: act,
            });
        }
    }
    synthesize(name, truth, &conds, cfg)
}

/// Brauer/Saldanha-style chemostat nutrient limitations: six nutrients ×
/// dilution rates; slower growth means stronger ESR, and two nutrients
/// additionally drive their matching specific modules.
pub fn nutrient_limitation_dataset(name: &str, truth: &GroundTruth, cfg: &GenConfig) -> Dataset {
    const NUTRIENTS: [&str; 6] = [
        "glucose",
        "nitrogen",
        "phosphate",
        "sulfur",
        "leucine",
        "uracil",
    ];
    const DILUTIONS: [f32; 4] = [0.05, 0.1, 0.2, 0.3];
    let n_mod = truth.modules.len();
    let nitrogen_m = specific_module(truth, "nitrogen");
    let phosphate_m = specific_module(truth, "phosphate");
    let mut conds = Vec::new();
    for nutrient in NUTRIENTS {
        for d in DILUTIONS {
            // growth rate ∝ dilution in a chemostat; ESR strength rises as
            // growth slows (Brauer's growth-rate signature).
            let esr = 1.0 - d / 0.3;
            let mut act = vec![0.0f32; n_mod];
            act[0] = esr;
            act[1] = esr;
            if nutrient == "nitrogen" {
                if let Some(m) = nitrogen_m {
                    act[m] = 0.8;
                }
            }
            if nutrient == "phosphate" {
                if let Some(m) = phosphate_m {
                    act[m] = 0.8;
                }
            }
            conds.push(CondSpec {
                label: format!("{nutrient} limited D={d}"),
                activity: act,
            });
        }
    }
    synthesize(name, truth, &conds, cfg)
}

/// Hughes-style knockout compendium: each condition deletes one gene. When
/// the deleted gene belongs to a module, that module collapses (negative
/// activity); independently, a fraction of knockouts are *slow growers*
/// whose profile is dominated by the general stress response — the
/// confound the Section-4 case study untangles.
pub fn knockout_dataset(
    name: &str,
    truth: &GroundTruth,
    n_knockouts: usize,
    slow_grower_fraction: f32,
    cfg: &GenConfig,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0DE_5EED);
    let n_mod = truth.modules.len();
    let mut conds = Vec::new();
    for k in 0..n_knockouts {
        // Alternate module-member knockouts and random ones so the module
        // collapse signal is well represented.
        let gene = if k % 2 == 0 && !truth.modules[k % n_mod].genes.is_empty() {
            let m = &truth.modules[k % n_mod];
            m.genes[rng.gen_range(0..m.genes.len())]
        } else {
            rng.gen_range(0..truth.n_genes)
        };
        let mut act = vec![0.0f32; n_mod];
        if let Some(mi) = truth.membership[gene] {
            act[mi] = -0.9; // deleting a member collapses its module
        }
        if rng.gen::<f32>() < slow_grower_fraction {
            act[0] = 0.85;
            act[1] = 0.85;
        }
        conds.push(CondSpec {
            label: format!("ko {}", names::orf_name(gene)),
            activity: act,
        });
    }
    synthesize(name, truth, &conds, cfg)
}

/// A generic compendium member: each condition activates the ESR with
/// probability 0.3 and one random specific module with probability 0.5.
pub fn generic_dataset(
    name: &str,
    truth: &GroundTruth,
    n_conditions: usize,
    cfg: &GenConfig,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6E6E);
    let n_mod = truth.modules.len();
    let mut conds = Vec::new();
    for c in 0..n_conditions {
        let mut act = vec![0.0f32; n_mod];
        if rng.gen::<f32>() < 0.3 {
            let level = rng.gen_range(0.5..1.0);
            act[0] = level;
            act[1] = level;
        }
        if n_mod > 2 && rng.gen::<f32>() < 0.5 {
            let m = rng.gen_range(2..n_mod);
            act[m] = rng.gen_range(0.5..1.0);
        }
        conds.push(CondSpec {
            label: format!("experiment {c}"),
            activity: act,
        });
    }
    synthesize(name, truth, &conds, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modules::plant_modules;
    use fv_expr::stats;

    fn truth() -> GroundTruth {
        plant_modules(400, 3, 25, 9)
    }

    fn find_rows(ds: &Dataset, genes: &[usize]) -> Vec<usize> {
        genes
            .iter()
            .filter_map(|&g| ds.find_gene(&names::orf_name(g)))
            .collect()
    }

    #[test]
    fn stress_dataset_shapes() {
        let t = truth();
        let ds = stress_dataset("stress", &t, &GenConfig::default());
        assert_eq!(ds.n_genes(), 400);
        assert_eq!(ds.n_conditions(), 15); // 3 families × 5 points
        assert!(ds.condition_labels()[1].contains("heat shock 5 min"));
    }

    #[test]
    fn esr_genes_induced_under_stress() {
        let t = truth();
        let ds = stress_dataset(
            "stress",
            &t,
            &GenConfig {
                noise_sd: 0.1,
                missing_fraction: 0.0,
                seed: 3,
            },
        );
        let rows = find_rows(&ds, t.esr_induced());
        // At the strongest time point (30 min heat = column 3) ESR genes sit
        // well above zero on average.
        let mean: f64 = rows
            .iter()
            .map(|&r| ds.matrix.get(r, 3).unwrap() as f64)
            .sum::<f64>()
            / rows.len() as f64;
        assert!(mean > 1.5, "ESR induction mean {mean}");
        // and repressed genes below zero
        let rrows = find_rows(&ds, t.esr_repressed());
        let rmean: f64 = rrows
            .iter()
            .map(|&r| ds.matrix.get(r, 3).unwrap() as f64)
            .sum::<f64>()
            / rrows.len() as f64;
        assert!(rmean < -1.0, "ESR repression mean {rmean}");
    }

    #[test]
    fn module_genes_correlate_within_dataset() {
        let t = truth();
        let ds = stress_dataset(
            "s",
            &t,
            &GenConfig {
                noise_sd: 0.2,
                missing_fraction: 0.0,
                seed: 4,
            },
        );
        let rows = find_rows(&ds, &t.esr_induced()[..6]);
        let mut corrs = Vec::new();
        for i in 0..rows.len() - 1 {
            for j in (i + 1)..rows.len() {
                if let Some(r) = stats::pearson_rows(&ds.matrix, rows[i], &ds.matrix, rows[j], 3) {
                    corrs.push(r);
                }
            }
        }
        let mean = corrs.iter().sum::<f64>() / corrs.len() as f64;
        assert!(mean > 0.7, "within-module correlation {mean}");
    }

    #[test]
    fn rows_are_shuffled_per_dataset() {
        let t = truth();
        let a = stress_dataset(
            "a",
            &t,
            &GenConfig {
                seed: 1,
                ..GenConfig::default()
            },
        );
        let b = stress_dataset(
            "b",
            &t,
            &GenConfig {
                seed: 2,
                ..GenConfig::default()
            },
        );
        let ids_a: Vec<&str> = a.genes.iter().take(20).map(|g| g.id.as_str()).collect();
        let ids_b: Vec<&str> = b.genes.iter().take(20).map(|g| g.id.as_str()).collect();
        assert_ne!(ids_a, ids_b, "row orders should differ between datasets");
    }

    #[test]
    fn nutrient_dataset_slow_growth_activates_esr() {
        let t = truth();
        let ds = nutrient_limitation_dataset(
            "nl",
            &t,
            &GenConfig {
                noise_sd: 0.1,
                missing_fraction: 0.0,
                seed: 5,
            },
        );
        assert_eq!(ds.n_conditions(), 24);
        let rows = find_rows(&ds, &t.esr_induced()[..10]);
        // column 0 = glucose D=0.05 (slow, stressed); column 3 = D=0.3 (fast)
        let slow: f64 = rows
            .iter()
            .map(|&r| ds.matrix.get(r, 0).unwrap() as f64)
            .sum::<f64>()
            / 10.0;
        let fast: f64 = rows
            .iter()
            .map(|&r| ds.matrix.get(r, 3).unwrap() as f64)
            .sum::<f64>()
            / 10.0;
        assert!(slow > fast + 1.0, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn knockout_collapses_module() {
        let t = truth();
        let ds = knockout_dataset(
            "ko",
            &t,
            40,
            0.0,
            &GenConfig {
                noise_sd: 0.1,
                missing_fraction: 0.0,
                seed: 6,
            },
        );
        assert_eq!(ds.n_conditions(), 40);
        // Find a knockout column that names an ESR-induced member; its
        // module-mates should be negative there.
        let esr: std::collections::HashSet<usize> = t.esr_induced().iter().copied().collect();
        let col = (0..ds.n_conditions()).find(|&c| {
            let label = &ds.conditions[c].label;
            let orf = label.strip_prefix("ko ").unwrap();
            (0..t.n_genes).any(|g| esr.contains(&g) && names::orf_name(g) == orf)
        });
        if let Some(c) = col {
            let rows = find_rows(&ds, &t.esr_induced()[..10]);
            let mean: f64 = rows
                .iter()
                .map(|&r| ds.matrix.get(r, c).unwrap() as f64)
                .sum::<f64>()
                / 10.0;
            assert!(mean < -1.0, "collapsed module mean {mean}");
        } else {
            panic!("no ESR knockout generated");
        }
    }

    #[test]
    fn slow_growers_show_stress_signature() {
        let t = truth();
        let ds = knockout_dataset(
            "ko",
            &t,
            60,
            1.0,
            &GenConfig {
                noise_sd: 0.1,
                missing_fraction: 0.0,
                seed: 7,
            },
        );
        let rows = find_rows(&ds, &t.esr_induced()[..10]);
        // with every knockout a slow grower, ESR genes average positive
        let mut total = 0.0f64;
        let mut n = 0usize;
        for &r in &rows {
            for c in 0..ds.n_conditions() {
                if let Some(v) = ds.matrix.get(r, c) {
                    total += v as f64;
                    n += 1;
                }
            }
        }
        assert!(total / n as f64 > 1.0);
    }

    #[test]
    fn missing_fraction_respected() {
        let t = truth();
        let ds = generic_dataset(
            "g",
            &t,
            30,
            &GenConfig {
                noise_sd: 0.3,
                missing_fraction: 0.1,
                seed: 8,
            },
        );
        let frac = ds.matrix.missing_fraction();
        assert!((frac - 0.1).abs() < 0.02, "missing fraction {frac}");
    }

    #[test]
    fn generator_deterministic() {
        let t = truth();
        let cfg = GenConfig::default();
        let a = generic_dataset("g", &t, 10, &cfg);
        let b = generic_dataset("g", &t, 10, &cfg);
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn gene_load_stable_and_bounded() {
        for g in [0usize, 17, 999, 123456] {
            let l = gene_load(g);
            assert_eq!(l, gene_load(g));
            assert!((0.7..=1.3).contains(&l));
        }
    }
}
