//! Compendium generation: many datasets over a shared universe.
//!
//! SPELL-scale experiments need "very large compendia of gene expression
//! microarray data" (paper, Section 3). This module assembles one: the
//! three themed datasets (stress, nutrient limitation, knockouts) plus as
//! many generic experiments as requested, all over the same planted ground
//! truth. Datasets generate in parallel with rayon — compendium
//! construction is itself one of the scale claims (E8).

use crate::dataset::{
    generic_dataset, knockout_dataset, nutrient_limitation_dataset, stress_dataset, GenConfig,
};
use crate::modules::{plant_modules, GroundTruth};
use fv_expr::Dataset;
use rayon::prelude::*;

/// Compendium shape parameters.
#[derive(Debug, Clone, Copy)]
pub struct CompendiumSpec {
    /// Genes in the shared universe.
    pub n_genes: usize,
    /// Total datasets (≥ 3: the three themed ones come first).
    pub n_datasets: usize,
    /// Conditions per generic dataset.
    pub conds_per_dataset: usize,
    /// Number of specific planted modules.
    pub n_specific: usize,
    /// Genes per specific module.
    pub specific_size: usize,
    /// Additive noise σ.
    pub noise_sd: f32,
    /// Missing-cell fraction.
    pub missing_fraction: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for CompendiumSpec {
    fn default() -> Self {
        CompendiumSpec {
            n_genes: 1000,
            n_datasets: 10,
            conds_per_dataset: 20,
            n_specific: 4,
            specific_size: 40,
            noise_sd: 0.35,
            missing_fraction: 0.02,
            seed: 2007,
        }
    }
}

/// Generate a compendium and its ground truth.
pub fn generate_compendium(spec: &CompendiumSpec) -> (Vec<Dataset>, GroundTruth) {
    assert!(spec.n_datasets >= 3, "compendium needs at least 3 datasets");
    let truth = plant_modules(spec.n_genes, spec.n_specific, spec.specific_size, spec.seed);
    let cfg = |i: u64| GenConfig {
        noise_sd: spec.noise_sd,
        missing_fraction: spec.missing_fraction,
        seed: spec.seed.wrapping_mul(0x9E37).wrapping_add(i),
    };

    let mut jobs: Vec<Box<dyn FnOnce() -> Dataset + Send>> = Vec::new();
    {
        let t = truth.clone();
        let c = cfg(0);
        jobs.push(Box::new(move || stress_dataset("gasch_stress", &t, &c)));
    }
    {
        let t = truth.clone();
        let c = cfg(1);
        jobs.push(Box::new(move || {
            nutrient_limitation_dataset("brauer_nutrient", &t, &c)
        }));
    }
    {
        let t = truth.clone();
        let c = cfg(2);
        let n_ko = spec.conds_per_dataset.max(24);
        jobs.push(Box::new(move || {
            knockout_dataset("hughes_knockout", &t, n_ko, 0.3, &c)
        }));
    }
    for i in 3..spec.n_datasets {
        let t = truth.clone();
        let c = cfg(i as u64);
        let n_conds = spec.conds_per_dataset;
        jobs.push(Box::new(move || {
            generic_dataset(&format!("experiment_{i:03}"), &t, n_conds, &c)
        }));
    }

    let datasets: Vec<Dataset> = jobs.into_par_iter().map(|j| j()).collect();
    (datasets, truth)
}

/// Total present measurements across a compendium (the paper's
/// "quarter billion measurements" axis).
pub fn total_measurements(datasets: &[Dataset]) -> usize {
    datasets.iter().map(|d| d.n_measurements()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_names() {
        let spec = CompendiumSpec {
            n_genes: 300,
            n_datasets: 6,
            conds_per_dataset: 12,
            n_specific: 3,
            specific_size: 20,
            ..CompendiumSpec::default()
        };
        let (ds, truth) = generate_compendium(&spec);
        assert_eq!(ds.len(), 6);
        assert_eq!(ds[0].name, "gasch_stress");
        assert_eq!(ds[1].name, "brauer_nutrient");
        assert_eq!(ds[2].name, "hughes_knockout");
        assert_eq!(ds[3].name, "experiment_003");
        assert_eq!(truth.n_genes, 300);
        for d in &ds {
            assert_eq!(d.n_genes(), 300);
        }
    }

    #[test]
    fn deterministic() {
        let spec = CompendiumSpec {
            n_genes: 200,
            n_datasets: 4,
            ..CompendiumSpec::default()
        };
        let (a, _) = generate_compendium(&spec);
        let (b, _) = generate_compendium(&spec);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix, y.matrix, "dataset {} differs", x.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = CompendiumSpec {
            n_genes: 200,
            n_datasets: 3,
            seed: 1,
            ..CompendiumSpec::default()
        };
        let s2 = CompendiumSpec { seed: 2, ..s1 };
        let (a, _) = generate_compendium(&s1);
        let (b, _) = generate_compendium(&s2);
        assert_ne!(a[0].matrix, b[0].matrix);
    }

    #[test]
    fn measurement_count_tracks_missingness() {
        let spec = CompendiumSpec {
            n_genes: 200,
            n_datasets: 3,
            missing_fraction: 0.0,
            ..CompendiumSpec::default()
        };
        let (ds, _) = generate_compendium(&spec);
        let cells: usize = ds.iter().map(|d| d.n_genes() * d.n_conditions()).sum();
        assert_eq!(total_measurements(&ds), cells);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_datasets_panics() {
        let spec = CompendiumSpec {
            n_datasets: 2,
            ..CompendiumSpec::default()
        };
        let _ = generate_compendium(&spec);
    }
}
