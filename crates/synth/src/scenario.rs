//! Paper-scale scenario presets.
//!
//! Examples, integration tests and benches all need the same workloads;
//! defining them once keeps every experiment comparable and EXPERIMENTS.md
//! honest about what was run.

use crate::compendium::{generate_compendium, CompendiumSpec};
use crate::dataset::{knockout_dataset, nutrient_limitation_dataset, stress_dataset, GenConfig};
use crate::modules::{plant_modules, GroundTruth};
use fv_expr::Dataset;

/// A named workload: datasets plus the planted truth.
#[derive(Debug)]
pub struct Scenario {
    /// Scenario name (appears in EXPERIMENTS.md).
    pub name: String,
    /// The datasets.
    pub datasets: Vec<Dataset>,
    /// Planted ground truth.
    pub truth: GroundTruth,
}

impl Scenario {
    /// E2 / Figure 2: three datasets over a shared universe, sized for an
    /// interactive three-pane session. `n_genes` is typically 6 000 (the
    /// paper's lower dataset bound) but tests use smaller.
    pub fn three_datasets(n_genes: usize, seed: u64) -> Scenario {
        let truth = plant_modules(n_genes, 4, (n_genes / 60).max(10), seed);
        let cfg = |i: u64| GenConfig {
            noise_sd: 0.35,
            missing_fraction: 0.02,
            seed: seed.wrapping_add(i),
        };
        let datasets = vec![
            stress_dataset("gasch_stress", &truth, &cfg(0)),
            nutrient_limitation_dataset("brauer_nutrient", &truth, &cfg(1)),
            knockout_dataset("hughes_knockout", &truth, 48, 0.3, &cfg(2)),
        ];
        Scenario {
            name: format!("three_datasets_{n_genes}"),
            datasets,
            truth,
        }
    }

    /// §4 case study: the same three dataset families, with the knockout
    /// compendium's slow-grower fraction prominent so the "general stress
    /// response supersedes specific effects" signal is present to find.
    pub fn case_study(n_genes: usize, seed: u64) -> Scenario {
        let truth = plant_modules(n_genes, 4, (n_genes / 60).max(10), seed);
        let cfg = |i: u64| GenConfig {
            noise_sd: 0.3,
            missing_fraction: 0.02,
            seed: seed.wrapping_add(100 + i),
        };
        let datasets = vec![
            stress_dataset("gasch_stress", &truth, &cfg(0)),
            nutrient_limitation_dataset("brauer_nutrient", &truth, &cfg(1)),
            knockout_dataset("hughes_knockout", &truth, 60, 0.45, &cfg(2)),
        ];
        Scenario {
            name: format!("case_study_{n_genes}"),
            datasets,
            truth,
        }
    }

    /// E4 / Figure 4: a SPELL compendium of `n_datasets` datasets.
    pub fn spell_compendium(n_genes: usize, n_datasets: usize, seed: u64) -> Scenario {
        let spec = CompendiumSpec {
            n_genes,
            n_datasets,
            conds_per_dataset: 24,
            n_specific: 4,
            specific_size: (n_genes / 60).max(10),
            noise_sd: 0.35,
            missing_fraction: 0.02,
            seed,
        };
        let (datasets, truth) = generate_compendium(&spec);
        Scenario {
            name: format!("spell_{n_datasets}x{n_genes}"),
            datasets,
            truth,
        }
    }

    /// Total measurements across the scenario's datasets.
    pub fn total_measurements(&self) -> usize {
        self.datasets.iter().map(|d| d.n_measurements()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_datasets_preset() {
        let s = Scenario::three_datasets(300, 5);
        assert_eq!(s.datasets.len(), 3);
        assert!(s.datasets.iter().all(|d| d.n_genes() == 300));
        assert!(s.total_measurements() > 0);
    }

    #[test]
    fn case_study_preset_names() {
        let s = Scenario::case_study(300, 5);
        let names: Vec<&str> = s.datasets.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["gasch_stress", "brauer_nutrient", "hughes_knockout"]
        );
    }

    #[test]
    fn spell_compendium_preset() {
        let s = Scenario::spell_compendium(250, 5, 9);
        assert_eq!(s.datasets.len(), 5);
        assert_eq!(s.truth.n_genes, 250);
    }

    #[test]
    fn scenarios_deterministic() {
        let a = Scenario::three_datasets(200, 11);
        let b = Scenario::three_datasets(200, 11);
        assert_eq!(a.datasets[0].matrix, b.datasets[0].matrix);
        assert_eq!(a.datasets[2].matrix, b.datasets[2].matrix);
    }
}
