//! Dense `f32` expression matrix with an explicit missing-value bitmask.
//!
//! Microarray data is logically dense (every gene is measured in every
//! condition) but individual spots are frequently flagged or absent. We store
//! values row-major in one contiguous `Vec<f32>` and track presence in a
//! packed `u64` bitmask, which keeps row scans contiguous and lets statistics
//! skip missing cells exactly rather than relying on NaN arithmetic.

use crate::error::ExprError;

/// A dense genes × conditions matrix of expression values with per-cell
/// presence tracking.
///
/// Rows are genes, columns are conditions/arrays, matching the orientation of
/// PCL/CDT microarray files.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprMatrix {
    n_rows: usize,
    n_cols: usize,
    /// Row-major values; missing cells hold 0.0 but are masked out.
    data: Vec<f32>,
    /// Packed presence bits, one per cell, row-major. Bit set = present.
    mask: Vec<u64>,
}

#[inline]
fn mask_len(cells: usize) -> usize {
    cells.div_ceil(64)
}

impl ExprMatrix {
    /// Create a matrix of the given shape with every cell present and zero.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        let cells = n_rows * n_cols;
        let mut mask = vec![u64::MAX; mask_len(cells)];
        Self::trim_mask_tail(&mut mask, cells);
        ExprMatrix {
            n_rows,
            n_cols,
            data: vec![0.0; cells],
            mask,
        }
    }

    /// Create a matrix of the given shape with every cell missing.
    pub fn missing(n_rows: usize, n_cols: usize) -> Self {
        let cells = n_rows * n_cols;
        ExprMatrix {
            n_rows,
            n_cols,
            data: vec![0.0; cells],
            mask: vec![0; mask_len(cells)],
        }
    }

    /// Build from row-major values. Non-finite values (NaN/±inf) are recorded
    /// as missing, matching how PCL parsers treat blank or flagged spots.
    pub fn from_rows(n_rows: usize, n_cols: usize, values: &[f32]) -> Result<Self, ExprError> {
        let cells = n_rows * n_cols;
        if values.len() != cells {
            return Err(ExprError::ShapeMismatch(cells, values.len()));
        }
        let mut m = ExprMatrix::missing(n_rows, n_cols);
        for (i, &v) in values.iter().enumerate() {
            if v.is_finite() {
                m.data[i] = v;
                m.mask[i / 64] |= 1u64 << (i % 64);
            }
        }
        Ok(m)
    }

    /// Build from an iterator of rows, each a slice of optional values.
    pub fn from_option_rows(rows: &[Vec<Option<f32>>]) -> Result<Self, ExprError> {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        for (i, r) in rows.iter().enumerate() {
            if r.len() != n_cols {
                return Err(ExprError::ShapeMismatch(n_cols, rows[i].len()));
            }
        }
        let mut m = ExprMatrix::missing(n_rows, n_cols);
        for (r, row) in rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                if let Some(x) = v {
                    if x.is_finite() {
                        m.set(r, c, *x);
                    }
                }
            }
        }
        Ok(m)
    }

    fn trim_mask_tail(mask: &mut [u64], cells: usize) {
        if !cells.is_multiple_of(64) {
            if let Some(last) = mask.last_mut() {
                *last &= (1u64 << (cells % 64)) - 1;
            }
        }
    }

    /// Number of gene rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of condition columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Total number of cells (present or missing).
    #[inline]
    pub fn n_cells(&self) -> usize {
        self.n_rows * self.n_cols
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        r * self.n_cols + c
    }

    /// Whether the cell holds a measured value.
    #[inline]
    pub fn is_present(&self, r: usize, c: usize) -> bool {
        let i = self.idx(r, c);
        (self.mask[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The value at `(r, c)` if present.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if self.is_present(r, c) {
            Some(self.data[self.idx(r, c)])
        } else {
            None
        }
    }

    /// The raw stored value (0.0 for missing cells). Use only where the mask
    /// is consulted separately, e.g. vectorized kernels.
    #[inline]
    pub fn get_raw(&self, r: usize, c: usize) -> f32 {
        self.data[self.idx(r, c)]
    }

    /// Checked access returning an error on out-of-bounds indices.
    pub fn try_get(&self, r: usize, c: usize) -> Result<Option<f32>, ExprError> {
        if r >= self.n_rows {
            return Err(ExprError::RowOutOfBounds(r, self.n_rows));
        }
        if c >= self.n_cols {
            return Err(ExprError::ColOutOfBounds(c, self.n_cols));
        }
        Ok(self.get(r, c))
    }

    /// Store a value and mark the cell present. Non-finite input marks the
    /// cell missing instead.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let i = self.idx(r, c);
        if v.is_finite() {
            self.data[i] = v;
            self.mask[i / 64] |= 1u64 << (i % 64);
        } else {
            self.data[i] = 0.0;
            self.mask[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Mark the cell missing.
    #[inline]
    pub fn set_missing(&mut self, r: usize, c: usize) {
        let i = self.idx(r, c);
        self.data[i] = 0.0;
        self.mask[i / 64] &= !(1u64 << (i % 64));
    }

    /// Raw value slice for one row (missing cells read 0.0).
    #[inline]
    pub fn row_raw(&self, r: usize) -> &[f32] {
        &self.data[r * self.n_cols..(r + 1) * self.n_cols]
    }

    /// Iterator over `(col, value)` for the present cells of a row.
    pub fn present_in_row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let base = r * self.n_cols;
        (0..self.n_cols).filter_map(move |c| {
            let i = base + c;
            if (self.mask[i / 64] >> (i % 64)) & 1 == 1 {
                Some((c, self.data[i]))
            } else {
                None
            }
        })
    }

    /// Row as a vector of `Option<f32>`.
    pub fn row_options(&self, r: usize) -> Vec<Option<f32>> {
        (0..self.n_cols).map(|c| self.get(r, c)).collect()
    }

    /// Column as a vector of `Option<f32>`.
    pub fn col_options(&self, c: usize) -> Vec<Option<f32>> {
        (0..self.n_rows).map(|r| self.get(r, c)).collect()
    }

    /// Number of present cells in a row.
    pub fn present_in_row(&self, r: usize) -> usize {
        self.present_in_row_iter(r).count()
    }

    /// Number of present cells in the whole matrix.
    pub fn present_total(&self) -> usize {
        self.mask.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of cells missing, in `[0, 1]`. Empty matrices report 0.
    pub fn missing_fraction(&self) -> f64 {
        if self.n_cells() == 0 {
            return 0.0;
        }
        1.0 - self.present_total() as f64 / self.n_cells() as f64
    }

    /// A new matrix containing only the given rows, in the given order.
    /// Row indices may repeat; out-of-bounds indices are an error.
    pub fn select_rows(&self, rows: &[usize]) -> Result<ExprMatrix, ExprError> {
        for &r in rows {
            if r >= self.n_rows {
                return Err(ExprError::RowOutOfBounds(r, self.n_rows));
            }
        }
        let mut out = ExprMatrix::missing(rows.len(), self.n_cols);
        for (new_r, &old_r) in rows.iter().enumerate() {
            for (c, v) in self.present_in_row_iter(old_r) {
                out.set(new_r, c, v);
            }
        }
        Ok(out)
    }

    /// A new matrix containing only the given columns, in the given order.
    pub fn select_cols(&self, cols: &[usize]) -> Result<ExprMatrix, ExprError> {
        for &c in cols {
            if c >= self.n_cols {
                return Err(ExprError::ColOutOfBounds(c, self.n_cols));
            }
        }
        let mut out = ExprMatrix::missing(self.n_rows, cols.len());
        for r in 0..self.n_rows {
            for (new_c, &old_c) in cols.iter().enumerate() {
                if let Some(v) = self.get(r, old_c) {
                    out.set(r, new_c, v);
                }
            }
        }
        Ok(out)
    }

    /// Transposed copy (conditions become rows).
    pub fn transpose(&self) -> ExprMatrix {
        let mut out = ExprMatrix::missing(self.n_cols, self.n_rows);
        for r in 0..self.n_rows {
            for (c, v) in self.present_in_row_iter(r) {
                out.set(c, r, v);
            }
        }
        out
    }

    /// Apply a function to every present value in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for i in 0..self.data.len() {
            if (self.mask[i / 64] >> (i % 64)) & 1 == 1 {
                let v = f(self.data[i]);
                if v.is_finite() {
                    self.data[i] = v;
                } else {
                    self.data[i] = 0.0;
                    self.mask[i / 64] &= !(1u64 << (i % 64));
                }
            }
        }
    }

    /// Minimum and maximum over present values, if any cell is present.
    pub fn value_range(&self) -> Option<(f32, f32)> {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        let mut any = false;
        for r in 0..self.n_rows {
            for (_, v) in self.present_in_row_iter(r) {
                any = true;
                if v < lo {
                    lo = v;
                }
                if v > hi {
                    hi = v;
                }
            }
        }
        if any {
            Some((lo, hi))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_all_present() {
        let m = ExprMatrix::zeros(3, 5);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.n_cols(), 5);
        assert_eq!(m.present_total(), 15);
        assert_eq!(m.get(2, 4), Some(0.0));
    }

    #[test]
    fn missing_all_absent() {
        let m = ExprMatrix::missing(2, 2);
        assert_eq!(m.present_total(), 0);
        assert_eq!(m.get(0, 0), None);
        assert!((m.missing_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = ExprMatrix::missing(4, 4);
        m.set(1, 2, 3.25);
        assert_eq!(m.get(1, 2), Some(3.25));
        assert_eq!(m.get(2, 1), None);
        m.set_missing(1, 2);
        assert_eq!(m.get(1, 2), None);
    }

    #[test]
    fn set_nan_marks_missing() {
        let mut m = ExprMatrix::zeros(1, 2);
        m.set(0, 0, f32::NAN);
        m.set(0, 1, f32::INFINITY);
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.get(0, 1), None);
    }

    #[test]
    fn from_rows_respects_shape() {
        let err = ExprMatrix::from_rows(2, 3, &[1.0; 5]).unwrap_err();
        assert_eq!(err, ExprError::ShapeMismatch(6, 5));
        let m = ExprMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.get(1, 2), Some(6.0));
    }

    #[test]
    fn from_rows_nan_becomes_missing() {
        let m = ExprMatrix::from_rows(1, 3, &[1.0, f32::NAN, 3.0]).unwrap();
        assert_eq!(m.present_in_row(0), 2);
        assert_eq!(m.get(0, 1), None);
    }

    #[test]
    fn from_option_rows_builds() {
        let rows = vec![vec![Some(1.0), None], vec![None, Some(4.0)]];
        let m = ExprMatrix::from_option_rows(&rows).unwrap();
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(1, 1), Some(4.0));
    }

    #[test]
    fn from_option_rows_ragged_is_error() {
        let rows = vec![vec![Some(1.0)], vec![Some(1.0), Some(2.0)]];
        assert!(ExprMatrix::from_option_rows(&rows).is_err());
    }

    #[test]
    fn try_get_bounds() {
        let m = ExprMatrix::zeros(2, 2);
        assert_eq!(m.try_get(5, 0), Err(ExprError::RowOutOfBounds(5, 2)));
        assert_eq!(m.try_get(0, 5), Err(ExprError::ColOutOfBounds(5, 2)));
        assert_eq!(m.try_get(1, 1), Ok(Some(0.0)));
    }

    #[test]
    fn present_iter_skips_missing() {
        let mut m = ExprMatrix::zeros(1, 4);
        m.set_missing(0, 1);
        m.set(0, 2, 7.0);
        let cells: Vec<(usize, f32)> = m.present_in_row_iter(0).collect();
        assert_eq!(cells, vec![(0, 0.0), (2, 7.0), (3, 0.0)]);
    }

    #[test]
    fn select_rows_reorders_and_repeats() {
        let m = ExprMatrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = m.select_rows(&[2, 0, 2]).unwrap();
        assert_eq!(s.n_rows(), 3);
        assert_eq!(s.get(0, 0), Some(5.0));
        assert_eq!(s.get(1, 1), Some(2.0));
        assert_eq!(s.get(2, 0), Some(5.0));
    }

    #[test]
    fn select_rows_oob() {
        let m = ExprMatrix::zeros(2, 2);
        assert!(m.select_rows(&[0, 2]).is_err());
    }

    #[test]
    fn select_cols_preserves_mask() {
        let mut m = ExprMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        m.set_missing(0, 2);
        let s = m.select_cols(&[2, 1]).unwrap();
        assert_eq!(s.get(0, 0), None);
        assert_eq!(s.get(0, 1), Some(2.0));
        assert_eq!(s.get(1, 0), Some(6.0));
    }

    #[test]
    fn transpose_roundtrip() {
        let mut m = ExprMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        m.set_missing(1, 0);
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(0, 1), None);
        assert_eq!(t.get(2, 0), Some(3.0));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn map_in_place_only_touches_present() {
        let mut m = ExprMatrix::from_rows(1, 3, &[1.0, 2.0, 3.0]).unwrap();
        m.set_missing(0, 1);
        m.map_in_place(|v| v * 2.0);
        assert_eq!(m.get(0, 0), Some(2.0));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(0, 2), Some(6.0));
    }

    #[test]
    fn map_in_place_nan_result_becomes_missing() {
        let mut m = ExprMatrix::from_rows(1, 2, &[0.0, 4.0]).unwrap();
        m.map_in_place(|v| v.ln());
        assert_eq!(m.get(0, 0), None); // ln(0) = -inf
        assert!(m.get(0, 1).is_some());
    }

    #[test]
    fn value_range_over_present() {
        let mut m = ExprMatrix::from_rows(2, 2, &[-3.0, 9.0, 2.0, 5.0]).unwrap();
        m.set_missing(0, 1); // exclude the 9.0
        assert_eq!(m.value_range(), Some((-3.0, 5.0)));
        assert_eq!(ExprMatrix::missing(2, 2).value_range(), None);
    }

    #[test]
    fn mask_tail_is_trimmed() {
        // 3 cells < one u64 word: the tail bits beyond cell count must be 0
        // so present_total is exact.
        let m = ExprMatrix::zeros(1, 3);
        assert_eq!(m.present_total(), 3);
    }

    #[test]
    fn large_matrix_mask_word_boundaries() {
        let mut m = ExprMatrix::zeros(3, 43); // 129 cells spans >2 words
        assert_eq!(m.present_total(), 129);
        m.set_missing(1, 21); // cell 64 exactly
        assert_eq!(m.present_total(), 128);
        assert!(!m.is_present(1, 21));
        assert!(m.is_present(1, 20));
    }
}
