//! A named expression dataset: matrix + gene/condition metadata.
//!
//! One `Dataset` is what ForestView shows as a single vertical pane
//! (Figure 2): a global heatmap of every gene, a zoom view of the current
//! selection, and annotation columns drawn from [`GeneMeta`].

use crate::error::ExprError;
use crate::matrix::ExprMatrix;
use crate::meta::{ConditionMeta, GeneMeta};

/// A named microarray dataset with per-row and per-column metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name, e.g. `gasch_stress` — shown as the pane title.
    pub name: String,
    /// Expression values, genes × conditions.
    pub matrix: ExprMatrix,
    /// Per-gene metadata, length `matrix.n_rows()`.
    pub genes: Vec<GeneMeta>,
    /// Per-condition metadata, length `matrix.n_cols()`.
    pub conditions: Vec<ConditionMeta>,
}

impl Dataset {
    /// Assemble a dataset, validating that metadata lengths agree with the
    /// matrix shape.
    pub fn new(
        name: impl Into<String>,
        matrix: ExprMatrix,
        genes: Vec<GeneMeta>,
        conditions: Vec<ConditionMeta>,
    ) -> Result<Self, ExprError> {
        if genes.len() != matrix.n_rows() {
            return Err(ExprError::MetaMismatch {
                what: "genes",
                expected: matrix.n_rows(),
                actual: genes.len(),
            });
        }
        if conditions.len() != matrix.n_cols() {
            return Err(ExprError::MetaMismatch {
                what: "conditions",
                expected: matrix.n_cols(),
                actual: conditions.len(),
            });
        }
        Ok(Dataset {
            name: name.into(),
            matrix,
            genes,
            conditions,
        })
    }

    /// Build a dataset from a matrix, synthesizing id-only gene metadata
    /// (`G0`, `G1`, ...) and numbered condition labels. Convenient in tests.
    pub fn with_default_meta(name: impl Into<String>, matrix: ExprMatrix) -> Self {
        let genes = (0..matrix.n_rows())
            .map(|r| GeneMeta::id_only(format!("G{r}")))
            .collect();
        let conditions = (0..matrix.n_cols())
            .map(|c| ConditionMeta::new(format!("cond{c}")))
            .collect();
        Dataset {
            name: name.into(),
            matrix,
            genes,
            conditions,
        }
    }

    /// Number of gene rows.
    pub fn n_genes(&self) -> usize {
        self.matrix.n_rows()
    }

    /// Number of condition columns.
    pub fn n_conditions(&self) -> usize {
        self.matrix.n_cols()
    }

    /// Total measurements (present cells).
    pub fn n_measurements(&self) -> usize {
        self.matrix.present_total()
    }

    /// Row index of the gene with the given id or common name
    /// (exact, case-insensitive).
    pub fn find_gene(&self, id_or_name: &str) -> Option<usize> {
        self.genes.iter().position(|g| g.matches_exact(id_or_name))
    }

    /// Row indices of genes whose metadata contains `query` (substring,
    /// case-insensitive) — the per-dataset half of ForestView's search.
    pub fn search_genes(&self, query: &str) -> Vec<usize> {
        self.genes
            .iter()
            .enumerate()
            .filter(|(_, g)| g.matches(query))
            .map(|(r, _)| r)
            .collect()
    }

    /// A new dataset containing only the given rows, in order. This is the
    /// "load an exported selection back in as a dataset" operation from the
    /// paper (Section 2).
    pub fn subset_rows(
        &self,
        rows: &[usize],
        name: impl Into<String>,
    ) -> Result<Dataset, ExprError> {
        let matrix = self.matrix.select_rows(rows)?;
        let genes = rows.iter().map(|&r| self.genes[r].clone()).collect();
        Ok(Dataset {
            name: name.into(),
            matrix,
            genes,
            conditions: self.conditions.clone(),
        })
    }

    /// Condition labels as plain strings, in column order.
    pub fn condition_labels(&self) -> Vec<&str> {
        self.conditions.iter().map(|c| c.label.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let m = ExprMatrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let genes = vec![
            GeneMeta::new("YAL001C", "TFC3", "transcription factor"),
            GeneMeta::new("YAL005C", "SSA1", "chaperone ATPase"),
            GeneMeta::new("YBR072W", "HSP26", "small heat shock protein"),
        ];
        let conds = vec![
            ConditionMeta::new("heat 15m"),
            ConditionMeta::new("heat 30m"),
        ];
        Dataset::new("stress", m, genes, conds).unwrap()
    }

    #[test]
    fn new_validates_gene_meta_len() {
        let m = ExprMatrix::zeros(2, 2);
        let err = Dataset::new(
            "x",
            m,
            vec![GeneMeta::id_only("a")],
            vec![ConditionMeta::new("c0"), ConditionMeta::new("c1")],
        )
        .unwrap_err();
        assert!(matches!(err, ExprError::MetaMismatch { what: "genes", .. }));
    }

    #[test]
    fn new_validates_condition_meta_len() {
        let m = ExprMatrix::zeros(1, 2);
        let err = Dataset::new(
            "x",
            m,
            vec![GeneMeta::id_only("a")],
            vec![ConditionMeta::new("c0")],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExprError::MetaMismatch {
                what: "conditions",
                ..
            }
        ));
    }

    #[test]
    fn default_meta_shapes() {
        let d = Dataset::with_default_meta("t", ExprMatrix::zeros(4, 3));
        assert_eq!(d.n_genes(), 4);
        assert_eq!(d.n_conditions(), 3);
        assert_eq!(d.genes[2].id, "G2");
        assert_eq!(d.conditions[1].label, "cond1");
    }

    #[test]
    fn find_gene_by_id_and_name() {
        let d = sample();
        assert_eq!(d.find_gene("YAL005C"), Some(1));
        assert_eq!(d.find_gene("ssa1"), Some(1));
        assert_eq!(d.find_gene("HSP26"), Some(2));
        assert_eq!(d.find_gene("nope"), None);
    }

    #[test]
    fn search_genes_substring() {
        let d = sample();
        assert_eq!(d.search_genes("heat shock"), vec![2]);
        assert_eq!(d.search_genes("YAL"), vec![0, 1]);
        assert!(d.search_genes("zzz").is_empty());
    }

    #[test]
    fn subset_rows_carries_meta() {
        let d = sample();
        let s = d.subset_rows(&[2, 0], "picked").unwrap();
        assert_eq!(s.name, "picked");
        assert_eq!(s.n_genes(), 2);
        assert_eq!(s.genes[0].name, "HSP26");
        assert_eq!(s.genes[1].name, "TFC3");
        assert_eq!(s.matrix.get(0, 0), Some(5.0));
        assert_eq!(s.n_conditions(), 2);
    }

    #[test]
    fn subset_rows_oob_is_error() {
        let d = sample();
        assert!(d.subset_rows(&[9], "bad").is_err());
    }

    #[test]
    fn n_measurements_counts_present() {
        let mut d = sample();
        assert_eq!(d.n_measurements(), 6);
        d.matrix.set_missing(0, 0);
        assert_eq!(d.n_measurements(), 5);
    }

    #[test]
    fn condition_labels_in_order() {
        let d = sample();
        assert_eq!(d.condition_labels(), vec!["heat 15m", "heat 30m"]);
    }
}
