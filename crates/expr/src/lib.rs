//! # fv-expr — expression-matrix substrate for ForestView
//!
//! This crate implements the data layer at the bottom of Figure 1 of
//! *Scalable, Dynamic Analysis and Visualization for Genomic Datasets*
//! (Wallace et al., IPPS 2007): the individual microarray datasets and the
//! **merged dataset interface** that presents many datasets as one logical
//! three-dimensional array (`dataset × gene × condition`) so that analysis
//! routines can operate across all datasets uniformly.
//!
//! ## Contents
//!
//! - [`matrix::ExprMatrix`] — dense `f32` expression matrix with an explicit
//!   missing-value bitmask (microarray data is dense with sporadic missing
//!   spots; a mask keeps statistics exact without NaN propagation hazards).
//! - [`meta`] — gene and condition metadata (names, annotations, weights).
//! - [`dataset::Dataset`] — a named matrix plus metadata; the unit the
//!   ForestView UI shows as one vertical pane.
//! - [`universe::GeneUniverse`] — a gene-name interner assigning stable
//!   [`universe::GeneId`]s so selections and searches cross datasets in O(1).
//! - [`merged::MergedDatasets`] — the 3-D merged interface of Figure 1.
//! - [`stats`] — Welford moments, Pearson/Spearman correlation, ranking.
//! - [`normalize`] — log-transform, centering, z-scoring.
//! - [`view`] — lightweight row/column views and row-subset submatrices.
//!
//! ## Example
//!
//! ```
//! use fv_expr::prelude::*;
//!
//! let mut m = ExprMatrix::zeros(2, 3);
//! m.set(0, 0, 1.0);
//! m.set(0, 1, 2.0);
//! m.set(0, 2, 3.0);
//! m.set_missing(1, 1);
//! assert_eq!(m.present_in_row(0), 3);
//! assert_eq!(m.present_in_row(1), 2);
//! ```

#![forbid(unsafe_code)]

pub mod dataset;
pub mod error;
pub mod matrix;
pub mod merged;
pub mod meta;
pub mod normalize;
pub mod stats;
pub mod universe;
pub mod view;

pub use dataset::Dataset;
pub use error::ExprError;
pub use matrix::ExprMatrix;
pub use merged::MergedDatasets;
pub use meta::{ConditionMeta, GeneMeta};
pub use universe::{GeneId, GeneUniverse};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::dataset::Dataset;
    pub use crate::error::ExprError;
    pub use crate::matrix::ExprMatrix;
    pub use crate::merged::MergedDatasets;
    pub use crate::meta::{ConditionMeta, GeneMeta};
    pub use crate::stats;
    pub use crate::universe::{GeneId, GeneUniverse};
    pub use crate::view::{RowView, SubMatrix};
}
