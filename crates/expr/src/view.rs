//! Lightweight read-only views over expression matrices.
//!
//! The visualization layers never copy expression data: global and zoom
//! painters walk [`RowView`]s, and a [`SubMatrix`] presents an arbitrary
//! ordered subset of rows (a selection, or a synchronized gene ordering)
//! without materializing it.

use crate::matrix::ExprMatrix;

/// Read-only view of one matrix row.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    matrix: &'a ExprMatrix,
    row: usize,
}

impl<'a> RowView<'a> {
    /// View of row `row` in `matrix`. Panics if out of bounds.
    pub fn new(matrix: &'a ExprMatrix, row: usize) -> Self {
        assert!(row < matrix.n_rows(), "row {row} out of bounds");
        RowView { matrix, row }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.matrix.n_cols()
    }

    /// Whether the row has zero columns.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at column `c` if present.
    #[inline]
    pub fn get(&self, c: usize) -> Option<f32> {
        self.matrix.get(self.row, c)
    }

    /// Underlying row index.
    pub fn row_index(&self) -> usize {
        self.row
    }

    /// Iterator over all columns as options.
    pub fn iter(&self) -> impl Iterator<Item = Option<f32>> + 'a {
        let m = self.matrix;
        let r = self.row;
        (0..m.n_cols()).map(move |c| m.get(r, c))
    }
}

/// An ordered subset of rows of a parent matrix, by reference.
///
/// Row order is significant: this is how a synchronized gene ordering is
/// presented to each dataset pane. Genes absent from the parent dataset are
/// representable as gaps ([`SubMatrix::from_optional_rows`]), rendering as
/// blank rows so synchronized panes stay row-aligned across datasets.
#[derive(Debug, Clone)]
pub struct SubMatrix<'a> {
    parent: &'a ExprMatrix,
    /// For each view row: `Some(parent_row)` or `None` for an alignment gap.
    rows: Vec<Option<u32>>,
}

impl<'a> SubMatrix<'a> {
    /// View of the given parent rows, in order. Panics on out-of-bounds.
    pub fn new(parent: &'a ExprMatrix, rows: &[usize]) -> Self {
        for &r in rows {
            assert!(r < parent.n_rows(), "row {r} out of bounds");
        }
        SubMatrix {
            parent,
            rows: rows.iter().map(|&r| Some(r as u32)).collect(),
        }
    }

    /// View where some positions are gaps (gene not measured here).
    pub fn from_optional_rows(parent: &'a ExprMatrix, rows: Vec<Option<u32>>) -> Self {
        for r in rows.iter().flatten() {
            assert!((*r as usize) < parent.n_rows(), "row {r} out of bounds");
        }
        SubMatrix { parent, rows }
    }

    /// Number of view rows (including gaps).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (same as parent).
    pub fn n_cols(&self) -> usize {
        self.parent.n_cols()
    }

    /// Whether view row `r` is an alignment gap.
    pub fn is_gap(&self, r: usize) -> bool {
        self.rows[r].is_none()
    }

    /// Parent row index behind view row `r`, unless it is a gap.
    pub fn parent_row(&self, r: usize) -> Option<usize> {
        self.rows[r].map(|x| x as usize)
    }

    /// Value at `(r, c)`; `None` for gaps and missing cells alike.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        match self.rows[r] {
            Some(pr) => self.parent.get(pr as usize, c),
            None => None,
        }
    }

    /// Materialize the view into an owned matrix (gaps become missing rows).
    pub fn to_matrix(&self) -> ExprMatrix {
        let mut out = ExprMatrix::missing(self.n_rows(), self.n_cols());
        for r in 0..self.n_rows() {
            if let Some(pr) = self.rows[r] {
                for (c, v) in self.parent.present_in_row_iter(pr as usize) {
                    out.set(r, c, v);
                }
            }
        }
        out
    }

    /// Count of non-gap rows.
    pub fn n_real_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat() -> ExprMatrix {
        ExprMatrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn rowview_reads_through() {
        let m = mat();
        let v = RowView::new(&m, 1);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), Some(3.0));
        assert_eq!(v.get(1), Some(4.0));
        assert_eq!(v.row_index(), 1);
    }

    #[test]
    fn rowview_iter_collects() {
        let mut m = mat();
        m.set_missing(0, 1);
        let v = RowView::new(&m, 0);
        let vals: Vec<Option<f32>> = v.iter().collect();
        assert_eq!(vals, vec![Some(1.0), None]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rowview_oob_panics() {
        let m = mat();
        let _ = RowView::new(&m, 5);
    }

    #[test]
    fn submatrix_orders_rows() {
        let m = mat();
        let s = SubMatrix::new(&m, &[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.get(0, 0), Some(5.0));
        assert_eq!(s.get(1, 1), Some(2.0));
        assert_eq!(s.parent_row(0), Some(2));
    }

    #[test]
    fn submatrix_gaps_read_none() {
        let m = mat();
        let s = SubMatrix::from_optional_rows(&m, vec![Some(0), None, Some(2)]);
        assert!(s.is_gap(1));
        assert_eq!(s.get(1, 0), None);
        assert_eq!(s.get(2, 1), Some(6.0));
        assert_eq!(s.n_real_rows(), 2);
    }

    #[test]
    fn submatrix_to_matrix_materializes() {
        let m = mat();
        let s = SubMatrix::from_optional_rows(&m, vec![Some(1), None]);
        let o = s.to_matrix();
        assert_eq!(o.n_rows(), 2);
        assert_eq!(o.get(0, 0), Some(3.0));
        assert_eq!(o.get(1, 0), None);
        assert_eq!(o.present_in_row(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn submatrix_oob_panics() {
        let m = mat();
        let _ = SubMatrix::new(&m, &[3]);
    }
}
