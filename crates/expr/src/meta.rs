//! Gene and condition metadata.
//!
//! PCL/CDT microarray files carry, per gene row, a unique identifier
//! (e.g. the systematic ORF name `YAL005C`), a human-readable name
//! (`SSA1`), a free-text annotation (`cytoplasmic ATPase chaperone ...`),
//! and an optional weight; per condition column they carry a label
//! (`heat shock 15 min`). ForestView's annotation search (Figure 2's
//! "Find Genes by name" box) matches against all of these.

/// Metadata for one gene row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GeneMeta {
    /// Unique systematic identifier, e.g. `YAL005C`.
    pub id: String,
    /// Common name, e.g. `SSA1`. May be empty.
    pub name: String,
    /// Free-text annotation / description. May be empty.
    pub annotation: String,
    /// Gene weight (the PCL `GWEIGHT` column); defaults to 1.
    pub weight: f32,
}

impl GeneMeta {
    /// Convenience constructor with weight 1.
    pub fn new(
        id: impl Into<String>,
        name: impl Into<String>,
        annotation: impl Into<String>,
    ) -> Self {
        GeneMeta {
            id: id.into(),
            name: name.into(),
            annotation: annotation.into(),
            weight: 1.0,
        }
    }

    /// Minimal metadata carrying only the systematic id.
    pub fn id_only(id: impl Into<String>) -> Self {
        let id = id.into();
        GeneMeta {
            name: String::new(),
            annotation: String::new(),
            weight: 1.0,
            id,
        }
    }

    /// Case-insensitive match of `query` against id, name or annotation.
    ///
    /// This is the matching rule behind ForestView's cross-dataset gene
    /// search: a query hits if it is a substring of any metadata field.
    pub fn matches(&self, query: &str) -> bool {
        if query.is_empty() {
            return false;
        }
        let q = query.to_ascii_lowercase();
        self.id.to_ascii_lowercase().contains(&q)
            || self.name.to_ascii_lowercase().contains(&q)
            || self.annotation.to_ascii_lowercase().contains(&q)
    }

    /// Exact (case-insensitive) match against id or name, used when a
    /// search term must denote a single gene rather than a family.
    pub fn matches_exact(&self, query: &str) -> bool {
        self.id.eq_ignore_ascii_case(query)
            || (!self.name.is_empty() && self.name.eq_ignore_ascii_case(query))
    }

    /// Display label: the common name when present, otherwise the id.
    pub fn label(&self) -> &str {
        if self.name.is_empty() {
            &self.id
        } else {
            &self.name
        }
    }
}

/// Metadata for one condition (array) column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConditionMeta {
    /// Column label, e.g. `heat shock 15 min`.
    pub label: String,
    /// Condition weight (the PCL `EWEIGHT` row); defaults to 1.
    pub weight: f32,
}

impl ConditionMeta {
    /// Convenience constructor with weight 1.
    pub fn new(label: impl Into<String>) -> Self {
        ConditionMeta {
            label: label.into(),
            weight: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_default_weight() {
        let g = GeneMeta::new("YAL005C", "SSA1", "chaperone");
        assert_eq!(g.weight, 1.0);
        assert_eq!(g.id, "YAL005C");
    }

    #[test]
    fn matches_any_field_case_insensitive() {
        let g = GeneMeta::new("YAL005C", "SSA1", "cytoplasmic ATPase chaperone");
        assert!(g.matches("yal005c"));
        assert!(g.matches("ssa"));
        assert!(g.matches("ATPASE"));
        assert!(!g.matches("ribosome"));
    }

    #[test]
    fn empty_query_never_matches() {
        let g = GeneMeta::new("YAL005C", "SSA1", "x");
        assert!(!g.matches(""));
    }

    #[test]
    fn matches_exact_id_or_name() {
        let g = GeneMeta::new("YAL005C", "SSA1", "chaperone");
        assert!(g.matches_exact("yal005c"));
        assert!(g.matches_exact("SSA1"));
        assert!(!g.matches_exact("SSA")); // substring is not exact
    }

    #[test]
    fn matches_exact_ignores_empty_name() {
        let g = GeneMeta::id_only("YBR001W");
        assert!(!g.matches_exact(""));
        assert!(g.matches_exact("ybr001w"));
    }

    #[test]
    fn label_prefers_common_name() {
        let g = GeneMeta::new("YAL005C", "SSA1", "");
        assert_eq!(g.label(), "SSA1");
        let g2 = GeneMeta::id_only("YAL005C");
        assert_eq!(g2.label(), "YAL005C");
    }

    #[test]
    fn condition_meta_new() {
        let c = ConditionMeta::new("heat 15m");
        assert_eq!(c.label, "heat 15m");
        assert_eq!(c.weight, 1.0);
    }
}
