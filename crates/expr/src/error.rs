//! Error type shared by the expression-data substrate.

use std::fmt;

/// Errors produced by expression-matrix construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// Row index out of bounds: `(index, n_rows)`.
    RowOutOfBounds(usize, usize),
    /// Column index out of bounds: `(index, n_cols)`.
    ColOutOfBounds(usize, usize),
    /// A constructor was handed data whose length disagrees with the
    /// requested shape: `(expected, actual)`.
    ShapeMismatch(usize, usize),
    /// Metadata length disagrees with the matrix dimension it describes.
    MetaMismatch {
        /// What the metadata describes ("genes" or "conditions").
        what: &'static str,
        /// Matrix dimension.
        expected: usize,
        /// Metadata length.
        actual: usize,
    },
    /// A dataset with this name is already registered in a merged view.
    DuplicateDataset(String),
    /// Operation requires at least one dataset / row / column.
    Empty(&'static str),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::RowOutOfBounds(i, n) => {
                write!(f, "row index {i} out of bounds for {n} rows")
            }
            ExprError::ColOutOfBounds(i, n) => {
                write!(f, "column index {i} out of bounds for {n} columns")
            }
            ExprError::ShapeMismatch(exp, act) => {
                write!(f, "shape mismatch: expected {exp} values, got {act}")
            }
            ExprError::MetaMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "metadata mismatch for {what}: matrix has {expected}, metadata has {actual}"
            ),
            ExprError::DuplicateDataset(name) => {
                write!(f, "dataset {name:?} already registered")
            }
            ExprError::Empty(what) => write!(f, "operation requires non-empty {what}"),
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_row_oob() {
        let e = ExprError::RowOutOfBounds(7, 3);
        assert_eq!(e.to_string(), "row index 7 out of bounds for 3 rows");
    }

    #[test]
    fn display_col_oob() {
        let e = ExprError::ColOutOfBounds(9, 2);
        assert_eq!(e.to_string(), "column index 9 out of bounds for 2 columns");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = ExprError::ShapeMismatch(6, 5);
        assert!(e.to_string().contains("expected 6"));
        assert!(e.to_string().contains("got 5"));
    }

    #[test]
    fn display_meta_mismatch() {
        let e = ExprError::MetaMismatch {
            what: "genes",
            expected: 10,
            actual: 9,
        };
        assert!(e.to_string().contains("genes"));
    }

    #[test]
    fn display_duplicate_dataset() {
        let e = ExprError::DuplicateDataset("gasch".into());
        assert!(e.to_string().contains("gasch"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ExprError::Empty("datasets"));
    }
}
