//! Normalization transforms applied before clustering, search and display.
//!
//! These mirror the preprocessing stack microarray pipelines applied before
//! data reached Java TreeView / ForestView: log-ratio transform, per-gene
//! centering, and z-scoring. SPELL additionally requires per-gene unit
//! variance within each dataset so correlations are comparable across
//! datasets; [`zscore_rows`] provides that.

use crate::matrix::ExprMatrix;
use crate::stats::{self, Welford};
use rayon::prelude::*;

/// log2-transform every present value. Values ≤ 0 become missing
/// (their logarithm is undefined), matching Cluster 3.0 behaviour.
pub fn log2_transform(m: &mut ExprMatrix) {
    m.map_in_place(|v| if v > 0.0 { v.log2() } else { f32::NAN });
}

/// Subtract each row's mean from its present values.
pub fn mean_center_rows(m: &mut ExprMatrix) {
    for r in 0..m.n_rows() {
        if let Some(mean) = stats::row_mean(m, r) {
            let mean = mean as f32;
            let cols: Vec<(usize, f32)> = m.present_in_row_iter(r).collect();
            for (c, v) in cols {
                m.set(r, c, v - mean);
            }
        }
    }
}

/// Subtract each row's median from its present values (the default
/// "center genes" operation in Cluster 3.0).
pub fn median_center_rows(m: &mut ExprMatrix) {
    for r in 0..m.n_rows() {
        if let Some(med) = stats::row_median(m, r) {
            let cols: Vec<(usize, f32)> = m.present_in_row_iter(r).collect();
            for (c, v) in cols {
                m.set(r, c, v - med);
            }
        }
    }
}

/// Z-score each row: subtract the row mean and divide by the row sample
/// standard deviation. Rows with zero variance (or <2 present values) are
/// centered only. Parallelized over row blocks with rayon — this transform
/// runs over every dataset of a compendium when a SPELL index is built.
pub fn zscore_rows(m: &mut ExprMatrix) {
    let n_cols = m.n_cols();
    // Compute per-row (mean, std) first to avoid borrowing conflicts.
    let params: Vec<(f64, f64)> = (0..m.n_rows())
        .into_par_iter()
        .map(|r| {
            let w = row_welford(m, r);
            (w.mean(), w.stddev_sample())
        })
        .collect();
    for r in 0..m.n_rows() {
        let (mean, sd) = params[r];
        let cols: Vec<(usize, f32)> = m.present_in_row_iter(r).collect();
        if cols.is_empty() {
            continue;
        }
        for (c, v) in cols {
            let centered = v as f64 - mean;
            let z = if sd > 0.0 { centered / sd } else { centered };
            m.set(r, c, z as f32);
        }
    }
    debug_assert_eq!(m.n_cols(), n_cols);
}

fn row_welford(m: &ExprMatrix, r: usize) -> Welford {
    let mut w = Welford::new();
    for (_, v) in m.present_in_row_iter(r) {
        w.push(v as f64);
    }
    w
}

/// Z-score each column (condition), used when conditions rather than genes
/// must be comparable (array-side clustering).
pub fn zscore_cols(m: &mut ExprMatrix) {
    let mut t = m.transpose();
    zscore_rows(&mut t);
    *m = t.transpose();
}

/// Rescale all present values linearly so the full matrix range maps onto
/// `[lo, hi]`. No-op for empty or constant matrices.
pub fn rescale_to(m: &mut ExprMatrix, lo: f32, hi: f32) {
    if let Some((vmin, vmax)) = m.value_range() {
        let span = vmax - vmin;
        if span <= 0.0 {
            return;
        }
        let scale = (hi - lo) / span;
        m.map_in_place(|v| lo + (v - vmin) * scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> ExprMatrix {
        ExprMatrix::from_rows(rows, cols, v).unwrap()
    }

    #[test]
    fn log2_positive_values() {
        let mut m = mat(1, 3, &[1.0, 2.0, 8.0]);
        log2_transform(&mut m);
        assert_eq!(m.get(0, 0), Some(0.0));
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(0, 2), Some(3.0));
    }

    #[test]
    fn log2_nonpositive_becomes_missing() {
        let mut m = mat(1, 3, &[0.0, -1.0, 4.0]);
        log2_transform(&mut m);
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(0, 2), Some(2.0));
    }

    #[test]
    fn mean_center_makes_zero_mean() {
        let mut m = mat(2, 3, &[1.0, 2.0, 3.0, 10.0, 20.0, 30.0]);
        mean_center_rows(&mut m);
        for r in 0..2 {
            let mean = stats::row_mean(&m, r).unwrap();
            assert!(mean.abs() < 1e-6, "row {r} mean {mean}");
        }
    }

    #[test]
    fn median_center_makes_zero_median() {
        let mut m = mat(1, 5, &[5.0, 1.0, 9.0, 3.0, 7.0]);
        median_center_rows(&mut m);
        assert_eq!(stats::row_median(&m, 0), Some(0.0));
    }

    #[test]
    fn center_skips_missing_rows() {
        let mut m = ExprMatrix::missing(2, 3);
        m.set(0, 0, 4.0);
        m.set(0, 1, 6.0);
        mean_center_rows(&mut m);
        assert_eq!(m.get(0, 0), Some(-1.0));
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.present_in_row(1), 0); // untouched
    }

    #[test]
    fn zscore_rows_unit_variance() {
        let mut m = mat(1, 4, &[2.0, 4.0, 6.0, 8.0]);
        zscore_rows(&mut m);
        let w = stats::row_moments(&m, 0);
        assert!(w.mean().abs() < 1e-6);
        assert!((w.variance_sample() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zscore_constant_row_centers_only() {
        let mut m = mat(1, 3, &[5.0, 5.0, 5.0]);
        zscore_rows(&mut m);
        for c in 0..3 {
            assert_eq!(m.get(0, c), Some(0.0));
        }
    }

    #[test]
    fn zscore_preserves_missing_pattern() {
        let mut m = mat(2, 4, &[1.0, 2.0, 3.0, 4.0, 1.0, 1.0, 2.0, 2.0]);
        m.set_missing(0, 2);
        zscore_rows(&mut m);
        assert_eq!(m.get(0, 2), None);
        assert_eq!(m.present_in_row(0), 3);
    }

    #[test]
    fn zscore_cols_unit_variance_per_col() {
        let mut m = mat(4, 2, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        zscore_cols(&mut m);
        let t = m.transpose();
        for c in 0..2 {
            let w = stats::row_moments(&t, c);
            assert!(w.mean().abs() < 1e-6);
            assert!((w.variance_sample() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn rescale_maps_range() {
        let mut m = mat(1, 3, &[-2.0, 0.0, 2.0]);
        rescale_to(&mut m, 0.0, 1.0);
        assert_eq!(m.get(0, 0), Some(0.0));
        assert_eq!(m.get(0, 1), Some(0.5));
        assert_eq!(m.get(0, 2), Some(1.0));
    }

    #[test]
    fn rescale_constant_noop() {
        let mut m = mat(1, 2, &[3.0, 3.0]);
        rescale_to(&mut m, 0.0, 1.0);
        assert_eq!(m.get(0, 0), Some(3.0));
    }

    #[test]
    fn zscore_large_parallel_consistent() {
        // The rayon-parallel z-score must equal a serial reference.
        let n = 500;
        let cols = 37;
        let vals: Vec<f32> = (0..n * cols)
            .map(|i| ((i * 31 % 97) as f32) * 0.1)
            .collect();
        let mut a = mat(n, cols, &vals);
        let mut b = a.clone();
        zscore_rows(&mut a);
        // serial reference
        for r in 0..n {
            let w = stats::row_moments(&b, r);
            let (mean, sd) = (w.mean(), w.stddev_sample());
            let cs: Vec<(usize, f32)> = b.present_in_row_iter(r).collect();
            for (c, v) in cs {
                let z = if sd > 0.0 {
                    (v as f64 - mean) / sd
                } else {
                    v as f64 - mean
                };
                b.set(r, c, z as f32);
            }
        }
        for r in (0..n).step_by(97) {
            for c in 0..cols {
                let (x, y) = (a.get(r, c).unwrap(), b.get(r, c).unwrap());
                assert!((x - y).abs() < 1e-6);
            }
        }
    }
}
