//! Statistics over expression rows with exact missing-value handling.
//!
//! Correlation is the workhorse of both ForestView's cross-dataset pattern
//! comparison and the SPELL search engine, so these kernels are written to
//! be allocation-free on the hot path and to handle pairwise-present masks
//! exactly: a pair of rows is compared only over the columns where *both*
//! rows are present, which is the convention of Cluster 3.0 / Java TreeView.

use crate::matrix::ExprMatrix;

/// Running mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used for per-row and per-dataset
/// moments during normalization.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Fold in one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by n); 0 when fewer than 1 observation.
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divide by n−1); 0 when fewer than 2 observations.
    pub fn variance_sample(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev_sample(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Moments of the present values in one row.
pub fn row_moments(m: &ExprMatrix, r: usize) -> Welford {
    let mut w = Welford::new();
    for (_, v) in m.present_in_row_iter(r) {
        w.push(v as f64);
    }
    w
}

/// Moments of every present value in the matrix.
pub fn matrix_moments(m: &ExprMatrix) -> Welford {
    let mut w = Welford::new();
    for r in 0..m.n_rows() {
        for (_, v) in m.present_in_row_iter(r) {
            w.push(v as f64);
        }
    }
    w
}

/// Pearson correlation between two slices of equal length (no missing
/// handling). Returns `None` when fewer than 2 points or zero variance.
pub fn pearson_dense(a: &[f32], b: &[f32]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "pearson_dense requires equal lengths");
    if a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let (mut sa, mut sb) = (0.0f64, 0.0f64);
    for i in 0..a.len() {
        sa += a[i] as f64;
        sb += b[i] as f64;
    }
    let (ma, mb) = (sa / n, sb / n);
    let (mut num, mut da, mut db) = (0.0f64, 0.0f64, 0.0f64);
    for i in 0..a.len() {
        let xa = a[i] as f64 - ma;
        let xb = b[i] as f64 - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if da <= 0.0 || db <= 0.0 {
        return None;
    }
    Some(num / (da.sqrt() * db.sqrt()))
}

/// Pearson correlation between two rows of (possibly different) matrices,
/// computed over the columns where **both** rows are present.
///
/// Returns `None` when fewer than `min_overlap` shared columns exist or
/// either row has zero variance over the shared columns.
pub fn pearson_rows(
    ma: &ExprMatrix,
    ra: usize,
    mb: &ExprMatrix,
    rb: usize,
    min_overlap: usize,
) -> Option<f64> {
    assert_eq!(
        ma.n_cols(),
        mb.n_cols(),
        "pearson_rows requires matrices with equal column counts"
    );
    let n_cols = ma.n_cols();
    let mut n = 0usize;
    let (mut sa, mut sb) = (0.0f64, 0.0f64);
    for c in 0..n_cols {
        if ma.is_present(ra, c) && mb.is_present(rb, c) {
            n += 1;
            sa += ma.get_raw(ra, c) as f64;
            sb += mb.get_raw(rb, c) as f64;
        }
    }
    if n < min_overlap.max(2) {
        return None;
    }
    let (mean_a, mean_b) = (sa / n as f64, sb / n as f64);
    let (mut num, mut da, mut db) = (0.0f64, 0.0f64, 0.0f64);
    for c in 0..n_cols {
        if ma.is_present(ra, c) && mb.is_present(rb, c) {
            let xa = ma.get_raw(ra, c) as f64 - mean_a;
            let xb = mb.get_raw(rb, c) as f64 - mean_b;
            num += xa * xb;
            da += xa * xa;
            db += xb * xb;
        }
    }
    if da <= 0.0 || db <= 0.0 {
        return None;
    }
    Some(num / (da.sqrt() * db.sqrt()))
}

/// Uncentered Pearson ("cosine") correlation over pairwise-present columns,
/// the Cluster 3.0 `correlation, uncentered` metric.
pub fn uncentered_pearson_rows(
    ma: &ExprMatrix,
    ra: usize,
    mb: &ExprMatrix,
    rb: usize,
    min_overlap: usize,
) -> Option<f64> {
    assert_eq!(ma.n_cols(), mb.n_cols());
    let mut n = 0usize;
    let (mut num, mut da, mut db) = (0.0f64, 0.0f64, 0.0f64);
    for c in 0..ma.n_cols() {
        if ma.is_present(ra, c) && mb.is_present(rb, c) {
            n += 1;
            let xa = ma.get_raw(ra, c) as f64;
            let xb = mb.get_raw(rb, c) as f64;
            num += xa * xb;
            da += xa * xa;
            db += xb * xb;
        }
    }
    if n < min_overlap.max(1) || da <= 0.0 || db <= 0.0 {
        return None;
    }
    Some(num / (da.sqrt() * db.sqrt()))
}

/// Euclidean distance over pairwise-present columns, scaled by the number
/// of shared columns so rows with different missingness are comparable.
pub fn euclidean_rows(
    ma: &ExprMatrix,
    ra: usize,
    mb: &ExprMatrix,
    rb: usize,
    min_overlap: usize,
) -> Option<f64> {
    assert_eq!(ma.n_cols(), mb.n_cols());
    let mut n = 0usize;
    let mut acc = 0.0f64;
    for c in 0..ma.n_cols() {
        if ma.is_present(ra, c) && mb.is_present(rb, c) {
            n += 1;
            let d = ma.get_raw(ra, c) as f64 - mb.get_raw(rb, c) as f64;
            acc += d * d;
        }
    }
    if n < min_overlap.max(1) {
        return None;
    }
    Some((acc / n as f64).sqrt())
}

/// Fractional ranks of the present values (average rank for ties), with
/// `None` preserved for missing positions. Used by Spearman correlation.
pub fn fractional_ranks(values: &[Option<f32>]) -> Vec<Option<f64>> {
    let mut idx: Vec<usize> = values
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|_| i))
        .collect();
    idx.sort_by(|&a, &b| {
        values[a]
            .unwrap()
            .partial_cmp(&values[b].unwrap())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks: Vec<Option<f64>> = vec![None; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        // group ties
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0; // 1-based average rank
        for &k in &idx[i..=j] {
            ranks[k] = Some(avg);
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation between two rows over pairwise-present columns.
pub fn spearman_rows(
    ma: &ExprMatrix,
    ra: usize,
    mb: &ExprMatrix,
    rb: usize,
    min_overlap: usize,
) -> Option<f64> {
    assert_eq!(ma.n_cols(), mb.n_cols());
    // Collect pairwise-present values, then rank them.
    let mut va: Vec<Option<f32>> = Vec::with_capacity(ma.n_cols());
    let mut vb: Vec<Option<f32>> = Vec::with_capacity(ma.n_cols());
    for c in 0..ma.n_cols() {
        if let (Some(x), Some(y)) = (ma.get(ra, c), mb.get(rb, c)) {
            va.push(Some(x));
            vb.push(Some(y));
        }
    }
    if va.len() < min_overlap.max(2) {
        return None;
    }
    let rka = fractional_ranks(&va);
    let rkb = fractional_ranks(&vb);
    let a: Vec<f32> = rka.iter().map(|r| r.unwrap() as f32).collect();
    let b: Vec<f32> = rkb.iter().map(|r| r.unwrap() as f32).collect();
    pearson_dense(&a, &b)
}

/// Median of the present values of a row, if any.
pub fn row_median(m: &ExprMatrix, r: usize) -> Option<f32> {
    let mut vals: Vec<f32> = m.present_in_row_iter(r).map(|(_, v)| v).collect();
    median_in_place(&mut vals)
}

/// Median of a scratch buffer (consumed/reordered).
pub fn median_in_place(vals: &mut [f32]) -> Option<f32> {
    if vals.is_empty() {
        return None;
    }
    let mid = vals.len() / 2;
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    if vals.len() % 2 == 1 {
        Some(vals[mid])
    } else {
        Some((vals[mid - 1] + vals[mid]) / 2.0)
    }
}

/// Mean of present values of a row; `None` if the row is entirely missing.
pub fn row_mean(m: &ExprMatrix, r: usize) -> Option<f64> {
    let w = row_moments(m, r);
    if w.count() == 0 {
        None
    } else {
        Some(w.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, v: &[f32]) -> ExprMatrix {
        ExprMatrix::from_rows(rows, cols, v).unwrap()
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance_sample() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.variance_sample(), 0.0);
        let mut w1 = Welford::new();
        w1.push(5.0);
        assert_eq!(w1.mean(), 5.0);
        assert_eq!(w1.variance_sample(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance_sample() - all.variance_sample()).abs() < 1e-10);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a.mean(), before.mean());
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn pearson_dense_perfect() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let r = pearson_dense(&a, &b).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        let neg: Vec<f32> = b.iter().map(|x| -x).collect();
        let r2 = pearson_dense(&a, &neg).unwrap();
        assert!((r2 + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_dense_zero_variance_is_none() {
        assert_eq!(pearson_dense(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson_dense(&[1.0], &[2.0]), None);
    }

    #[test]
    fn pearson_rows_pairwise_mask() {
        // Row 0 and row 1 correlate perfectly on shared columns {0,2,3}.
        let mut m = mat(2, 4, &[1.0, 99.0, 2.0, 3.0, 2.0, 0.0, 4.0, 6.0]);
        m.set_missing(1, 1); // col 1 only in row 0 → excluded
        let r = pearson_rows(&m, 0, &m, 1, 2).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn pearson_rows_min_overlap_enforced() {
        let m = mat(2, 3, &[1.0, 2.0, 3.0, 3.0, 2.0, 1.0]);
        assert!(pearson_rows(&m, 0, &m, 1, 4).is_none());
        assert!(pearson_rows(&m, 0, &m, 1, 3).is_some());
    }

    #[test]
    fn pearson_self_is_one() {
        let m = mat(1, 5, &[0.5, -1.0, 2.0, 0.0, 1.5]);
        let r = pearson_rows(&m, 0, &m, 0, 2).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncentered_pearson_cosine() {
        let m = mat(2, 3, &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let r = uncentered_pearson_rows(&m, 0, &m, 1, 1).unwrap();
        assert!(r.abs() < 1e-12); // orthogonal
        let m2 = mat(2, 2, &[1.0, 1.0, 2.0, 2.0]);
        let r2 = uncentered_pearson_rows(&m2, 0, &m2, 1, 1).unwrap();
        assert!((r2 - 1.0).abs() < 1e-12); // parallel
    }

    #[test]
    fn euclidean_rows_normalized_by_overlap() {
        let m = mat(2, 4, &[0.0, 0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 2.0]);
        let d = euclidean_rows(&m, 0, &m, 1, 1).unwrap();
        assert!((d - 2.0).abs() < 1e-12);
        // Missing half the columns should not change the per-column scale.
        let mut m2 = m.clone();
        m2.set_missing(0, 0);
        m2.set_missing(0, 1);
        let d2 = euclidean_rows(&m2, 0, &m2, 1, 1).unwrap();
        assert!((d2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fractional_ranks_with_ties_and_missing() {
        let v = vec![Some(3.0), None, Some(1.0), Some(3.0), Some(2.0)];
        let r = fractional_ranks(&v);
        assert_eq!(r[1], None);
        assert_eq!(r[2], Some(1.0));
        assert_eq!(r[4], Some(2.0));
        // the two 3.0s share ranks 3 and 4 → 3.5
        assert_eq!(r[0], Some(3.5));
        assert_eq!(r[3], Some(3.5));
    }

    #[test]
    fn spearman_monotone_is_one() {
        // Monotone but nonlinear relationship: spearman 1, pearson < 1.
        let a: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let b: Vec<f32> = a.iter().map(|x| x.exp()).collect();
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let m = mat(2, 8, &all);
        let s = spearman_rows(&m, 0, &m, 1, 2).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
        let p = pearson_rows(&m, 0, &m, 1, 2).unwrap();
        assert!(p < 0.999);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median_in_place(&mut [3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median_in_place(&mut [4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median_in_place(&mut []), None);
    }

    #[test]
    fn row_median_skips_missing() {
        let mut m = mat(1, 4, &[10.0, 1.0, 2.0, 3.0]);
        m.set_missing(0, 0);
        assert_eq!(row_median(&m, 0), Some(2.0));
    }

    #[test]
    fn row_mean_none_when_all_missing() {
        let m = ExprMatrix::missing(1, 3);
        assert_eq!(row_mean(&m, 0), None);
    }

    #[test]
    fn matrix_moments_counts_present_only() {
        let mut m = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        m.set_missing(1, 1);
        let w = matrix_moments(&m);
        assert_eq!(w.count(), 3);
        assert!((w.mean() - 2.0).abs() < 1e-12);
    }
}
