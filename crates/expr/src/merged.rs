//! The **Merged Dataset Interface** of Figure 1.
//!
//! ForestView's analysis routines must "easily access the data" of all loaded
//! datasets through "a simple three dimensional array interface" (paper,
//! Section 2). `MergedDatasets` is that interface: it owns the loaded
//! [`Dataset`]s, interns every gene into a shared [`GeneUniverse`], and keeps
//! a per-dataset [`RowMap`] so `value(dataset, gene, condition)` resolves in
//! O(1) regardless of row order differences between datasets.

use crate::dataset::Dataset;
use crate::error::ExprError;
use crate::universe::{GeneId, GeneUniverse, RowMap};
use std::sync::Arc;

/// A collection of datasets unified behind a gene universe — the 3-D
/// `dataset × gene × condition` interface of the paper's architecture.
///
/// Datasets are held as [`Arc<Dataset>`] handles so many sessions can
/// share one parsed copy (see `fv_api`'s dataset cache): loading the same
/// PCL into N sessions costs one allocation, not N. In-place transforms
/// go through [`MergedDatasets::matrix_mut`], which copy-on-writes the
/// handle — a session that normalizes its view never mutates another
/// session's data.
#[derive(Debug, Default, Clone)]
pub struct MergedDatasets {
    datasets: Vec<Arc<Dataset>>,
    universe: GeneUniverse,
    row_maps: Vec<RowMap>,
}

impl MergedDatasets {
    /// Empty collection.
    pub fn new() -> Self {
        MergedDatasets::default()
    }

    /// Register a dataset, interning its genes. Dataset names must be
    /// unique because panes, preferences and exports address them by name.
    /// If a dataset lists the same gene id twice, the first row wins (the
    /// convention of Java TreeView's gene lookup).
    pub fn add(&mut self, dataset: Dataset) -> Result<usize, ExprError> {
        self.add_shared(Arc::new(dataset))
    }

    /// Register a shared dataset handle without copying it — the entry
    /// point dataset caches use so N sessions loading the same file share
    /// one parse. Same uniqueness rules as [`MergedDatasets::add`].
    pub fn add_shared(&mut self, dataset: Arc<Dataset>) -> Result<usize, ExprError> {
        if self.datasets.iter().any(|d| d.name == dataset.name) {
            return Err(ExprError::DuplicateDataset(dataset.name.clone()));
        }
        let mut map = RowMap::new();
        for (row, gene) in dataset.genes.iter().enumerate() {
            let id = self.universe.intern(&gene.id);
            if map.row_of(id).is_none() {
                map.insert(id, row);
            }
        }
        self.datasets.push(dataset);
        self.row_maps.push(map);
        Ok(self.datasets.len() - 1)
    }

    /// Number of datasets loaded.
    pub fn n_datasets(&self) -> usize {
        self.datasets.len()
    }

    /// The shared gene universe.
    pub fn universe(&self) -> &GeneUniverse {
        &self.universe
    }

    /// Dataset by index.
    pub fn dataset(&self, d: usize) -> &Dataset {
        &self.datasets[d]
    }

    /// All datasets, in load order.
    pub fn datasets(&self) -> &[Arc<Dataset>] {
        &self.datasets
    }

    /// The shared handle behind dataset `d` — what a cache or another
    /// session can clone to share the parse.
    pub fn dataset_handle(&self, d: usize) -> &Arc<Dataset> {
        &self.datasets[d]
    }

    /// Mutable access to a dataset's expression matrix, for in-place
    /// transforms (imputation, normalization). Shape-preserving only: the
    /// gene universe and metadata are keyed by row/column counts, so
    /// callers must not change the matrix dimensions.
    ///
    /// Copy-on-write: if the dataset is shared with other sessions (or a
    /// cache), this clones it first — mutations are always private to
    /// this collection.
    pub fn matrix_mut(&mut self, d: usize) -> &mut crate::matrix::ExprMatrix {
        &mut Arc::make_mut(&mut self.datasets[d]).matrix
    }

    /// Dataset index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.datasets.iter().position(|d| d.name == name)
    }

    /// Row of `gene` within dataset `d`, if measured there.
    #[inline]
    pub fn gene_row(&self, d: usize, gene: GeneId) -> Option<usize> {
        self.row_maps[d].row_of(gene)
    }

    /// The 3-D accessor: expression of `gene` in condition `c` of dataset
    /// `d`. `None` if the dataset lacks the gene, the column is out of
    /// range, or the cell is missing.
    #[inline]
    pub fn value(&self, d: usize, gene: GeneId, c: usize) -> Option<f32> {
        let row = self.gene_row(d, gene)?;
        let ds = &self.datasets[d];
        if c >= ds.matrix.n_cols() {
            return None;
        }
        ds.matrix.get(row, c)
    }

    /// Which datasets measure `gene`.
    pub fn datasets_with_gene(&self, gene: GeneId) -> Vec<usize> {
        (0..self.datasets.len())
            .filter(|&d| self.row_maps[d].contains(gene))
            .collect()
    }

    /// Genes present in **every** dataset, in universe order.
    pub fn genes_in_all(&self) -> Vec<GeneId> {
        if self.datasets.is_empty() {
            return Vec::new();
        }
        self.universe
            .ids()
            .filter(|&g| self.row_maps.iter().all(|m| m.contains(g)))
            .collect()
    }

    /// Genes present in **at least one** dataset (the whole universe).
    pub fn genes_in_any(&self) -> Vec<GeneId> {
        self.universe.ids().collect()
    }

    /// Search every dataset's gene metadata for `query`; returns, per
    /// dataset, the matching row indices. This powers the cross-dataset
    /// annotation search described in Section 2.
    pub fn search_all(&self, query: &str) -> Vec<Vec<usize>> {
        self.datasets
            .iter()
            .map(|d| d.search_genes(query))
            .collect()
    }

    /// Resolve gene names (exact id/common-name match in any dataset, or
    /// an already-interned universe name) to universe ids, dropping those
    /// not found anywhere.
    pub fn resolve_genes(&self, names: &[&str]) -> Vec<GeneId> {
        names
            .iter()
            .filter_map(|n| self.universe.lookup(n))
            .collect()
    }

    /// Total present measurements across all datasets — the paper's
    /// "quarter billion microarray measurements" scale metric.
    pub fn total_measurements(&self) -> usize {
        self.datasets.iter().map(|d| d.n_measurements()).sum()
    }

    /// Translate a set of row indices in dataset `d` into gene ids.
    pub fn rows_to_genes(&self, d: usize, rows: &[usize]) -> Vec<GeneId> {
        rows.iter()
            .filter_map(|&r| {
                self.datasets[d]
                    .genes
                    .get(r)
                    .and_then(|g| self.universe.lookup(&g.id))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ExprMatrix;
    use crate::meta::{ConditionMeta, GeneMeta};

    fn ds(name: &str, ids: &[&str], vals: &[f32], n_cols: usize) -> Dataset {
        let m = ExprMatrix::from_rows(ids.len(), n_cols, vals).unwrap();
        let genes = ids.iter().map(|&i| GeneMeta::id_only(i)).collect();
        let conds = (0..n_cols)
            .map(|c| ConditionMeta::new(format!("c{c}")))
            .collect();
        Dataset::new(name, m, genes, conds).unwrap()
    }

    fn merged() -> MergedDatasets {
        let mut m = MergedDatasets::new();
        m.add(ds("a", &["G1", "G2", "G3"], &[1., 2., 3., 4., 5., 6.], 2))
            .unwrap();
        // dataset b has G3 and G1 in different order, plus its own G4
        m.add(ds("b", &["G3", "G4", "G1"], &[30., 40., 10.], 1))
            .unwrap();
        m
    }

    #[test]
    fn add_assigns_indices() {
        let mut m = MergedDatasets::new();
        let i0 = m.add(ds("a", &["G1"], &[1.0], 1)).unwrap();
        let i1 = m.add(ds("b", &["G1"], &[2.0], 1)).unwrap();
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(m.n_datasets(), 2);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut m = MergedDatasets::new();
        m.add(ds("a", &["G1"], &[1.0], 1)).unwrap();
        let err = m.add(ds("a", &["G2"], &[1.0], 1)).unwrap_err();
        assert_eq!(err, ExprError::DuplicateDataset("a".into()));
    }

    #[test]
    fn value_resolves_across_row_orders() {
        let m = merged();
        let g1 = m.universe().lookup("G1").unwrap();
        let g3 = m.universe().lookup("G3").unwrap();
        // dataset a: G1 row 0; dataset b: G1 row 2
        assert_eq!(m.value(0, g1, 0), Some(1.0));
        assert_eq!(m.value(1, g1, 0), Some(10.0));
        assert_eq!(m.value(0, g3, 1), Some(6.0));
        assert_eq!(m.value(1, g3, 0), Some(30.0));
    }

    #[test]
    fn value_none_for_absent_gene_or_col() {
        let m = merged();
        let g4 = m.universe().lookup("G4").unwrap();
        assert_eq!(m.value(0, g4, 0), None); // G4 not in dataset a
        let g1 = m.universe().lookup("G1").unwrap();
        assert_eq!(m.value(1, g1, 5), None); // col out of range
    }

    #[test]
    fn datasets_with_gene_lists_correctly() {
        let m = merged();
        let g2 = m.universe().lookup("G2").unwrap();
        let g3 = m.universe().lookup("G3").unwrap();
        assert_eq!(m.datasets_with_gene(g2), vec![0]);
        assert_eq!(m.datasets_with_gene(g3), vec![0, 1]);
    }

    #[test]
    fn genes_in_all_intersection() {
        let m = merged();
        let names: Vec<&str> = m
            .genes_in_all()
            .iter()
            .map(|&g| m.universe().name(g))
            .collect();
        assert_eq!(names, vec!["G1", "G3"]);
    }

    #[test]
    fn genes_in_any_is_universe() {
        let m = merged();
        assert_eq!(m.genes_in_any().len(), 4);
    }

    #[test]
    fn duplicate_gene_in_dataset_first_row_wins() {
        let mut m = MergedDatasets::new();
        m.add(ds("a", &["G1", "G1"], &[1.0, 2.0], 1)).unwrap();
        let g1 = m.universe().lookup("G1").unwrap();
        assert_eq!(m.gene_row(0, g1), Some(0));
    }

    #[test]
    fn search_all_per_dataset() {
        let m = merged();
        let hits = m.search_all("G3");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], vec![2]);
        assert_eq!(hits[1], vec![0]);
    }

    #[test]
    fn resolve_genes_drops_unknown() {
        let m = merged();
        let ids = m.resolve_genes(&["G1", "NOPE", "g4"]);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn total_measurements_sums() {
        let m = merged();
        assert_eq!(m.total_measurements(), 6 + 3);
    }

    #[test]
    fn rows_to_genes_roundtrip() {
        let m = merged();
        let genes = m.rows_to_genes(1, &[0, 2]);
        let names: Vec<&str> = genes.iter().map(|&g| m.universe().name(g)).collect();
        assert_eq!(names, vec!["G3", "G1"]);
    }

    #[test]
    fn add_shared_shares_until_mutated() {
        let handle = Arc::new(ds("a", &["G1"], &[1.0], 1));
        let mut m1 = MergedDatasets::new();
        let mut m2 = MergedDatasets::new();
        m1.add_shared(Arc::clone(&handle)).unwrap();
        m2.add_shared(Arc::clone(&handle)).unwrap();
        assert!(Arc::ptr_eq(m1.dataset_handle(0), m2.dataset_handle(0)));
        assert_eq!(Arc::strong_count(&handle), 3);
        // mutation copy-on-writes: m1 gets a private copy, m2 and the
        // original handle are untouched
        m1.matrix_mut(0).set(0, 0, 99.0);
        assert!(!Arc::ptr_eq(m1.dataset_handle(0), m2.dataset_handle(0)));
        assert_eq!(m1.dataset(0).matrix.get(0, 0), Some(99.0));
        assert_eq!(m2.dataset(0).matrix.get(0, 0), Some(1.0));
        assert_eq!(handle.matrix.get(0, 0), Some(1.0));
    }

    #[test]
    fn index_of_by_name() {
        let m = merged();
        assert_eq!(m.index_of("b"), Some(1));
        assert_eq!(m.index_of("zzz"), None);
    }
}
