//! Gene universe: a string interner assigning stable integer ids to gene
//! names so that cross-dataset operations (selection synchronization, SPELL
//! scoring, search) work on `u32`s instead of string comparisons.
//!
//! Gene identifiers are matched **case-insensitively** (microarray files mix
//! `YAL005C` / `yal005c`); the first-seen spelling is kept for display.

use std::collections::HashMap;

/// Stable identifier for a gene within a [`GeneUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GeneId(pub u32);

impl GeneId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner from gene name to [`GeneId`].
#[derive(Debug, Default, Clone)]
pub struct GeneUniverse {
    names: Vec<String>,
    by_key: HashMap<String, GeneId>,
}

impl GeneUniverse {
    /// Empty universe.
    pub fn new() -> Self {
        GeneUniverse::default()
    }

    fn key_of(name: &str) -> String {
        name.trim().to_ascii_uppercase()
    }

    /// Intern a gene name, returning its stable id. Case-insensitive:
    /// `ssa1` and `SSA1` intern to the same id.
    pub fn intern(&mut self, name: &str) -> GeneId {
        let key = Self::key_of(name);
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = GeneId(self.names.len() as u32);
        self.names.push(name.trim().to_string());
        self.by_key.insert(key, id);
        id
    }

    /// Look up an already-interned gene.
    pub fn lookup(&self, name: &str) -> Option<GeneId> {
        self.by_key.get(&Self::key_of(name)).copied()
    }

    /// The display spelling of a gene id (first-seen spelling).
    pub fn name(&self, id: GeneId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct genes interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over all ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = GeneId> + '_ {
        (0..self.names.len() as u32).map(GeneId)
    }
}

/// Map from [`GeneId`] to a row index within one dataset.
///
/// Stored as a dense `Vec<Option<u32>>` indexed by gene id so lookup during
/// synchronized scrolling is a single indexed load. The vector grows lazily
/// as the universe grows.
#[derive(Debug, Clone, Default)]
pub struct RowMap {
    rows: Vec<Option<u32>>,
}

impl RowMap {
    /// Empty map.
    pub fn new() -> Self {
        RowMap::default()
    }

    /// Record that `gene` occupies `row` in this dataset.
    pub fn insert(&mut self, gene: GeneId, row: usize) {
        let idx = gene.index();
        if idx >= self.rows.len() {
            self.rows.resize(idx + 1, None);
        }
        self.rows[idx] = Some(row as u32);
    }

    /// The dataset row holding `gene`, if the dataset measures it.
    #[inline]
    pub fn row_of(&self, gene: GeneId) -> Option<usize> {
        self.rows
            .get(gene.index())
            .copied()
            .flatten()
            .map(|r| r as usize)
    }

    /// Whether the dataset measures `gene`.
    #[inline]
    pub fn contains(&self, gene: GeneId) -> bool {
        self.row_of(gene).is_some()
    }

    /// Number of genes mapped.
    pub fn len(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// Whether no genes are mapped.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|r| r.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut u = GeneUniverse::new();
        let a = u.intern("YAL005C");
        let b = u.intern("YAL005C");
        assert_eq!(a, b);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn intern_case_insensitive() {
        let mut u = GeneUniverse::new();
        let a = u.intern("SSA1");
        let b = u.intern("ssa1");
        let c = u.intern(" Ssa1 ");
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(u.name(a), "SSA1"); // first-seen spelling kept
    }

    #[test]
    fn lookup_missing_is_none() {
        let mut u = GeneUniverse::new();
        u.intern("YAL001C");
        assert_eq!(u.lookup("YAL002W"), None);
        assert!(u.lookup("yal001c").is_some());
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut u = GeneUniverse::new();
        let ids: Vec<GeneId> = (0..5).map(|i| u.intern(&format!("G{i}"))).collect();
        assert_eq!(
            ids,
            vec![GeneId(0), GeneId(1), GeneId(2), GeneId(3), GeneId(4)]
        );
        let listed: Vec<GeneId> = u.ids().collect();
        assert_eq!(listed, ids);
    }

    #[test]
    fn rowmap_insert_lookup() {
        let mut rm = RowMap::new();
        rm.insert(GeneId(10), 3);
        assert_eq!(rm.row_of(GeneId(10)), Some(3));
        assert_eq!(rm.row_of(GeneId(9)), None);
        assert_eq!(rm.row_of(GeneId(100)), None); // beyond vector end
        assert!(rm.contains(GeneId(10)));
        assert_eq!(rm.len(), 1);
    }

    #[test]
    fn rowmap_overwrite_keeps_latest() {
        let mut rm = RowMap::new();
        rm.insert(GeneId(0), 5);
        rm.insert(GeneId(0), 7);
        assert_eq!(rm.row_of(GeneId(0)), Some(7));
        assert_eq!(rm.len(), 1);
    }

    #[test]
    fn rowmap_empty() {
        let rm = RowMap::new();
        assert!(rm.is_empty());
        assert_eq!(rm.len(), 0);
    }

    #[test]
    fn universe_is_empty_transitions() {
        let mut u = GeneUniverse::new();
        assert!(u.is_empty());
        u.intern("X");
        assert!(!u.is_empty());
    }
}
