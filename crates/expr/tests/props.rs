//! Property-based tests of the expression-matrix substrate.

use fv_expr::matrix::ExprMatrix;
use fv_expr::stats::{self, Welford};
use proptest::prelude::*;

prop_compose! {
    /// A random matrix with a random missing mask.
    fn arb_matrix()(
        n_rows in 1usize..16,
        n_cols in 1usize..12,
        seed in any::<u64>(),
        missing_bits in any::<u64>(),
    ) -> ExprMatrix {
        let mut m = ExprMatrix::missing(n_rows, n_cols);
        let mut s = seed | 1;
        for r in 0..n_rows {
            for c in 0..n_cols {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                if (missing_bits >> ((r * n_cols + c) % 64)) & 1 == 0 {
                    m.set(r, c, ((s % 1999) as f32 - 999.0) / 100.0);
                }
            }
        }
        m
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in arb_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_preserves_present_count(m in arb_matrix()) {
        prop_assert_eq!(m.present_total(), m.transpose().present_total());
    }

    #[test]
    fn select_all_rows_is_identity(m in arb_matrix()) {
        let rows: Vec<usize> = (0..m.n_rows()).collect();
        prop_assert_eq!(m.select_rows(&rows).unwrap(), m);
    }

    #[test]
    fn select_rows_preserves_row_content(m in arb_matrix(), pick in any::<u64>()) {
        let rows: Vec<usize> = (0..m.n_rows()).filter(|r| (pick >> (r % 64)) & 1 == 1).collect();
        if rows.is_empty() { return Ok(()); }
        let s = m.select_rows(&rows).unwrap();
        for (new_r, &old_r) in rows.iter().enumerate() {
            for c in 0..m.n_cols() {
                prop_assert_eq!(s.get(new_r, c), m.get(old_r, c));
            }
        }
    }

    #[test]
    fn missing_fraction_in_unit_range(m in arb_matrix()) {
        let f = m.missing_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        let present = m.present_total();
        prop_assert_eq!(present + (f * m.n_cells() as f64).round() as usize, m.n_cells());
    }

    #[test]
    fn map_in_place_identity_is_noop(m in arb_matrix()) {
        let mut copy = m.clone();
        copy.map_in_place(|v| v);
        prop_assert_eq!(copy, m);
    }

    #[test]
    fn welford_merge_associative(xs in prop::collection::vec(-1e3f64..1e3, 1..60), split in 0usize..60) {
        let split = split.min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance_sample() - whole.variance_sample()).abs()
            < 1e-6 * (1.0 + whole.variance_sample()));
    }

    #[test]
    fn pearson_symmetric_and_bounded(m in arb_matrix(), a in 0usize..16, b in 0usize..16) {
        let a = a % m.n_rows();
        let b = b % m.n_rows();
        let r1 = stats::pearson_rows(&m, a, &m, b, 2);
        let r2 = stats::pearson_rows(&m, b, &m, a, 2);
        prop_assert_eq!(r1.is_some(), r2.is_some());
        if let (Some(x), Some(y)) = (r1, r2) {
            prop_assert!((x - y).abs() < 1e-12);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&x));
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(
        vals in prop::collection::vec(-50f32..50.0, 4..12),
    ) {
        // distinct-ish values: spearman(x, y) == spearman(x, 2y+5) exactly
        let n = vals.len();
        let mut both = vals.clone();
        both.extend(vals.iter().map(|v| 2.0 * v + 5.0));
        let m = ExprMatrix::from_rows(2, n, &both).unwrap();
        if let Some(s) = stats::spearman_rows(&m, 0, &m, 1, 2) {
            prop_assert!((s - 1.0).abs() < 1e-6, "monotone map must give rho=1, got {s}");
        }
    }

    #[test]
    fn fractional_ranks_are_valid(vals in prop::collection::vec(prop::option::of(-100f32..100.0), 1..30)) {
        let ranks = stats::fractional_ranks(&vals);
        prop_assert_eq!(ranks.len(), vals.len());
        let present: Vec<f64> = ranks.iter().flatten().copied().collect();
        let n = present.len() as f64;
        if n > 0.0 {
            // ranks sum to n(n+1)/2 regardless of ties
            let sum: f64 = present.iter().sum();
            prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
            for &r in &present {
                prop_assert!(r >= 1.0 && r <= n);
            }
        }
        // missing stays missing
        for (v, r) in vals.iter().zip(&ranks) {
            prop_assert_eq!(v.is_none(), r.is_none());
        }
    }
}
