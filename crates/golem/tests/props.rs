//! Property-based tests of the enrichment statistics.

use fv_golem::correct::{benjamini_hochberg, bonferroni};
use fv_golem::hypergeom::{cdf, ln_choose, pmf, sf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pmf_is_distribution(n_pop in 1u64..200, k_ann_frac in 0.0f64..1.0, n_draw_frac in 0.0f64..1.0) {
        let k_ann = (n_pop as f64 * k_ann_frac) as u64;
        let n_draw = (n_pop as f64 * n_draw_frac) as u64;
        let total: f64 = (0..=n_draw).map(|k| pmf(n_pop, k_ann, n_draw, k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "pmf sums to {total}");
    }

    #[test]
    fn sf_cdf_complement(n_pop in 1u64..120, k_ann in 0u64..120, n_draw in 0u64..120, k in 0u64..120) {
        let k_ann = k_ann.min(n_pop);
        let n_draw = n_draw.min(n_pop);
        let k = k.min(n_draw);
        let lhs = cdf(n_pop, k_ann, n_draw, k) + sf(n_pop, k_ann, n_draw, k + 1);
        prop_assert!((lhs - 1.0).abs() < 1e-8, "complement violated: {lhs}");
    }

    #[test]
    fn sf_monotone_nonincreasing(n_pop in 2u64..120, k_ann in 1u64..120, n_draw in 1u64..120) {
        let k_ann = k_ann.min(n_pop);
        let n_draw = n_draw.min(n_pop);
        let mut last = 1.0f64;
        for k in 0..=n_draw.min(k_ann) {
            let p = sf(n_pop, k_ann, n_draw, k);
            prop_assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn hypergeom_symmetry(n_pop in 1u64..80, k_ann in 0u64..80, n_draw in 0u64..80, k in 0u64..80) {
        // swapping the roles of "annotated" and "drawn" leaves pmf unchanged
        let k_ann = k_ann.min(n_pop);
        let n_draw = n_draw.min(n_pop);
        let k = k.min(k_ann.min(n_draw));
        let a = pmf(n_pop, k_ann, n_draw, k);
        let b = pmf(n_pop, n_draw, k_ann, k);
        prop_assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }

    #[test]
    fn ln_choose_pascal(n in 1u64..60, k in 0u64..60) {
        // C(n,k) = C(n-1,k-1) + C(n-1,k) in log space (via exp)
        let k = k.min(n);
        if k == 0 || k == n { return Ok(()); }
        let lhs = ln_choose(n, k).exp();
        let rhs = ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp();
        prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn bh_between_raw_and_bonferroni(pvals in prop::collection::vec(0.0f64..=1.0, 1..40)) {
        let q = benjamini_hochberg(&pvals);
        let b = bonferroni(&pvals);
        for i in 0..pvals.len() {
            prop_assert!(q[i] >= pvals[i] - 1e-12, "q below raw p");
            prop_assert!(q[i] <= b[i] + 1e-12, "q above bonferroni");
            prop_assert!((0.0..=1.0).contains(&q[i]));
        }
    }

    #[test]
    fn bh_order_preserving(pvals in prop::collection::vec(0.0f64..=1.0, 2..40)) {
        let q = benjamini_hochberg(&pvals);
        let mut pairs: Vec<(f64, f64)> = pvals.iter().copied().zip(q.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12, "q not monotone in p");
        }
    }

    #[test]
    fn bonferroni_idempotent_on_saturated(pvals in prop::collection::vec(0.5f64..=1.0, 3..20)) {
        // with m ≥ 2 every p ≥ 0.5 saturates to 1.0
        let b = bonferroni(&pvals);
        prop_assert!(b.iter().all(|&v| v == 1.0));
    }
}
