//! Hypergeometric tail probabilities in log space.
//!
//! GO enrichment asks: drawing `n` genes (the cluster) from a population of
//! `N` genes of which `K` are annotated to a term, what is the probability
//! of seeing `k` or more annotated genes? Cluster sizes are hundreds and
//! populations thousands, so everything is computed with log-factorials to
//! avoid overflow, and the survival sum runs over at most `min(K, n)` terms.

/// Natural log of `n!` via `ln Γ(n+1)` (Lanczos approximation).
pub fn ln_factorial(n: u64) -> f64 {
    // Small values from a table for exactness where tests care most.
    const TABLE: [f64; 11] = [
        0.0,
        0.0,
        std::f64::consts::LN_2,
        1.791759469228055,
        3.1780538303479458,
        4.787491742782046,
        6.579251212010101,
        8.525161361065415,
        10.60460290274525,
        12.801827480081469,
        15.104412573075516,
    ];
    if (n as usize) < TABLE.len() {
        return TABLE[n as usize];
    }
    ln_gamma(n as f64 + 1.0)
}

/// Lanczos ln Γ(x) for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument");
    // g = 7, n = 9 Lanczos coefficients.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// log of the binomial coefficient C(n, k); `-inf` when k > n.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Hypergeometric PMF: P(X = k) for `k` annotated among `n` drawn from a
/// population `N` containing `K` annotated.
pub fn pmf(n_population: u64, k_annotated: u64, n_drawn: u64, k: u64) -> f64 {
    if k > k_annotated || k > n_drawn || n_drawn > n_population {
        return 0.0;
    }
    let rest = n_drawn - k;
    if rest > n_population - k_annotated {
        return 0.0;
    }
    let ln_p = ln_choose(k_annotated, k) + ln_choose(n_population - k_annotated, rest)
        - ln_choose(n_population, n_drawn);
    ln_p.exp()
}

/// Upper tail (enrichment p-value): P(X ≥ k). Clamped to `[0, 1]`.
pub fn sf(n_population: u64, k_annotated: u64, n_drawn: u64, k: u64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let hi = k_annotated.min(n_drawn);
    let mut p = 0.0;
    for x in k..=hi {
        p += pmf(n_population, k_annotated, n_drawn, x);
    }
    p.clamp(0.0, 1.0)
}

/// Lower tail (depletion p-value): P(X ≤ k). Clamped to `[0, 1]`.
pub fn cdf(n_population: u64, k_annotated: u64, n_drawn: u64, k: u64) -> f64 {
    let mut p = 0.0;
    for x in 0..=k.min(k_annotated).min(n_drawn) {
        p += pmf(n_population, k_annotated, n_drawn, x);
    }
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_small_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_large_stirling_regime() {
        // 170! is the f64 overflow edge for naive factorials; logs are fine.
        let lf = ln_factorial(170);
        assert!((lf - 706.5731).abs() < 1e-3);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        let lg = ln_gamma(0.5);
        assert!((lg - (std::f64::consts::PI.sqrt()).ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_values() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-10);
        assert!((ln_choose(52, 5) - 2598960.0f64.ln()).abs() < 1e-8);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert_eq!(ln_choose(7, 0), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let (n, big_k, n_draw) = (50u64, 12u64, 20u64);
        let total: f64 = (0..=n_draw).map(|k| pmf(n, big_k, n_draw, k)).sum();
        assert!((total - 1.0).abs() < 1e-10, "total {total}");
    }

    #[test]
    fn pmf_known_value() {
        // Urn: N=10, K=4 white, draw n=5, P(k=2 white) = C(4,2)C(6,3)/C(10,5)
        let expect = (6.0 * 20.0) / 252.0;
        assert!((pmf(10, 4, 5, 2) - expect).abs() < 1e-12);
    }

    #[test]
    fn pmf_impossible_cases_zero() {
        assert_eq!(pmf(10, 4, 5, 6), 0.0); // k > n_drawn... also > K
        assert_eq!(pmf(10, 4, 5, 5), 0.0); // only 4 annotated exist
        assert_eq!(pmf(10, 9, 5, 0), 0.0); // must draw ≥4 annotated
    }

    #[test]
    fn sf_and_cdf_complementary() {
        let (n, big_k, n_draw) = (40u64, 10u64, 15u64);
        for k in 0..=10 {
            let lhs = sf(n, big_k, n_draw, k + 1) + cdf(n, big_k, n_draw, k);
            assert!((lhs - 1.0).abs() < 1e-9, "k={k}: {lhs}");
        }
    }

    #[test]
    fn sf_at_zero_is_one() {
        assert_eq!(sf(100, 10, 5, 0), 1.0);
    }

    #[test]
    fn sf_monotone_decreasing_in_k() {
        let mut last = 1.0;
        for k in 0..=8 {
            let p = sf(60, 12, 18, k);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn enrichment_signal_detected() {
        // Population 6000, 100 annotated; a 50-gene cluster with 20
        // annotated is astronomically enriched.
        let p = sf(6000, 100, 50, 20);
        assert!(p < 1e-15, "p = {p}");
        // while 1 of 50 is unremarkable
        let p1 = sf(6000, 100, 50, 1);
        assert!(p1 > 0.3, "p1 = {p1}");
    }

    #[test]
    fn large_population_no_overflow() {
        let p = sf(50_000, 2_000, 500, 40);
        assert!(p.is_finite());
        assert!((0.0..=1.0).contains(&p));
    }
}
