//! GO-term enrichment of a gene list.
//!
//! For every term with at least `min_annotated` propagated annotations,
//! compute the hypergeometric upper-tail p-value of the query list's
//! overlap, then attach Bonferroni and Benjamini–Hochberg corrections.
//! Terms are tested in parallel with rayon — a compendium-scale ontology
//! has thousands of testable terms.

use crate::correct::benjamini_hochberg;
use crate::hypergeom::sf;
use fv_ontology::annotations::PropagatedAnnotations;
use fv_ontology::dag::OntologyDag;
use fv_ontology::term::TermId;
use rayon::prelude::*;

/// Configuration for an enrichment run.
#[derive(Debug, Clone, Copy)]
pub struct EnrichmentConfig {
    /// Skip terms with fewer propagated annotations than this (tiny terms
    /// produce unstable statistics). GOLEM's default is 2.
    pub min_annotated: usize,
    /// Skip terms annotating more than this fraction of the population
    /// (near-root terms are uninformative). 1.0 disables the filter.
    pub max_population_fraction: f64,
    /// Only report results with raw p below this (1.0 reports everything).
    pub p_cutoff: f64,
}

impl Default for EnrichmentConfig {
    fn default() -> Self {
        EnrichmentConfig {
            min_annotated: 2,
            max_population_fraction: 0.5,
            p_cutoff: 1.0,
        }
    }
}

/// One term's enrichment statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrichmentResult {
    /// The tested term.
    pub term: TermId,
    /// Query genes annotated to the term (k).
    pub overlap: usize,
    /// Population genes annotated to the term (K).
    pub annotated: usize,
    /// Query size counted in the population (n).
    pub query_size: usize,
    /// Population size (N).
    pub population: usize,
    /// Raw hypergeometric upper-tail p-value.
    pub p_value: f64,
    /// Bonferroni-adjusted p-value.
    pub p_bonferroni: f64,
    /// Benjamini–Hochberg q-value.
    pub q_value: f64,
    /// Fold enrichment: (k/n) / (K/N).
    pub fold: f64,
}

/// Run enrichment of `query` (gene names) against the propagated
/// annotations. Genes absent from the population are dropped from the
/// query. Results are sorted by ascending p-value, ties by term id.
pub fn enrich(
    dag: &OntologyDag,
    ann: &PropagatedAnnotations,
    query: &[&str],
    config: &EnrichmentConfig,
) -> Vec<EnrichmentResult> {
    let population = ann.n_genes();
    if population == 0 {
        return Vec::new();
    }
    // Deduplicate query genes that exist in the population.
    let mut q: Vec<&str> = query
        .iter()
        .copied()
        .filter(|g| ann.gene_population_index(g).is_some())
        .collect();
    q.sort_unstable();
    q.dedup();
    let n = q.len();
    if n == 0 {
        return Vec::new();
    }

    let max_annotated = (config.max_population_fraction * population as f64).ceil() as usize;
    let candidates: Vec<TermId> = dag
        .ids()
        .filter(|&t| !dag.term(t).obsolete)
        .filter(|&t| {
            let k_ann = ann.count(t);
            k_ann >= config.min_annotated && k_ann <= max_annotated
        })
        .collect();

    let mut results: Vec<EnrichmentResult> = candidates
        .par_iter()
        .filter_map(|&t| {
            let k_ann = ann.count(t);
            let overlap = ann.count_overlap(t, &q);
            if overlap == 0 {
                return None;
            }
            let p = sf(population as u64, k_ann as u64, n as u64, overlap as u64);
            let fold = (overlap as f64 / n as f64) / (k_ann as f64 / population as f64);
            Some(EnrichmentResult {
                term: t,
                overlap,
                annotated: k_ann,
                query_size: n,
                population,
                p_value: p,
                p_bonferroni: 0.0,
                q_value: 0.0,
                fold,
            })
        })
        .collect();

    // Correct over the number of *candidate* terms (the tests performed),
    // not just those with non-zero overlap — zero-overlap terms have p = 1
    // and cannot change BH ranks below existing p-values, but they do count
    // toward the Bonferroni denominator.
    let m = candidates.len().max(1);
    let pvals: Vec<f64> = results.iter().map(|r| r.p_value).collect();
    let qvals = benjamini_hochberg(&pvals);
    let bon: Vec<f64> = pvals.iter().map(|&p| (p * m as f64).min(1.0)).collect();
    for (r, (qv, bv)) in results.iter_mut().zip(qvals.into_iter().zip(bon)) {
        r.q_value = qv;
        r.p_bonferroni = bv;
    }

    results.retain(|r| r.p_value <= config.p_cutoff);
    results.sort_by(|a, b| {
        a.p_value
            .partial_cmp(&b.p_value)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.term.cmp(&b.term))
    });
    results
}

// Re-export for callers that correct externally-generated p-value sets.
pub use crate::correct::benjamini_hochberg as correct_bh;
pub use crate::correct::bonferroni as correct_bonferroni;

#[cfg(test)]
mod tests {
    use super::*;
    use fv_ontology::annotations::AnnotationSet;
    use fv_ontology::dag::{DagBuilder, RelType};
    use fv_ontology::term::{Namespace, Term};

    /// root ← stress ← heat; root ← other. 40 genes:
    /// g0..g9 heat, g10..g19 stress(only), g20..39 other.
    fn setup() -> (OntologyDag, PropagatedAnnotations) {
        let mut b = DagBuilder::new();
        let root = b
            .add_term(Term::new("GO:R", "root", Namespace::BiologicalProcess))
            .unwrap();
        let stress = b
            .add_term(Term::new("GO:S", "stress", Namespace::BiologicalProcess))
            .unwrap();
        let heat = b
            .add_term(Term::new("GO:H", "heat", Namespace::BiologicalProcess))
            .unwrap();
        let other = b
            .add_term(Term::new("GO:O", "other", Namespace::BiologicalProcess))
            .unwrap();
        b.add_edge(stress, root, RelType::IsA);
        b.add_edge(heat, stress, RelType::IsA);
        b.add_edge(other, root, RelType::IsA);
        let dag = b.build().unwrap();

        let mut ann = AnnotationSet::new();
        for i in 0..40 {
            let g = format!("g{i}");
            if i < 10 {
                ann.annotate(&g, heat);
            } else if i < 20 {
                ann.annotate(&g, stress);
            } else {
                ann.annotate(&g, other);
            }
        }
        let p = ann.propagate(&dag);
        (dag, p)
    }

    #[test]
    fn heat_cluster_is_enriched() {
        let (dag, p) = setup();
        let query: Vec<String> = (0..8).map(|i| format!("g{i}")).collect();
        let q: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
        let res = enrich(&dag, &p, &q, &EnrichmentConfig::default());
        assert!(!res.is_empty());
        // heat should be the top hit
        let heat = dag.lookup("GO:H").unwrap();
        assert_eq!(res[0].term, heat);
        assert!(res[0].p_value < 1e-6);
        assert_eq!(res[0].overlap, 8);
        assert_eq!(res[0].annotated, 10);
        assert!(res[0].fold > 3.0);
    }

    #[test]
    fn random_query_not_significant() {
        let (dag, p) = setup();
        // one gene from each bucket
        let res = enrich(
            &dag,
            &p,
            &["g0", "g15", "g25", "g35"],
            &EnrichmentConfig::default(),
        );
        for r in &res {
            assert!(r.p_bonferroni > 0.05, "{:?}", r);
        }
    }

    #[test]
    fn near_root_terms_filtered() {
        let (dag, p) = setup();
        let query: Vec<String> = (0..8).map(|i| format!("g{i}")).collect();
        let q: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
        let res = enrich(&dag, &p, &q, &EnrichmentConfig::default());
        let root = dag.lookup("GO:R").unwrap();
        // root annotates 100% > 50% default cap
        assert!(res.iter().all(|r| r.term != root));
    }

    #[test]
    fn unknown_query_genes_dropped() {
        let (dag, p) = setup();
        let res = enrich(
            &dag,
            &p,
            &["g0", "g1", "nope", "zzz"],
            &EnrichmentConfig::default(),
        );
        assert!(res.iter().all(|r| r.query_size == 2));
    }

    #[test]
    fn duplicate_query_genes_counted_once() {
        let (dag, p) = setup();
        let res = enrich(&dag, &p, &["g0", "g0", "g1"], &EnrichmentConfig::default());
        assert!(res.iter().all(|r| r.query_size == 2));
    }

    #[test]
    fn empty_query_empty_result() {
        let (dag, p) = setup();
        assert!(enrich(&dag, &p, &[], &EnrichmentConfig::default()).is_empty());
        assert!(enrich(&dag, &p, &["unknown"], &EnrichmentConfig::default()).is_empty());
    }

    #[test]
    fn results_sorted_by_p() {
        let (dag, p) = setup();
        let query: Vec<String> = (0..12).map(|i| format!("g{i}")).collect();
        let q: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
        let res = enrich(&dag, &p, &q, &EnrichmentConfig::default());
        for w in res.windows(2) {
            assert!(w[0].p_value <= w[1].p_value);
        }
    }

    #[test]
    fn p_cutoff_filters() {
        let (dag, p) = setup();
        let query: Vec<String> = (0..8).map(|i| format!("g{i}")).collect();
        let q: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
        let all = enrich(&dag, &p, &q, &EnrichmentConfig::default());
        let tight = enrich(
            &dag,
            &p,
            &q,
            &EnrichmentConfig {
                p_cutoff: 1e-6,
                ..EnrichmentConfig::default()
            },
        );
        assert!(tight.len() <= all.len());
        assert!(tight.iter().all(|r| r.p_value <= 1e-6));
    }

    #[test]
    fn corrections_attached_and_ordered() {
        let (dag, p) = setup();
        let query: Vec<String> = (0..8).map(|i| format!("g{i}")).collect();
        let q: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
        let res = enrich(&dag, &p, &q, &EnrichmentConfig::default());
        for r in &res {
            assert!(r.q_value >= r.p_value - 1e-12);
            assert!(r.p_bonferroni >= r.q_value - 1e-12);
            assert!(r.p_bonferroni <= 1.0);
        }
    }
}
