//! # fv-golem — GOLEM: Gene Ontology Local Exploration Map
//!
//! GOLEM (Sealfon et al. 2006, paper reference [10]) combines two things
//! the paper's Section 3 calls out:
//!
//! 1. **Statistical enrichment** — "GOLEM provides a powerful framework for
//!    quantifying the statistical functional enrichment of lists of genes":
//!    the hypergeometric tail test over propagated GO annotations, with
//!    Bonferroni and Benjamini–Hochberg multiple-test correction
//!    ([`hypergeom`], [`enrich`], [`correct`]).
//! 2. **Local exploration maps** — "to view how those results relate to
//!    each other in the larger context of the GO hierarchy": a
//!    radius-bounded neighbourhood of the hierarchy around a focus term,
//!    laid out in layers for display ([`map`], [`layout`]).
//!
//! The geometric output is renderer-agnostic (unit-square coordinates);
//! `forestview` draws it through `fv-render`.

#![forbid(unsafe_code)]

pub mod correct;
pub mod enrich;
pub mod hypergeom;
pub mod layout;
pub mod map;

pub use enrich::{enrich, EnrichmentConfig, EnrichmentResult};
pub use map::{build_local_map, LocalMap, MapNode};
