//! Local exploration map construction.
//!
//! GOLEM's signature view: pick a focus term (typically a top enrichment
//! hit), take the ontology neighbourhood within a hop radius, and annotate
//! every node with its enrichment statistics so the display can color by
//! significance. The result is pure structure + statistics; layout happens
//! in [`crate::layout`] and pixels in the application layer.

use crate::enrich::EnrichmentResult;
use fv_ontology::dag::OntologyDag;
use fv_ontology::query::{hop_distances, induced_edges};
use fv_ontology::term::TermId;
use std::collections::HashMap;

/// One node of a local map.
#[derive(Debug, Clone, PartialEq)]
pub struct MapNode {
    /// The term.
    pub term: TermId,
    /// Hop distance from the focus term.
    pub distance: u32,
    /// Depth of the term in the full ontology.
    pub depth: u32,
    /// Enrichment p-value if this term was among the supplied results.
    pub p_value: Option<f64>,
    /// Query overlap if enriched.
    pub overlap: Option<usize>,
}

/// A radius-bounded neighbourhood of the ontology around a focus term.
#[derive(Debug, Clone)]
pub struct LocalMap {
    /// The focus term.
    pub focus: TermId,
    /// Hop radius used.
    pub radius: u32,
    /// Nodes, sorted by (distance, term id). The focus is always first.
    pub nodes: Vec<MapNode>,
    /// (child, parent) edges with both endpoints in the map.
    pub edges: Vec<(TermId, TermId)>,
}

impl LocalMap {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Find a node by term.
    pub fn node(&self, term: TermId) -> Option<&MapNode> {
        self.nodes.iter().find(|n| n.term == term)
    }

    /// Terms in the map.
    pub fn terms(&self) -> Vec<TermId> {
        self.nodes.iter().map(|n| n.term).collect()
    }
}

/// Build the local exploration map around `focus` with the given hop
/// `radius`, attaching statistics from `enrichment` where available.
pub fn build_local_map(
    dag: &OntologyDag,
    focus: TermId,
    radius: u32,
    enrichment: &[EnrichmentResult],
) -> LocalMap {
    let dist = hop_distances(dag, focus);
    let by_term: HashMap<TermId, &EnrichmentResult> =
        enrichment.iter().map(|r| (r.term, r)).collect();

    let mut nodes: Vec<MapNode> = dag
        .ids()
        .filter_map(|t| {
            let d = dist[t.index()]?;
            if d > radius || dag.term(t).obsolete {
                return None;
            }
            let stat = by_term.get(&t);
            Some(MapNode {
                term: t,
                distance: d,
                depth: dag.depth(t),
                p_value: stat.map(|r| r.p_value),
                overlap: stat.map(|r| r.overlap),
            })
        })
        .collect();
    nodes.sort_by_key(|n| (n.distance, n.term));

    let terms: Vec<TermId> = nodes.iter().map(|n| n.term).collect();
    let edges = induced_edges(dag, &terms);
    LocalMap {
        focus,
        radius,
        nodes,
        edges,
    }
}

/// Build a map containing the focus plus the top `k` enrichment hits and
/// the connecting paths (every node on a shortest ancestor path between a
/// hit and the focus's namespace root is included). This is the "show my
/// results in context" view of GOLEM.
pub fn build_results_map(
    dag: &OntologyDag,
    enrichment: &[EnrichmentResult],
    k: usize,
) -> Option<LocalMap> {
    let top: Vec<&EnrichmentResult> = enrichment.iter().take(k).collect();
    let focus = top.first()?.term;
    // Include every hit, all its ancestors, with distances measured from the
    // focus term (unreachable nodes get distance = depth as a fallback).
    let mut include: Vec<TermId> = Vec::new();
    for r in &top {
        include.push(r.term);
        include.extend(fv_ontology::query::ancestors(dag, r.term));
    }
    include.sort_unstable();
    include.dedup();

    let dist = hop_distances(dag, focus);
    let by_term: HashMap<TermId, &EnrichmentResult> =
        enrichment.iter().map(|r| (r.term, r)).collect();
    let mut nodes: Vec<MapNode> = include
        .iter()
        .map(|&t| MapNode {
            term: t,
            distance: dist[t.index()].unwrap_or(dag.depth(t)),
            depth: dag.depth(t),
            p_value: by_term.get(&t).map(|r| r.p_value),
            overlap: by_term.get(&t).map(|r| r.overlap),
        })
        .collect();
    nodes.sort_by_key(|n| (n.distance, n.term));
    let edges = induced_edges(dag, &include);
    Some(LocalMap {
        focus,
        radius: nodes.iter().map(|n| n.distance).max().unwrap_or(0),
        nodes,
        edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_ontology::dag::{DagBuilder, RelType};
    use fv_ontology::term::{Namespace, Term};

    /// R ← A ← C, R ← B, C ← D (chain depth 3)
    fn dag() -> (OntologyDag, [TermId; 5]) {
        let mut b = DagBuilder::new();
        let names = ["R", "A", "B", "C", "D"];
        let ids: Vec<TermId> = names
            .iter()
            .map(|n| {
                b.add_term(Term::new(
                    format!("GO:{n}"),
                    *n,
                    Namespace::BiologicalProcess,
                ))
                .unwrap()
            })
            .collect();
        b.add_edge(ids[1], ids[0], RelType::IsA); // A → R
        b.add_edge(ids[2], ids[0], RelType::IsA); // B → R
        b.add_edge(ids[3], ids[1], RelType::IsA); // C → A
        b.add_edge(ids[4], ids[3], RelType::IsA); // D → C
        (b.build().unwrap(), [ids[0], ids[1], ids[2], ids[3], ids[4]])
    }

    fn fake_result(term: TermId, p: f64) -> EnrichmentResult {
        EnrichmentResult {
            term,
            overlap: 5,
            annotated: 10,
            query_size: 20,
            population: 100,
            p_value: p,
            p_bonferroni: p,
            q_value: p,
            fold: 2.5,
        }
    }

    #[test]
    fn radius_bounds_map() {
        let (g, [r, a, b, c, d]) = dag();
        let m0 = build_local_map(&g, a, 0, &[]);
        assert_eq!(m0.terms(), vec![a]);
        let m1 = build_local_map(&g, a, 1, &[]);
        assert_eq!(m1.terms().len(), 3); // a + parent r + child c
        assert!(m1.node(r).is_some());
        assert!(m1.node(c).is_some());
        assert!(m1.node(b).is_none());
        let m2 = build_local_map(&g, a, 2, &[]);
        assert_eq!(m2.terms().len(), 5);
        assert_eq!(m2.node(d).unwrap().distance, 2);
    }

    #[test]
    fn focus_first_in_nodes() {
        let (g, [_, a, ..]) = dag();
        let m = build_local_map(&g, a, 2, &[]);
        assert_eq!(m.nodes[0].term, a);
        assert_eq!(m.nodes[0].distance, 0);
    }

    #[test]
    fn enrichment_attached() {
        let (g, [_, a, _, c, _]) = dag();
        let res = vec![fake_result(c, 1e-8)];
        let m = build_local_map(&g, a, 1, &res);
        assert_eq!(m.node(c).unwrap().p_value, Some(1e-8));
        assert_eq!(m.node(c).unwrap().overlap, Some(5));
        assert_eq!(m.node(a).unwrap().p_value, None);
    }

    #[test]
    fn edges_induced_only() {
        let (g, [r, a, _, c, _]) = dag();
        let m = build_local_map(&g, a, 1, &[]);
        assert!(m.edges.contains(&(a, r)));
        assert!(m.edges.contains(&(c, a)));
        assert_eq!(m.edges.len(), 2);
    }

    #[test]
    fn results_map_includes_ancestor_paths() {
        let (g, [r, a, _, c, d]) = dag();
        let res = vec![fake_result(d, 1e-9), fake_result(c, 1e-4)];
        let m = build_results_map(&g, &res, 2).unwrap();
        // D's ancestors C, A, R all included.
        for t in [r, a, c, d] {
            assert!(m.node(t).is_some(), "missing {t:?}");
        }
        assert_eq!(m.focus, d);
        assert_eq!(m.node(d).unwrap().p_value, Some(1e-9));
    }

    #[test]
    fn results_map_empty_input() {
        let (g, _) = dag();
        assert!(build_results_map(&g, &[], 3).is_none());
    }

    #[test]
    fn node_depth_recorded() {
        let (g, [_, a, _, _, d]) = dag();
        let m = build_local_map(&g, a, 3, &[]);
        assert_eq!(m.node(d).unwrap().depth, 3);
    }
}
