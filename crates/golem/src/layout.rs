//! Layered layout for local exploration maps.
//!
//! Sugiyama-style drawing specialized to GOLEM's needs (Figure 5 shows the
//! GO hierarchy drawn in layers): nodes are layered by ontology depth
//! (parents above children, matching the mental model of GO), crossings are
//! reduced by barycenter sweeps, and coordinates come out in the unit
//! square so any renderer can scale them to pixels.

use crate::map::LocalMap;
use fv_ontology::term::TermId;
use std::collections::HashMap;

/// A positioned node.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutNode {
    /// The term.
    pub term: TermId,
    /// Layer index (0 = shallowest in the map).
    pub layer: usize,
    /// Horizontal position in `[0, 1]`.
    pub x: f32,
    /// Vertical position in `[0, 1]` (layer center).
    pub y: f32,
}

/// A laid-out local map.
#[derive(Debug, Clone)]
pub struct MapLayout {
    /// Positioned nodes, same order as the map's nodes.
    pub nodes: Vec<LayoutNode>,
    /// Edges as index pairs into `nodes`: (child_idx, parent_idx).
    pub edges: Vec<(usize, usize)>,
    /// Number of layers.
    pub n_layers: usize,
}

impl MapLayout {
    /// Position of a term, if present.
    pub fn position(&self, term: TermId) -> Option<(f32, f32)> {
        self.nodes
            .iter()
            .find(|n| n.term == term)
            .map(|n| (n.x, n.y))
    }

    /// Count of edge crossings between adjacent layers (layout quality
    /// metric used by tests and the ablation bench).
    pub fn crossings(&self) -> usize {
        // For each pair of edges between the same layer pair, count inversions.
        let mut count = 0;
        for (i, &(c1, p1)) in self.edges.iter().enumerate() {
            for &(c2, p2) in &self.edges[i + 1..] {
                let (a, b) = (&self.nodes[c1], &self.nodes[p1]);
                let (c, d) = (&self.nodes[c2], &self.nodes[p2]);
                if a.layer == c.layer && b.layer == d.layer && a.layer != b.layer {
                    let x1 = (a.x, b.x);
                    let x2 = (c.x, d.x);
                    if (x1.0 < x2.0 && x1.1 > x2.1) || (x1.0 > x2.0 && x1.1 < x2.1) {
                        count += 1;
                    }
                }
            }
        }
        count
    }
}

/// Lay out a local map. `barycenter_passes` controls crossing-reduction
/// effort (0 keeps the initial order — the ablation baseline).
pub fn layout_map(map: &LocalMap, barycenter_passes: usize) -> MapLayout {
    let n = map.nodes.len();
    if n == 0 {
        return MapLayout {
            nodes: Vec::new(),
            edges: Vec::new(),
            n_layers: 0,
        };
    }
    let index_of: HashMap<TermId, usize> = map
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.term, i))
        .collect();

    // Layer = ontology depth, compressed to consecutive integers.
    let mut depths: Vec<u32> = map.nodes.iter().map(|n| n.depth).collect();
    let mut uniq = depths.clone();
    uniq.sort_unstable();
    uniq.dedup();
    let layer_of_depth: HashMap<u32, usize> =
        uniq.iter().enumerate().map(|(i, &d)| (d, i)).collect();
    for d in &mut depths {
        *d = layer_of_depth[d] as u32;
    }
    let n_layers = uniq.len();

    // Initial per-layer order: map node order (distance-sorted).
    let mut layers: Vec<Vec<usize>> = vec![Vec::new(); n_layers];
    for (i, &d) in depths.iter().enumerate() {
        layers[d as usize].push(i);
    }

    // Adjacency for barycenter sweeps: edges are (child, parent) — child is
    // on a deeper layer.
    let edges_idx: Vec<(usize, usize)> = map
        .edges
        .iter()
        .map(|&(c, p)| (index_of[&c], index_of[&p]))
        .collect();
    let mut parents_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(c, p) in &edges_idx {
        parents_of[c].push(p);
        children_of[p].push(c);
    }

    let mut pos_in_layer = vec![0usize; n];
    let refresh = |layers: &[Vec<usize>], pos: &mut [usize]| {
        for layer in layers {
            for (slot, &node) in layer.iter().enumerate() {
                pos[node] = slot;
            }
        }
    };
    refresh(&layers, &mut pos_in_layer);

    for pass in 0..barycenter_passes {
        let downward = pass % 2 == 0;
        let order: Box<dyn Iterator<Item = usize>> = if downward {
            Box::new(1..n_layers)
        } else {
            Box::new((0..n_layers.saturating_sub(1)).rev())
        };
        for li in order {
            let anchors = |node: usize| -> &Vec<usize> {
                if downward {
                    &parents_of[node]
                } else {
                    &children_of[node]
                }
            };
            let mut keyed: Vec<(f64, usize)> = layers[li]
                .iter()
                .map(|&node| {
                    let adj = anchors(node);
                    let bary = if adj.is_empty() {
                        pos_in_layer[node] as f64
                    } else {
                        adj.iter().map(|&a| pos_in_layer[a] as f64).sum::<f64>() / adj.len() as f64
                    };
                    (bary, node)
                })
                .collect();
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            layers[li] = keyed.into_iter().map(|(_, node)| node).collect();
            refresh(&layers, &mut pos_in_layer);
        }
    }

    // Coordinates: x spreads nodes evenly within the layer; y by layer.
    let mut nodes_out: Vec<LayoutNode> = map
        .nodes
        .iter()
        .map(|n| LayoutNode {
            term: n.term,
            layer: 0,
            x: 0.0,
            y: 0.0,
        })
        .collect();
    for (li, layer) in layers.iter().enumerate() {
        let w = layer.len();
        for (slot, &node) in layer.iter().enumerate() {
            nodes_out[node].layer = li;
            nodes_out[node].x = (slot as f32 + 0.5) / w as f32;
            nodes_out[node].y = if n_layers == 1 {
                0.5
            } else {
                (li as f32 + 0.5) / n_layers as f32
            };
        }
    }

    MapLayout {
        nodes: nodes_out,
        edges: edges_idx,
        n_layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::build_local_map;
    use fv_ontology::dag::{DagBuilder, OntologyDag, RelType};
    use fv_ontology::term::{Namespace, Term};

    fn dag() -> (OntologyDag, Vec<TermId>) {
        // R with children A,B; A with children C,D; B with child E.
        let mut b = DagBuilder::new();
        let names = ["R", "A", "B", "C", "D", "E"];
        let ids: Vec<TermId> = names
            .iter()
            .map(|n| {
                b.add_term(Term::new(
                    format!("GO:{n}"),
                    *n,
                    Namespace::BiologicalProcess,
                ))
                .unwrap()
            })
            .collect();
        b.add_edge(ids[1], ids[0], RelType::IsA);
        b.add_edge(ids[2], ids[0], RelType::IsA);
        b.add_edge(ids[3], ids[1], RelType::IsA);
        b.add_edge(ids[4], ids[1], RelType::IsA);
        b.add_edge(ids[5], ids[2], RelType::IsA);
        (b.build().unwrap(), ids)
    }

    #[test]
    fn layers_follow_depth() {
        let (g, ids) = dag();
        let m = build_local_map(&g, ids[0], 3, &[]);
        let l = layout_map(&m, 2);
        assert_eq!(l.n_layers, 3);
        let root = l.nodes.iter().find(|n| n.term == ids[0]).unwrap();
        let leaf = l.nodes.iter().find(|n| n.term == ids[3]).unwrap();
        assert_eq!(root.layer, 0);
        assert_eq!(leaf.layer, 2);
        assert!(root.y < leaf.y);
    }

    #[test]
    fn coordinates_in_unit_square() {
        let (g, ids) = dag();
        let m = build_local_map(&g, ids[1], 2, &[]);
        let l = layout_map(&m, 3);
        for n in &l.nodes {
            assert!((0.0..=1.0).contains(&n.x), "x = {}", n.x);
            assert!((0.0..=1.0).contains(&n.y), "y = {}", n.y);
        }
    }

    #[test]
    fn same_layer_distinct_x() {
        let (g, ids) = dag();
        let m = build_local_map(&g, ids[0], 3, &[]);
        let l = layout_map(&m, 2);
        for li in 0..l.n_layers {
            let xs: Vec<f32> = l
                .nodes
                .iter()
                .filter(|n| n.layer == li)
                .map(|n| n.x)
                .collect();
            for i in 0..xs.len() {
                for j in (i + 1)..xs.len() {
                    assert!((xs[i] - xs[j]).abs() > 1e-6, "layer {li} overlaps");
                }
            }
        }
    }

    #[test]
    fn edges_reference_valid_nodes() {
        let (g, ids) = dag();
        let m = build_local_map(&g, ids[0], 3, &[]);
        let l = layout_map(&m, 1);
        assert_eq!(l.edges.len(), m.edges.len());
        for &(c, p) in &l.edges {
            assert!(c < l.nodes.len() && p < l.nodes.len());
            assert!(l.nodes[c].layer > l.nodes[p].layer, "child below parent");
        }
    }

    #[test]
    fn barycenter_no_worse_than_none() {
        let (g, ids) = dag();
        let m = build_local_map(&g, ids[0], 3, &[]);
        let base = layout_map(&m, 0).crossings();
        let improved = layout_map(&m, 4).crossings();
        assert!(
            improved <= base,
            "barycenter increased crossings: {base} -> {improved}"
        );
    }

    #[test]
    fn empty_map_layout() {
        let (g, ids) = dag();
        let m = build_local_map(&g, ids[0], 0, &[]);
        let l = layout_map(&m, 2);
        assert_eq!(l.nodes.len(), 1);
        assert_eq!(l.n_layers, 1);
        assert_eq!(l.nodes[0].y, 0.5);
    }

    #[test]
    fn position_lookup() {
        let (g, ids) = dag();
        let m = build_local_map(&g, ids[0], 1, &[]);
        let l = layout_map(&m, 1);
        assert!(l.position(ids[0]).is_some());
        assert!(l.position(ids[3]).is_none()); // radius 1 excludes grandchildren
    }
}
