//! Multiple-hypothesis correction.
//!
//! Enrichment tests run over thousands of GO terms simultaneously; GOLEM
//! reports both the conservative Bonferroni bound and Benjamini–Hochberg
//! false-discovery-rate q-values.

/// Bonferroni-adjusted p-values: `min(1, p * m)` over `m` tests.
pub fn bonferroni(pvals: &[f64]) -> Vec<f64> {
    let m = pvals.len() as f64;
    pvals.iter().map(|&p| (p * m).min(1.0)).collect()
}

/// Benjamini–Hochberg q-values.
///
/// Sort p-values ascending, compute `p_i * m / rank_i`, then enforce
/// monotonicity from the largest rank downward. Returned in the input order.
pub fn benjamini_hochberg(pvals: &[f64]) -> Vec<f64> {
    let m = pvals.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        pvals[a]
            .partial_cmp(&pvals[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut q = vec![0.0f64; m];
    let mut running_min = 1.0f64;
    for rank_from_top in (0..m).rev() {
        let idx = order[rank_from_top];
        let rank = rank_from_top + 1;
        let val = (pvals[idx] * m as f64 / rank as f64).min(1.0);
        running_min = running_min.min(val);
        q[idx] = running_min;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonferroni_scales_and_clamps() {
        let q = bonferroni(&[0.01, 0.2, 0.6]);
        assert!((q[0] - 0.03).abs() < 1e-12);
        assert!((q[1] - 0.6).abs() < 1e-12);
        assert_eq!(q[2], 1.0);
    }

    #[test]
    fn bonferroni_empty() {
        assert!(bonferroni(&[]).is_empty());
    }

    #[test]
    fn bh_single_pvalue_unchanged() {
        let q = benjamini_hochberg(&[0.04]);
        assert!((q[0] - 0.04).abs() < 1e-12);
    }

    #[test]
    fn bh_known_example() {
        // classic example: p = .01, .02, .03, .04, .05 (m=5)
        // q_i = p_i * 5 / i → .05, .05, .05, .05, .05
        let q = benjamini_hochberg(&[0.01, 0.02, 0.03, 0.04, 0.05]);
        for &v in &q {
            assert!((v - 0.05).abs() < 1e-12, "{q:?}");
        }
    }

    #[test]
    fn bh_monotone_in_p() {
        let p = [0.001, 0.3, 0.04, 0.9, 0.02];
        let q = benjamini_hochberg(&p);
        // q order must follow p order
        let mut pairs: Vec<(f64, f64)> = p.iter().copied().zip(q.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
    }

    #[test]
    fn bh_bounded_by_bonferroni() {
        let p = [0.002, 0.08, 0.01, 0.5, 0.03, 0.2];
        let q = benjamini_hochberg(&p);
        let b = bonferroni(&p);
        for i in 0..p.len() {
            assert!(q[i] <= b[i] + 1e-12, "q must not exceed bonferroni");
            assert!(q[i] >= p[i] - 1e-12, "q must not fall below raw p");
        }
    }

    #[test]
    fn bh_preserves_input_order() {
        let p = [0.5, 0.001];
        let q = benjamini_hochberg(&p);
        assert!(q[1] < q[0]);
    }

    #[test]
    fn bh_empty() {
        assert!(benjamini_hochberg(&[]).is_empty());
    }
}
