//! Property-based tests of the linear-algebra kernels: decompositions must
//! reconstruct their input and produce orthonormal factors for arbitrary
//! matrices.

use fv_linalg::dense::{dot, Matrix};
use fv_linalg::qr::qr;
use fv_linalg::solve::{lstsq, solve};
use fv_linalg::svd::svd;
use proptest::prelude::*;

prop_compose! {
    fn arb_matrix(max_rows: usize, max_cols: usize)(
        n_rows in 1usize..=8,
        n_cols in 1usize..=8,
        seed in any::<u64>(),
    ) -> Matrix {
        let n_rows = n_rows.min(max_rows);
        let n_cols = n_cols.min(max_cols);
        let mut m = Matrix::zeros(n_rows, n_cols);
        let mut s = seed | 1;
        for r in 0..n_rows {
            for c in 0..n_cols {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                m.set(r, c, ((s % 2001) as f64 - 1000.0) / 100.0);
            }
        }
        m
    }
}

fn frob(m: &Matrix) -> f64 {
    m.frobenius_norm().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn svd_reconstructs(a in arb_matrix(8, 8)) {
        let d = svd(&a);
        let r = d.reconstruct();
        prop_assert!(r.max_abs_diff(&a) < 1e-8 * frob(&a), "reconstruction error");
        // singular values descending and nonnegative
        for w in d.sigma.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in &d.sigma {
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn svd_factors_orthonormal(a in arb_matrix(8, 8)) {
        let d = svd(&a);
        for m in [&d.u, &d.v] {
            for i in 0..m.n_cols() {
                let nii = dot(m.col(i), m.col(i));
                if nii < 1e-9 { continue; } // zero columns for zero σ
                prop_assert!((nii - 1.0).abs() < 1e-8);
                for j in (i + 1)..m.n_cols() {
                    prop_assert!(dot(m.col(i), m.col(j)).abs() < 1e-7);
                }
            }
        }
    }

    #[test]
    fn svd_frobenius_identity(a in arb_matrix(8, 8)) {
        // ‖A‖_F² = Σ σᵢ²
        let d = svd(&a);
        let sum_sq: f64 = d.sigma.iter().map(|s| s * s).sum();
        let f2 = a.frobenius_norm().powi(2);
        prop_assert!((sum_sq - f2).abs() < 1e-7 * (1.0 + f2));
    }

    #[test]
    fn rank_truncation_error_decreases(a in arb_matrix(8, 8)) {
        // Eckart–Young: the FROBENIUS error of the rank-r truncation is
        // exactly sqrt(Σ_{i>r} σᵢ²), so it decreases monotonically in r
        // (the max-abs error need not).
        let d = svd(&a);
        let mut last = f64::INFINITY;
        for r in 1..=d.sigma.len() {
            let err = (&d.reconstruct_rank(r) - &a).frobenius_norm();
            prop_assert!(err <= last + 1e-9, "rank-{} error {} worse than rank-{} {}", r, err, r-1, last);
            let tail: f64 = d.sigma[r..].iter().map(|s| s * s).sum();
            prop_assert!((err - tail.sqrt()).abs() < 1e-7 * (1.0 + tail.sqrt()),
                "Eckart-Young identity violated: {} vs {}", err, tail.sqrt());
            last = err;
        }
    }

    #[test]
    fn qr_reconstructs_and_q_orthogonal(a in arb_matrix(8, 8)) {
        let d = qr(&a);
        prop_assert!(d.q.matmul(&d.r).max_abs_diff(&a) < 1e-9 * frob(&a));
        let qtq = d.q.transpose().matmul(&d.q);
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(a.n_rows())) < 1e-9);
    }

    #[test]
    fn solve_verifies(a in arb_matrix(6, 6), bvec in prop::collection::vec(-100f64..100.0, 1..7)) {
        // square system from the leading block
        let n = a.n_rows().min(a.n_cols()).min(bvec.len());
        let mut sq = Matrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                sq.set(r, c, a.get(r, c));
            }
        }
        let b = &bvec[..n];
        if let Some(x) = solve(&sq, b) {
            let ax = sq.matvec(&x);
            for i in 0..n {
                prop_assert!((ax[i] - b[i]).abs() < 1e-6 * (1.0 + b[i].abs()),
                    "residual {} at {i}", ax[i] - b[i]);
            }
        }
    }

    #[test]
    fn lstsq_residual_orthogonal_to_columns(a in arb_matrix(8, 4), bvec in prop::collection::vec(-100f64..100.0, 8)) {
        if a.n_rows() < a.n_cols() { return Ok(()); }
        let b = &bvec[..a.n_rows()];
        if let Some(x) = lstsq(&a, b) {
            let ax = a.matvec(&x);
            let resid: Vec<f64> = (0..a.n_rows()).map(|i| b[i] - ax[i]).collect();
            let atr = a.transpose().matvec(&resid);
            for v in atr {
                prop_assert!(v.abs() < 1e-5 * frob(&a), "normal equations violated: {v}");
            }
        }
    }

    #[test]
    fn matmul_associative(a in arb_matrix(5, 5), seed in any::<u64>()) {
        // (A·A)·A == A·(A·A) for square A
        if a.n_rows() != a.n_cols() { return Ok(()); }
        let _ = seed;
        let left = a.matmul(&a).matmul(&a);
        let right = a.matmul(&a.matmul(&a));
        prop_assert!(left.max_abs_diff(&right) < 1e-6 * frob(&a).powi(3));
    }
}
