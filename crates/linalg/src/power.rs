//! Power iteration for the dominant eigenpair of a symmetric matrix.
//!
//! Used as an independent cross-check of the Jacobi SVD (σ₁² equals the top
//! eigenvalue of AᵀA) and for quick dominant-signal estimates when a full
//! decomposition is unnecessary.

use crate::dense::{dot, normalize_in_place, Matrix};

/// Dominant eigenvalue and unit eigenvector of a square matrix, by power
/// iteration with a deterministic start vector.
///
/// `max_iter` bounds the work; `tol` is the convergence threshold on the
/// eigenvector update norm. For symmetric positive semi-definite input
/// (e.g. Gram matrices) convergence is reliable unless the top two
/// eigenvalues coincide, in which case any vector in their span is returned.
pub fn dominant_eigenpair(a: &Matrix, max_iter: usize, tol: f64) -> (f64, Vec<f64>) {
    assert_eq!(
        a.n_rows(),
        a.n_cols(),
        "power iteration needs a square matrix"
    );
    let n = a.n_rows();
    if n == 0 {
        return (0.0, Vec::new());
    }
    // Deterministic, non-degenerate start: varying entries avoid being
    // orthogonal to the dominant eigenvector for typical matrices.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.01).collect();
    normalize_in_place(&mut v);
    let mut lambda = 0.0;
    for _ in 0..max_iter {
        let mut w = a.matvec(&v);
        let norm = normalize_in_place(&mut w);
        if norm == 0.0 {
            return (0.0, v); // a annihilates v: zero matrix direction
        }
        // Rayleigh quotient for the eigenvalue estimate.
        let av = a.matvec(&w);
        lambda = dot(&w, &av);
        let delta: f64 = w
            .iter()
            .zip(&v)
            .map(|(x, y)| {
                let d = x - y;
                let s = x + y; // handle sign flip for negative eigenvalues
                d.abs().min(s.abs())
            })
            .fold(0.0, f64::max);
        v = w;
        if delta < tol {
            break;
        }
    }
    (lambda, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_dominant_eigenpair() {
        let a = Matrix::from_diag(&[5.0, 2.0, 1.0]);
        let (lambda, v) = dominant_eigenpair(&a, 200, 1e-12);
        assert!((lambda - 5.0).abs() < 1e-9);
        assert!(v[0].abs() > 0.999);
        assert!(v[1].abs() < 1e-4);
    }

    #[test]
    fn symmetric_known_eigenvalue() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(2, 2, &[2., 1., 1., 2.]);
        let (lambda, v) = dominant_eigenpair(&a, 500, 1e-13);
        assert!((lambda - 3.0).abs() < 1e-9);
        // eigenvector ∝ (1,1)/√2
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((v[0] - v[1]).abs() < 1e-6);
    }

    #[test]
    fn zero_matrix_returns_zero() {
        let a = Matrix::zeros(3, 3);
        let (lambda, v) = dominant_eigenpair(&a, 50, 1e-12);
        assert_eq!(lambda, 0.0);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 0);
        let (lambda, v) = dominant_eigenpair(&a, 10, 1e-12);
        assert_eq!(lambda, 0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn eigen_residual_is_small() {
        let a = Matrix::from_rows(3, 3, &[4., 1., 0., 1., 3., 1., 0., 1., 2.]);
        let (lambda, v) = dominant_eigenpair(&a, 1000, 1e-14);
        let av = a.matvec(&v);
        for i in 0..3 {
            assert!((av[i] - lambda * v[i]).abs() < 1e-7, "residual at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        let a = Matrix::zeros(2, 3);
        let _ = dominant_eigenpair(&a, 10, 1e-10);
    }
}
