//! # fv-linalg — small dense linear algebra for ForestView's analysis engines
//!
//! SPELL's signal-balancing step (Hibbs et al. 2007, paper reference [8])
//! reconstructs each dataset from its dominant singular vectors so that one
//! overwhelming biological signal cannot drown the search. That requires an
//! SVD; rather than pulling a heavyweight BLAS dependency into an otherwise
//! self-contained reproduction, this crate implements the handful of dense
//! kernels the analysis layer needs:
//!
//! - [`dense::Matrix`] — column-major `f64` matrix with the usual ops,
//! - [`qr`] — Householder QR decomposition,
//! - [`svd`] — one-sided Jacobi SVD (accurate for the small-to-medium
//!   condition-count matrices microarray datasets produce),
//! - [`power`] — power iteration for the dominant eigenpair,
//! - [`solve`] — linear solves via QR.
//!
//! Matrices here are `f64` (not the `f32` of expression storage): these
//! routines run on per-dataset condition-count-sized problems where the
//! extra precision is cheap and appreciated.

#![forbid(unsafe_code)]

pub mod dense;
pub mod power;
pub mod qr;
pub mod solve;
pub mod svd;

pub use dense::Matrix;
pub use qr::QrDecomposition;
pub use svd::Svd;
