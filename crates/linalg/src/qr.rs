//! Householder QR decomposition.
//!
//! Used by [`crate::solve`] for least-squares fits and by tests as an
//! independent check on the SVD. Plain, allocation-light Householder
//! reflections; adequate for the condition-count-sized systems ForestView's
//! analysis layer produces.

use crate::dense::Matrix;

/// QR decomposition `A = Q R` with `Q` orthogonal (m×m) and `R` upper
/// trapezoidal (m×n).
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Orthogonal factor, m×m.
    pub q: Matrix,
    /// Upper-trapezoidal factor, m×n.
    pub r: Matrix,
}

/// Compute the QR decomposition of `a` by Householder reflections.
pub fn qr(a: &Matrix) -> QrDecomposition {
    let m = a.n_rows();
    let n = a.n_cols();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    let steps = n.min(m.saturating_sub(1));

    let mut v = vec![0.0; m];
    for k in 0..steps {
        // Householder vector for column k below the diagonal.
        let mut norm_x = 0.0;
        for i in k..m {
            let x = r.get(i, k);
            norm_x += x * x;
        }
        let norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let alpha = if r.get(k, k) >= 0.0 { -norm_x } else { norm_x };
        for i in 0..m {
            v[i] = if i < k { 0.0 } else { r.get(i, k) };
        }
        v[k] -= alpha;
        let vnorm2: f64 = v[k..].iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }

        // R ← (I − 2 v vᵀ / vᵀv) R
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r.get(i, j);
            }
            let f = 2.0 * dot / vnorm2;
            for i in k..m {
                let cur = r.get(i, j);
                r.set(i, j, cur - f * v[i]);
            }
        }
        // Q ← Q (I − 2 v vᵀ / vᵀv)
        for i in 0..m {
            let mut dot = 0.0;
            for l in k..m {
                dot += q.get(i, l) * v[l];
            }
            let f = 2.0 * dot / vnorm2;
            for l in k..m {
                let cur = q.get(i, l);
                q.set(i, l, cur - f * v[l]);
            }
        }
    }
    // Clean tiny subdiagonal residue so R is exactly triangular for
    // downstream back-substitution.
    for c in 0..n {
        for rr in (c + 1)..m {
            if r.get(rr, c).abs() < 1e-13 {
                r.set(rr, c, 0.0);
            }
        }
    }
    QrDecomposition { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::dot;

    fn reconstruct(d: &QrDecomposition) -> Matrix {
        d.q.matmul(&d.r)
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(
            a.max_abs_diff(b) < tol,
            "matrices differ by {}",
            a.max_abs_diff(b)
        );
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = Matrix::from_rows(3, 3, &[12., -51., 4., 6., 167., -68., -4., 24., -41.]);
        let d = qr(&a);
        assert_close(&reconstruct(&d), &a, 1e-9);
    }

    #[test]
    fn qr_q_is_orthogonal() {
        let a = Matrix::from_rows(3, 3, &[2., 0., 1., 1., 3., 2., 0., 1., 4.]);
        let d = qr(&a);
        let qtq = d.q.transpose().matmul(&d.q);
        assert_close(&qtq, &Matrix::identity(3), 1e-10);
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let a = Matrix::from_rows(4, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 10., 2., 1., 0.]);
        let d = qr(&a);
        for c in 0..3 {
            for r in (c + 1)..4 {
                assert!(
                    d.r.get(r, c).abs() < 1e-9,
                    "R({r},{c}) = {} not ~0",
                    d.r.get(r, c)
                );
            }
        }
        assert_close(&reconstruct(&d), &a, 1e-9);
    }

    #[test]
    fn qr_tall_matrix() {
        let a = Matrix::from_rows(5, 2, &[1., 0., 1., 1., 1., 2., 1., 3., 1., 4.]);
        let d = qr(&a);
        assert_close(&reconstruct(&d), &a, 1e-10);
    }

    #[test]
    fn qr_rank_deficient_does_not_blow_up() {
        // column 1 = 2 * column 0
        let a = Matrix::from_rows(3, 2, &[1., 2., 2., 4., 3., 6.]);
        let d = qr(&a);
        assert_close(&reconstruct(&d), &a, 1e-10);
        // the second diagonal of R should be ~0 (rank 1)
        assert!(d.r.get(1, 1).abs() < 1e-10);
    }

    #[test]
    fn qr_identity() {
        let i = Matrix::identity(4);
        let d = qr(&i);
        assert_close(&reconstruct(&d), &i, 1e-12);
    }

    #[test]
    fn qr_columns_of_q_orthonormal() {
        let a = Matrix::from_rows(3, 3, &[3., 1., 0., 1., 3., 1., 0., 1., 3.]);
        let d = qr(&a);
        for i in 0..3 {
            assert!((dot(d.q.col(i), d.q.col(i)) - 1.0).abs() < 1e-10);
            for j in (i + 1)..3 {
                assert!(dot(d.q.col(i), d.q.col(j)).abs() < 1e-10);
            }
        }
    }
}
