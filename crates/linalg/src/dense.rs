//! Column-major dense `f64` matrix.
//!
//! Column-major layout keeps column operations (the unit of one-sided Jacobi
//! SVD and Householder QR) contiguous.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Dense column-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    n_rows: usize,
    n_cols: usize,
    /// Column-major storage: element (r, c) lives at `c * n_rows + r`.
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.n_rows, self.n_cols)?;
        for r in 0..self.n_rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.n_cols.min(8) {
                write!(f, "{:10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        Matrix {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from row-major data (the natural literal order in source code).
    pub fn from_rows(n_rows: usize, n_cols: usize, rows: &[f64]) -> Self {
        assert_eq!(rows.len(), n_rows * n_cols, "shape mismatch");
        let mut m = Matrix::zeros(n_rows, n_cols);
        for r in 0..n_rows {
            for c in 0..n_cols {
                m.set(r, c, rows[r * n_cols + c]);
            }
        }
        m
    }

    /// Build a diagonal matrix from the given entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        self.data[c * self.n_rows + r]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.n_rows && c < self.n_cols);
        self.data[c * self.n_rows + r] = v;
    }

    /// Contiguous slice of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> &[f64] {
        &self.data[c * self.n_rows..(c + 1) * self.n_rows]
    }

    /// Mutable slice of column `c`.
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.data[c * self.n_rows..(c + 1) * self.n_rows]
    }

    /// Copy of row `r`.
    pub fn row(&self, r: usize) -> Vec<f64> {
        (0..self.n_cols).map(|c| self.get(r, c)).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.n_cols, self.n_rows);
        for c in 0..self.n_cols {
            for r in 0..self.n_rows {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.n_cols, other.n_rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.n_rows, self.n_cols, other.n_rows, other.n_cols
        );
        let mut out = Matrix::zeros(self.n_rows, other.n_cols);
        // (i,j) += A(i,k) B(k,j), looping k outermost over B's columns for
        // cache-friendly column-major access.
        for j in 0..other.n_cols {
            let bcol = other.col(j);
            let ocol = out.col_mut(j);
            for (k, &bkj) in bcol.iter().enumerate() {
                if bkj == 0.0 {
                    continue;
                }
                let acol = &self.data[k * self.n_rows..(k + 1) * self.n_rows];
                for i in 0..self.n_rows {
                    ocol[i] += acol[i] * bkj;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.n_cols, x.len(), "matvec shape mismatch");
        let mut y = vec![0.0; self.n_rows];
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for (r, &a) in self.col(c).iter().enumerate() {
                y[r] += a * xc;
            }
        }
        y
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute element difference with another matrix of equal shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n_rows, other.n_rows);
        assert_eq!(self.n_cols, other.n_cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Scale every element in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.n_rows, rhs.n_rows);
        assert_eq!(self.n_cols, rhs.n_cols);
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o += r;
        }
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.n_rows, rhs.n_rows);
        assert_eq!(self.n_cols, rhs.n_cols);
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(&rhs.data) {
            *o -= r;
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(s);
        out
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Normalize a vector in place; returns its prior norm. Zero vectors are
/// left untouched and report 0.
pub fn normalize_in_place(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > 0.0 {
        for v in a.iter_mut() {
            *v /= n;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_get() {
        let m = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 1), 5.0);
    }

    #[test]
    fn col_is_contiguous() {
        let m = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.col(0), &[1.0, 3.0]);
        assert_eq!(m.col(1), &[2.0, 4.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_rows(3, 3, &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let i = Matrix::identity(3);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_rows(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.n_rows(), 2);
        assert_eq!(c.n_cols(), 2);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_bad_shapes_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(2, 2, &[3.0, 0.0, 4.0, 0.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(1, 2, &[1.0, 2.0]);
        let b = Matrix::from_rows(1, 2, &[3.0, 5.0]);
        assert_eq!((&a + &b).row(0), vec![4.0, 7.0]);
        assert_eq!((&b - &a).row(0), vec![2.0, 3.0]);
        assert_eq!((&a * 2.0).row(0), vec![2.0, 4.0]);
    }

    #[test]
    fn max_abs_diff_known() {
        let a = Matrix::from_rows(1, 2, &[1.0, 2.0]);
        let b = Matrix::from_rows(1, 2, &[1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn from_diag_builds() {
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut v = vec![3.0, 4.0];
        let n = normalize_in_place(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize_in_place(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
