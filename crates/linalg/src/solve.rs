//! Linear solves and least squares via QR.

use crate::dense::Matrix;
use crate::qr::qr;

/// Solve `A x = b` for square, full-rank `A` via QR and back-substitution.
/// Returns `None` when `A` is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.n_rows(), a.n_cols(), "solve requires a square matrix");
    assert_eq!(a.n_rows(), b.len(), "rhs length mismatch");
    lstsq(a, b)
}

/// Least-squares solution of `min ‖A x − b‖₂` for m ≥ n via QR.
/// Returns `None` when `A` is rank-deficient at working precision.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let m = a.n_rows();
    let n = a.n_cols();
    assert!(m >= n, "lstsq requires rows >= cols");
    assert_eq!(m, b.len(), "rhs length mismatch");
    let d = qr(a);
    // y = Qᵀ b (first n entries matter)
    let qt = d.q.transpose();
    let y = qt.matvec(b);
    // Back-substitute R x = y over the leading n×n block.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let rii = d.r.get(i, i);
        if rii.abs() < 1e-12 {
            return None;
        }
        let mut s = y[i];
        for j in (i + 1)..n {
            s -= d.r.get(i, j) * x[j];
        }
        x[i] = s / rii;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3
        let a = Matrix::from_rows(2, 2, &[2., 1., 1., 3.]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_identity() {
        let i = Matrix::identity(3);
        let x = solve(&i, &[7.0, -2.0, 0.5]).unwrap();
        assert_eq!(x, vec![7.0, -2.0, 0.5]);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(2, 2, &[1., 2., 2., 4.]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn lstsq_line_fit() {
        // Fit y = c0 + c1 t through (0,1), (1,3), (2,5): exact line 1 + 2t.
        let a = Matrix::from_rows(3, 2, &[1., 0., 1., 1., 1., 2.]);
        let x = lstsq(&a, &[1.0, 3.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_overdetermined_noisy() {
        // Residual of LS solution must be orthogonal to column space.
        let a = Matrix::from_rows(4, 2, &[1., 0., 1., 1., 1., 2., 1., 3.]);
        let b = [0.9, 3.2, 4.8, 7.1];
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x);
        let resid: Vec<f64> = (0..4).map(|i| b[i] - ax[i]).collect();
        // Aᵀ r ≈ 0
        let at_r = a.transpose().matvec(&resid);
        for v in at_r {
            assert!(v.abs() < 1e-9, "normal equations violated: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn solve_bad_rhs_panics() {
        let a = Matrix::identity(2);
        let _ = solve(&a, &[1.0]);
    }
}
