//! One-sided Jacobi singular value decomposition.
//!
//! Jacobi SVD orthogonalizes pairs of columns of `A` by plane rotations
//! until all pairs are orthogonal; the column norms are then the singular
//! values. It is simple, numerically robust, and delivers high relative
//! accuracy — a good fit for the moderate sizes ForestView needs (SPELL
//! balances datasets with tens-to-hundreds of conditions).
//!
//! For matrices with more columns than rows we decompose the transpose and
//! swap the factors, keeping the sweep count bounded by the smaller
//! dimension.

use crate::dense::{dot, Matrix};

/// Thin SVD `A = U Σ Vᵀ` with `U` m×k, `Σ` diagonal k×k (stored as a
/// vector), `V` n×k, where `k = min(m, n)`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, m×k, orthonormal columns.
    pub u: Matrix,
    /// Singular values, descending, length k.
    pub sigma: Vec<f64>,
    /// Right singular vectors, n×k, orthonormal columns.
    pub v: Matrix,
}

impl Svd {
    /// Reconstruct `U Σ Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..k {
            let s = self.sigma[j];
            for v in us.col_mut(j) {
                *v *= s;
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Reconstruct keeping only the top `r` singular triples — the
    /// rank-`r` approximation SPELL's signal balancing uses.
    pub fn reconstruct_rank(&self, r: usize) -> Matrix {
        let k = self.sigma.len().min(r);
        let m = self.u.n_rows();
        let n = self.v.n_rows();
        let mut out = Matrix::zeros(m, n);
        for t in 0..k {
            let s = self.sigma[t];
            if s == 0.0 {
                continue;
            }
            let uc = self.u.col(t);
            let vc = self.v.col(t);
            for j in 0..n {
                let svj = s * vc[j];
                if svj == 0.0 {
                    continue;
                }
                let ocol = out.col_mut(j);
                for i in 0..m {
                    ocol[i] += uc[i] * svj;
                }
            }
        }
        out
    }

    /// Effective numerical rank at tolerance `tol` relative to σ₁.
    pub fn rank(&self, tol: f64) -> usize {
        let s1 = self.sigma.first().copied().unwrap_or(0.0);
        if s1 == 0.0 {
            return 0;
        }
        self.sigma.iter().filter(|&&s| s > tol * s1).count()
    }

    /// Fraction of total squared singular value mass captured by the top
    /// `r` values (the "energy" of a rank-r approximation).
    pub fn energy_fraction(&self, r: usize) -> f64 {
        let total: f64 = self.sigma.iter().map(|s| s * s).sum();
        if total == 0.0 {
            return 1.0;
        }
        let kept: f64 = self.sigma.iter().take(r).map(|s| s * s).sum();
        kept / total
    }
}

/// Maximum Jacobi sweeps before declaring convergence failure.
const MAX_SWEEPS: usize = 60;

/// Compute the thin SVD of `a` by one-sided Jacobi rotations.
pub fn svd(a: &Matrix) -> Svd {
    if a.n_cols() > a.n_rows() {
        // Decompose Aᵀ = U' Σ V'ᵀ, then A = V' Σ U'ᵀ.
        let t = svd(&a.transpose());
        return Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        };
    }
    let m = a.n_rows();
    let n = a.n_cols();
    let mut u = a.clone(); // columns will be rotated into orthogonality
    let mut v = Matrix::identity(n);

    let eps = 1e-14;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let (alpha, beta, gamma);
                {
                    let cp = u.col(p);
                    let cq = u.col(q);
                    alpha = dot(cp, cp);
                    beta = dot(cq, cq);
                    gamma = dot(cp, cq);
                }
                if alpha == 0.0 || beta == 0.0 {
                    continue;
                }
                let denom = (alpha * beta).sqrt();
                if denom > 0.0 {
                    off = off.max(gamma.abs() / denom);
                }
                if gamma.abs() <= eps * denom {
                    continue;
                }
                // Jacobi rotation zeroing the (p,q) off-diagonal of AᵀA.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u.get(i, p);
                    let uq = u.get(i, q);
                    u.set(i, p, c * up - s * uq);
                    u.set(i, q, s * up + c * uq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        if off < 1e-12 {
            break;
        }
    }

    // Column norms are the singular values; normalize U's columns.
    let mut sigma: Vec<f64> = (0..n).map(|j| dot(u.col(j), u.col(j)).sqrt()).collect();
    for j in 0..n {
        if sigma[j] > 0.0 {
            let s = sigma[j];
            for x in u.col_mut(j) {
                *x /= s;
            }
        }
    }

    // Sort triples by descending singular value.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| sigma[j].partial_cmp(&sigma[i]).unwrap());
    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut s_sorted = vec![0.0; n];
    for (new_j, &old_j) in order.iter().enumerate() {
        s_sorted[new_j] = sigma[old_j];
        u_sorted.col_mut(new_j).copy_from_slice(u.col(old_j));
        v_sorted.col_mut(new_j).copy_from_slice(v.col(old_j));
    }
    sigma = s_sorted;

    Svd {
        u: u_sorted,
        sigma,
        v: v_sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        let d = a.max_abs_diff(b);
        assert!(d < tol, "matrices differ by {d}");
    }

    fn assert_orthonormal_cols(m: &Matrix, tol: f64) {
        for i in 0..m.n_cols() {
            let nii = dot(m.col(i), m.col(i));
            // zero columns allowed for zero singular values
            if nii.abs() < tol {
                continue;
            }
            assert!((nii - 1.0).abs() < tol, "col {i} norm² = {nii}");
            for j in (i + 1)..m.n_cols() {
                let d = dot(m.col(i), m.col(j)).abs();
                assert!(d < tol, "cols {i},{j} dot = {d}");
            }
        }
    }

    #[test]
    fn svd_reconstructs_square() {
        let a = Matrix::from_rows(3, 3, &[4., 0., 0., 0., 3., 0., 0., 0., 2.]);
        let d = svd(&a);
        assert_close(&d.reconstruct(), &a, 1e-10);
        assert!((d.sigma[0] - 4.0).abs() < 1e-10);
        assert!((d.sigma[1] - 3.0).abs() < 1e-10);
        assert!((d.sigma[2] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn svd_general_matrix() {
        let a = Matrix::from_rows(4, 3, &[1., 2., 3., -4., 5., 6., 7., -8., 9., 2., 2., 2.]);
        let d = svd(&a);
        assert_close(&d.reconstruct(), &a, 1e-9);
        assert_orthonormal_cols(&d.u, 1e-9);
        assert_orthonormal_cols(&d.v, 1e-9);
        // descending
        for w in d.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn svd_wide_matrix_via_transpose() {
        let a = Matrix::from_rows(2, 5, &[1., 0., 2., 0., 3., 0., 4., 0., 5., 0.]);
        let d = svd(&a);
        assert_eq!(d.u.n_rows(), 2);
        assert_eq!(d.v.n_rows(), 5);
        assert_eq!(d.sigma.len(), 2);
        assert_close(&d.reconstruct(), &a, 1e-9);
    }

    #[test]
    fn svd_rank_one() {
        // outer product → rank 1
        let a = Matrix::from_rows(3, 3, &[1., 2., 3., 2., 4., 6., 3., 6., 9.]);
        let d = svd(&a);
        assert_eq!(d.rank(1e-9), 1);
        assert_close(&d.reconstruct(), &a, 1e-9);
        // rank-1 reconstruction is exact here
        assert_close(&d.reconstruct_rank(1), &a, 1e-9);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let d = svd(&a);
        assert_eq!(d.rank(1e-12), 0);
        assert!(d.sigma.iter().all(|&s| s == 0.0));
        assert_close(&d.reconstruct(), &a, 1e-12);
    }

    #[test]
    fn singular_values_match_eigen_of_gram() {
        // σᵢ² are eigenvalues of AᵀA; verify the largest against power iteration.
        let a = Matrix::from_rows(3, 2, &[2., 0., 1., 1., 0., 2.]);
        let d = svd(&a);
        let gram = a.transpose().matmul(&a);
        let (lambda, _) = crate::power::dominant_eigenpair(&gram, 500, 1e-12);
        assert!((d.sigma[0] * d.sigma[0] - lambda).abs() < 1e-8);
    }

    #[test]
    fn rank_r_truncation_energy() {
        let a = Matrix::from_rows(3, 3, &[10., 0., 0., 0., 1., 0., 0., 0., 0.1]);
        let d = svd(&a);
        let e1 = d.energy_fraction(1);
        assert!(e1 > 0.98, "dominant direction holds most energy: {e1}");
        assert!((d.energy_fraction(3) - 1.0).abs() < 1e-12);
        // rank-1 approximation should keep the (0,0) block
        let r1 = d.reconstruct_rank(1);
        assert!((r1.get(0, 0) - 10.0).abs() < 1e-8);
        assert!(r1.get(1, 1).abs() < 1e-8);
    }

    #[test]
    fn svd_identity() {
        let i = Matrix::identity(4);
        let d = svd(&i);
        for s in &d.sigma {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert_close(&d.reconstruct(), &i, 1e-10);
    }

    #[test]
    fn svd_tall_thin() {
        let a = Matrix::from_rows(6, 1, &[1., 2., 3., 4., 5., 6.]);
        let d = svd(&a);
        let expected = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0 + 36.0).sqrt();
        assert!((d.sigma[0] - expected).abs() < 1e-10);
        assert_close(&d.reconstruct(), &a, 1e-10);
    }
}
