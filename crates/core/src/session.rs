//! The ForestView session: every loaded dataset plus all interaction state.
//!
//! A `Session` owns the merged dataset interface, per-dataset display
//! orders (identity until clustered, then dendrogram leaf order), gene
//! trees, the current selection, the synchronization flag, the shared zoom
//! scroll position, and pane display preferences — everything Figure 1's
//! boxes above the dataset layer need.

use crate::prefs::PrefsStore;
use crate::selection::{Selection, SelectionOrigin};
use fv_cluster::distance::{condensed_distances, Metric};
use fv_cluster::linkage::{cluster_condensed, Linkage};
use fv_cluster::order::improve_order;
use fv_cluster::tree::ClusterTree;
use fv_expr::merged::MergedDatasets;
use fv_expr::universe::GeneId;
use fv_expr::Dataset;
use fv_expr::ExprError;
use std::sync::Arc;

/// The application state.
#[derive(Debug)]
pub struct Session {
    merged: MergedDatasets,
    /// Pane display preferences.
    pub prefs: PrefsStore,
    selection: Option<Selection>,
    sync_enabled: bool,
    /// Pane order: indices into the merged dataset list.
    dataset_order: Vec<usize>,
    /// Per dataset: display row → matrix row.
    display_order: Vec<Vec<usize>>,
    /// Per dataset: display position of each matrix row (inverse of
    /// `display_order`), kept for O(1) mark placement.
    display_pos: Vec<Vec<usize>>,
    /// Per dataset: the gene dendrogram, once clustered.
    gene_trees: Vec<Option<ClusterTree>>,
    /// Per dataset: the array (condition) dendrogram, once clustered.
    array_trees: Vec<Option<ClusterTree>>,
    /// Per dataset: display column → matrix column.
    col_order: Vec<Vec<usize>>,
    /// Shared zoom scroll offset (in zoom rows).
    scroll: usize,
    /// Distance metric used by parameterless clustering entry points.
    metric: Metric,
    /// Linkage criterion used by parameterless clustering entry points.
    linkage: Linkage,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Empty session with synchronization on (the paper's default view).
    pub fn new() -> Self {
        Session {
            merged: MergedDatasets::new(),
            prefs: PrefsStore::new(),
            selection: None,
            sync_enabled: true,
            dataset_order: Vec::new(),
            display_order: Vec::new(),
            display_pos: Vec::new(),
            gene_trees: Vec::new(),
            array_trees: Vec::new(),
            col_order: Vec::new(),
            scroll: 0,
            metric: Metric::Pearson,
            linkage: Linkage::Average,
        }
    }

    /// Load a dataset into the session (appended as the rightmost pane).
    pub fn load_dataset(&mut self, ds: Dataset) -> Result<usize, ExprError> {
        self.load_shared_dataset(Arc::new(ds))
    }

    /// Load a *shared* dataset handle — the zero-copy path dataset caches
    /// use so many sessions reference one parsed copy. In-place transforms
    /// ([`Session::dataset_matrix_mut`]) copy-on-write, so sharing is
    /// invisible to session semantics.
    pub fn load_shared_dataset(&mut self, ds: Arc<Dataset>) -> Result<usize, ExprError> {
        let n_rows = ds.n_genes();
        let n_cols = ds.n_conditions();
        let idx = self.merged.add_shared(ds)?;
        self.dataset_order.push(idx);
        self.display_order.push((0..n_rows).collect());
        self.display_pos.push((0..n_rows).collect());
        self.gene_trees.push(None);
        self.array_trees.push(None);
        self.col_order.push((0..n_cols).collect());
        Ok(idx)
    }

    /// The merged dataset interface (Figure 1's middle layer).
    pub fn merged(&self) -> &MergedDatasets {
        &self.merged
    }

    /// Number of datasets loaded.
    pub fn n_datasets(&self) -> usize {
        self.merged.n_datasets()
    }

    /// Dataset accessor.
    pub fn dataset(&self, d: usize) -> &Dataset {
        self.merged.dataset(d)
    }

    /// The shared handle behind dataset `d` (see
    /// [`fv_expr::merged::MergedDatasets::dataset_handle`]).
    pub fn dataset_handle(&self, d: usize) -> &Arc<Dataset> {
        self.merged.dataset_handle(d)
    }

    /// Mutable access to dataset `d`'s expression matrix for
    /// shape-preserving in-place transforms (imputation, normalization).
    /// Existing dendrograms are kept; callers that change values should
    /// re-cluster to refresh display orders.
    pub fn dataset_matrix_mut(&mut self, d: usize) -> &mut fv_expr::ExprMatrix {
        self.merged.matrix_mut(d)
    }

    /// Pane order (indices into the dataset list).
    pub fn dataset_order(&self) -> &[usize] {
        &self.dataset_order
    }

    /// Reorder panes. `order` must be a permutation of `0..n_datasets`.
    pub fn set_dataset_order(&mut self, order: Vec<usize>) {
        assert_eq!(
            order.len(),
            self.n_datasets(),
            "order must cover all datasets"
        );
        let mut seen = vec![false; self.n_datasets()];
        for &d in &order {
            assert!(
                d < self.n_datasets() && !seen[d],
                "order must be a permutation"
            );
            seen[d] = true;
        }
        self.dataset_order = order;
    }

    /// Display row → matrix row mapping for dataset `d`.
    pub fn display_order(&self, d: usize) -> &[usize] {
        &self.display_order[d]
    }

    /// Display position of a matrix row in dataset `d`.
    pub fn display_pos_of_row(&self, d: usize, row: usize) -> usize {
        self.display_pos[d][row]
    }

    /// The gene of a display row in dataset `d`.
    pub fn gene_at_display_row(&self, d: usize, display_row: usize) -> Option<GeneId> {
        let row = *self.display_order[d].get(display_row)?;
        let id = &self.merged.dataset(d).genes[row].id;
        self.merged.universe().lookup(id)
    }

    /// Gene dendrogram of dataset `d`, if clustered.
    pub fn gene_tree(&self, d: usize) -> Option<&ClusterTree> {
        self.gene_trees[d].as_ref()
    }

    /// Hierarchically cluster dataset `d`'s genes and reorder its display
    /// rows to the (flip-improved) dendrogram leaf order.
    pub fn cluster_dataset(&mut self, d: usize, metric: Metric, linkage: Linkage) {
        let matrix = &self.merged.dataset(d).matrix;
        let distances = condensed_distances(matrix, metric);
        let tree = cluster_condensed(distances.clone(), linkage);
        let (order, _flips) = improve_order(&tree, &distances, 2);
        let mut pos = vec![0usize; order.len()];
        for (display, &row) in order.iter().enumerate() {
            pos[row] = display;
        }
        self.display_order[d] = order;
        self.display_pos[d] = pos;
        self.gene_trees[d] = Some(tree);
    }

    /// Cluster every dataset with the session's current cluster settings
    /// (the microarray defaults — Pearson distance, average linkage —
    /// unless changed via [`Session::set_metric`] / [`Session::set_linkage`]).
    pub fn cluster_all(&mut self) {
        let (metric, linkage) = self.cluster_settings();
        for d in 0..self.n_datasets() {
            self.cluster_dataset(d, metric, linkage);
        }
    }

    /// Current `(metric, linkage)` pair used by parameterless clustering.
    pub fn cluster_settings(&self) -> (Metric, Linkage) {
        (self.metric, self.linkage)
    }

    /// Set the distance metric for subsequent parameterless clustering.
    /// Already-clustered datasets keep their trees until re-clustered.
    pub fn set_metric(&mut self, metric: Metric) {
        self.metric = metric;
    }

    /// Set the linkage criterion for subsequent parameterless clustering.
    /// Already-clustered datasets keep their trees until re-clustered.
    pub fn set_linkage(&mut self, linkage: Linkage) {
        self.linkage = linkage;
    }

    /// Array (condition) dendrogram of dataset `d`, if clustered.
    pub fn array_tree(&self, d: usize) -> Option<&ClusterTree> {
        self.array_trees[d].as_ref()
    }

    /// Display column → matrix column mapping for dataset `d`.
    pub fn col_order(&self, d: usize) -> &[usize] {
        &self.col_order[d]
    }

    /// Hierarchically cluster dataset `d`'s **conditions** (the array tree
    /// of Figure 2) and reorder its display columns to the dendrogram
    /// leaf order. Uses the transposed matrix under the same metric.
    pub fn cluster_arrays(&mut self, d: usize, metric: Metric, linkage: Linkage) {
        let t = self.merged.dataset(d).matrix.transpose();
        let distances = condensed_distances(&t, metric);
        let tree = cluster_condensed(distances.clone(), linkage);
        let (order, _flips) = improve_order(&tree, &distances, 2);
        self.col_order[d] = order;
        self.array_trees[d] = Some(tree);
    }

    /// Export dataset `d` as a clustered-data-table bundle: `(cdt, gtr,
    /// atr)` texts, rows in gene-tree order and columns in array-tree
    /// order, with `GENE<i>X` / `ARRY<j>X` identities linking them — the
    /// TreeView-compatible persistence of a clustered pane. Tree files are
    /// `None` for axes that have not been clustered.
    pub fn export_clustered_cdt(&self, d: usize) -> (String, Option<String>, Option<String>) {
        let ds = self.merged.dataset(d);
        let row_order = &self.display_order[d];
        let col_order = &self.col_order[d];
        let reordered = ds
            .subset_rows(row_order, ds.name.clone())
            .expect("display order in bounds");
        let reordered = Dataset::new(
            reordered.name.clone(),
            reordered
                .matrix
                .select_cols(col_order)
                .expect("col order in bounds"),
            reordered.genes.clone(),
            col_order
                .iter()
                .map(|&c| ds.conditions[c].clone())
                .collect(),
        )
        .expect("shapes agree");
        let gene_leaf = self.gene_trees[d].as_ref().map(|_| row_order.as_slice());
        let array_leaf = self.array_trees[d].as_ref().map(|_| col_order.as_slice());
        let cdt = fv_formats::cdt::write_cdt(&reordered, gene_leaf, array_leaf);
        let gtr = self.gene_trees[d]
            .as_ref()
            .map(|t| fv_formats::tree_files::write_tree(t, fv_formats::tree_files::GENE_PREFIX));
        let atr = self.array_trees[d]
            .as_ref()
            .map(|t| fv_formats::tree_files::write_tree(t, fv_formats::tree_files::ARRAY_PREFIX));
        (cdt, gtr, atr)
    }

    // ── selection ───────────────────────────────────────────────────────

    /// Current selection.
    pub fn selection(&self) -> Option<&Selection> {
        self.selection.as_ref()
    }

    /// Replace the selection.
    pub fn set_selection(&mut self, sel: Selection) {
        self.scroll = 0;
        self.selection = Some(sel);
    }

    /// Clear the selection.
    pub fn clear_selection(&mut self) {
        self.selection = None;
        self.scroll = 0;
    }

    /// Select a display-row range of dataset `d`'s global view (the mouse
    /// highlight path of Section 2). Rows are display rows; the selection
    /// preserves their on-screen order. Returns the selection size.
    pub fn select_region(&mut self, d: usize, start_row: usize, end_row: usize) -> usize {
        let n = self.display_order[d].len();
        let start = start_row.min(n);
        let end = end_row.min(n);
        let genes: Vec<GeneId> = (start..end)
            .filter_map(|dr| self.gene_at_display_row(d, dr))
            .collect();
        let sel = Selection::new(
            genes,
            SelectionOrigin::Region {
                dataset: d,
                start_row: start,
                end_row: end,
            },
        );
        let len = sel.len();
        self.set_selection(sel);
        len
    }

    /// Select genes by name (exact id/common-name match through the
    /// universe). Unknown names are dropped. Returns the selection size.
    pub fn select_genes(&mut self, names: &[&str], origin: SelectionOrigin) -> usize {
        let genes = self.merged.resolve_genes(names);
        let sel = Selection::new(genes, origin);
        let len = sel.len();
        self.set_selection(sel);
        len
    }

    /// Search every dataset's gene metadata (substring, case-insensitive)
    /// and select the union of hits. Returns the selection size.
    pub fn search_and_select(&mut self, query: &str) -> usize {
        let genes = crate::search::search_genes(&self.merged, query);
        let sel = Selection::new(
            genes,
            SelectionOrigin::Search {
                query: query.to_string(),
            },
        );
        let len = sel.len();
        self.set_selection(sel);
        len
    }

    // ── synchronization & scrolling ─────────────────────────────────────

    /// Whether synchronized viewing is on.
    pub fn sync_enabled(&self) -> bool {
        self.sync_enabled
    }

    /// Toggle synchronized viewing; returns the new state.
    pub fn toggle_sync(&mut self) -> bool {
        self.sync_enabled = !self.sync_enabled;
        self.sync_enabled
    }

    /// Set synchronized viewing.
    pub fn set_sync(&mut self, on: bool) {
        self.sync_enabled = on;
    }

    /// Shared zoom scroll offset (rows).
    pub fn scroll(&self) -> usize {
        self.scroll
    }

    /// Scroll the synchronized zoom views by `delta` rows, clamped to the
    /// selection size.
    pub fn scroll_by(&mut self, delta: i64) {
        let max = self
            .selection
            .as_ref()
            .map_or(0, |s| s.len().saturating_sub(1));
        let next = self.scroll as i64 + delta;
        self.scroll = next.clamp(0, max as i64) as usize;
    }

    // ── export ──────────────────────────────────────────────────────────

    /// Export the current selection as a plain gene list.
    pub fn export_gene_list(&self) -> String {
        match &self.selection {
            Some(sel) => fv_formats::export::export_gene_list(&self.merged, sel.genes()),
            None => String::new(),
        }
    }

    /// Export the current selection's expression across all datasets.
    pub fn export_merged_selection(&self) -> String {
        match &self.selection {
            Some(sel) => fv_formats::export::export_merged(&self.merged, sel.genes()),
            None => String::new(),
        }
    }

    /// Load the current selection back in as a new dataset drawn from
    /// dataset `d` (Section 2's "loaded into the ForestView display as a
    /// dataset"). Returns the new dataset index.
    pub fn selection_as_new_dataset(
        &mut self,
        d: usize,
        name: &str,
    ) -> Result<Option<usize>, ExprError> {
        let Some(sel) = &self.selection else {
            return Ok(None);
        };
        let ds = fv_formats::export::selection_as_dataset(&self.merged, d, sel.genes(), name);
        Ok(Some(self.load_dataset(ds)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::matrix::ExprMatrix;
    use fv_expr::meta::{ConditionMeta, GeneMeta};

    fn ds(name: &str, ids: &[&str], vals: &[f32], n_cols: usize) -> Dataset {
        let m = ExprMatrix::from_rows(ids.len(), n_cols, vals).unwrap();
        let genes = ids
            .iter()
            .map(|&i| GeneMeta::new(i, format!("N{i}"), format!("annotation for {i}")))
            .collect();
        let conds = (0..n_cols)
            .map(|c| ConditionMeta::new(format!("c{c}")))
            .collect();
        Dataset::new(name, m, genes, conds).unwrap()
    }

    fn session() -> Session {
        let mut s = Session::new();
        s.load_dataset(ds(
            "a",
            &["G1", "G2", "G3", "G4"],
            &[
                1.0, 2.0, 3.0, 4.0, //
                1.1, 2.1, 3.1, 4.1, //
                4.0, 3.0, 2.0, 1.0, //
                4.2, 3.1, 2.2, 1.1,
            ],
            4,
        ))
        .unwrap();
        s.load_dataset(ds(
            "b",
            &["G3", "G1", "G5"],
            &[1.0, 2.0, 3.0, 3.0, 2.0, 1.0, 0.5, 0.5, 0.6],
            3,
        ))
        .unwrap();
        s
    }

    #[test]
    fn load_assigns_identity_order() {
        let s = session();
        assert_eq!(s.n_datasets(), 2);
        assert_eq!(s.display_order(0), &[0, 1, 2, 3]);
        assert_eq!(s.dataset_order(), &[0, 1]);
    }

    #[test]
    fn cluster_reorders_display() {
        let mut s = session();
        s.cluster_dataset(0, Metric::Pearson, Linkage::Average);
        let order = s.display_order(0).to_vec();
        // correlated pairs (0,1) and (2,3) must be adjacent
        let pos: Vec<usize> = (0..4)
            .map(|r| order.iter().position(|&x| x == r).unwrap())
            .collect();
        assert_eq!((pos[0] as i64 - pos[1] as i64).abs(), 1);
        assert_eq!((pos[2] as i64 - pos[3] as i64).abs(), 1);
        assert!(s.gene_tree(0).is_some());
        // display_pos is the inverse permutation
        for r in 0..4 {
            assert_eq!(order[s.display_pos_of_row(0, r)], r);
        }
    }

    #[test]
    fn select_region_maps_display_rows_to_genes() {
        let mut s = session();
        let n = s.select_region(0, 1, 3);
        assert_eq!(n, 2);
        let sel = s.selection().unwrap();
        let names: Vec<&str> = sel
            .genes()
            .iter()
            .map(|&g| s.merged().universe().name(g))
            .collect();
        assert_eq!(names, vec!["G2", "G3"]);
    }

    #[test]
    fn select_region_clamps_range() {
        let mut s = session();
        let n = s.select_region(1, 0, 99);
        assert_eq!(n, 3);
    }

    #[test]
    fn select_genes_drops_unknown() {
        let mut s = session();
        let n = s.select_genes(&["G1", "NOPE", "G5"], SelectionOrigin::List);
        assert_eq!(n, 2);
    }

    #[test]
    fn search_and_select_across_datasets() {
        let mut s = session();
        // "G3" appears in both datasets; union should contain it once.
        let n = s.search_and_select("G3");
        assert_eq!(n, 1);
        // annotation text matches everything containing "annotation"
        let n_all = s.search_and_select("annotation for");
        assert_eq!(n_all, 5); // G1..G5 across both datasets
    }

    #[test]
    fn sync_toggle_and_scroll_clamp() {
        let mut s = session();
        assert!(s.sync_enabled());
        assert!(!s.toggle_sync());
        s.set_sync(true);
        assert!(s.sync_enabled());

        s.select_region(0, 0, 4);
        s.scroll_by(2);
        assert_eq!(s.scroll(), 2);
        s.scroll_by(100);
        assert_eq!(s.scroll(), 3); // clamped to len-1
        s.scroll_by(-100);
        assert_eq!(s.scroll(), 0);
    }

    #[test]
    fn new_selection_resets_scroll() {
        let mut s = session();
        s.select_region(0, 0, 4);
        s.scroll_by(3);
        s.select_region(0, 0, 2);
        assert_eq!(s.scroll(), 0);
    }

    #[test]
    fn export_gene_list_matches_selection() {
        let mut s = session();
        s.select_genes(&["G3", "G1"], SelectionOrigin::List);
        assert_eq!(s.export_gene_list(), "G3\nG1\n");
        s.clear_selection();
        assert_eq!(s.export_gene_list(), "");
    }

    #[test]
    fn export_merged_selection_has_all_datasets() {
        let mut s = session();
        s.select_genes(&["G1"], SelectionOrigin::List);
        let text = s.export_merged_selection();
        let header = text.lines().next().unwrap();
        assert!(header.contains("a::c0"));
        assert!(header.contains("b::c2"));
    }

    #[test]
    fn selection_as_new_dataset_loads_pane() {
        let mut s = session();
        s.select_genes(&["G1", "G3"], SelectionOrigin::List);
        let idx = s.selection_as_new_dataset(0, "picked").unwrap().unwrap();
        assert_eq!(idx, 2);
        assert_eq!(s.n_datasets(), 3);
        assert_eq!(s.dataset(2).n_genes(), 2);
        assert_eq!(s.dataset_order(), &[0, 1, 2]);
    }

    #[test]
    fn set_dataset_order_validates() {
        let mut s = session();
        s.set_dataset_order(vec![1, 0]);
        assert_eq!(s.dataset_order(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_dataset_order_panics() {
        let mut s = session();
        s.set_dataset_order(vec![0, 0]);
    }

    #[test]
    fn cluster_arrays_reorders_columns() {
        let mut s = Session::new();
        // 4 conditions: c0≈c3 and c1≈c2 (columns as condition profiles)
        let m = ExprMatrix::from_rows(
            4,
            4,
            &[
                1.0, 5.0, 5.1, 1.1, //
                2.0, 7.0, 7.2, 2.1, //
                3.0, 4.0, 4.1, 3.1, //
                0.0, 9.0, 9.1, 0.2,
            ],
        )
        .unwrap();
        s.load_dataset(Dataset::with_default_meta("d", m)).unwrap();
        assert_eq!(s.col_order(0), &[0, 1, 2, 3]);
        s.cluster_arrays(0, Metric::Euclidean, Linkage::Average);
        assert!(s.array_tree(0).is_some());
        let order = s.col_order(0).to_vec();
        // similar condition pairs end up adjacent
        let pos: Vec<usize> = (0..4)
            .map(|c| order.iter().position(|&x| x == c).unwrap())
            .collect();
        assert_eq!(
            (pos[0] as i64 - pos[3] as i64).abs(),
            1,
            "c0/c3 adjacent: {order:?}"
        );
        assert_eq!(
            (pos[1] as i64 - pos[2] as i64).abs(),
            1,
            "c1/c2 adjacent: {order:?}"
        );
    }

    #[test]
    fn export_clustered_cdt_roundtrips() {
        let mut s = session();
        s.cluster_dataset(0, Metric::Pearson, Linkage::Average);
        s.cluster_arrays(0, Metric::Euclidean, Linkage::Average);
        let (cdt, gtr, atr) = s.export_clustered_cdt(0);
        assert!(gtr.is_some() && atr.is_some());
        let parsed = fv_formats::cdt::parse_cdt("a", &cdt).unwrap();
        assert_eq!(parsed.gene_leaf.as_deref(), Some(s.display_order(0)));
        assert_eq!(parsed.array_leaf.as_deref(), Some(s.col_order(0)));
        // trees parse against the CDT dimensions
        let gt = fv_formats::tree_files::parse_tree(
            &gtr.unwrap(),
            fv_formats::tree_files::GENE_PREFIX,
            parsed.dataset.n_genes(),
        )
        .unwrap();
        assert_eq!(gt.leaf_order(), s.display_order(0));
        let at = fv_formats::tree_files::parse_tree(
            &atr.unwrap(),
            fv_formats::tree_files::ARRAY_PREFIX,
            parsed.dataset.n_conditions(),
        )
        .unwrap();
        assert_eq!(at.n_leaves(), 4);
        // first CDT row is the gene that sits first in display order
        let first_orig = s.display_order(0)[0];
        assert_eq!(
            parsed.dataset.genes[0].id,
            s.dataset(0).genes[first_orig].id
        );
    }

    #[test]
    fn export_unclustered_cdt_has_no_trees() {
        let s = session();
        let (cdt, gtr, atr) = s.export_clustered_cdt(1);
        assert!(gtr.is_none() && atr.is_none());
        assert!(cdt.starts_with("ID\tNAME"));
    }

    #[test]
    fn gene_at_display_row_resolves() {
        let s = session();
        let g = s.gene_at_display_row(1, 0).unwrap();
        assert_eq!(s.merged().universe().name(g), "G3");
        assert!(s.gene_at_display_row(1, 10).is_none());
    }
}
