//! Cross-dataset gene search.
//!
//! "Another method is to search over the gene annotation information by
//! entering a list of search criteria. The search is conducted across all
//! datasets and the synchronized results are displayed." (paper, Section 2)
//!
//! A query hits a gene if it is a (case-insensitive) substring of the
//! gene's id, common name, or annotation in *any* dataset; multi-term
//! queries (whitespace-separated) select the union of per-term hits,
//! mirroring the "list of search criteria" the paper describes.

use fv_expr::merged::MergedDatasets;
use fv_expr::universe::GeneId;

/// Genes matching `query` in any dataset, ordered by (dataset, row) of
/// first match, deduplicated.
pub fn search_genes(merged: &MergedDatasets, query: &str) -> Vec<GeneId> {
    let mut out: Vec<GeneId> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for d in 0..merged.n_datasets() {
        let hits = merged.dataset(d).search_genes(query);
        for row in hits {
            if let Some(g) = merged.universe().lookup(&merged.dataset(d).genes[row].id) {
                if seen.insert(g) {
                    out.push(g);
                }
            }
        }
    }
    out
}

/// Union of [`search_genes`] over whitespace-separated terms.
pub fn search_gene_list(merged: &MergedDatasets, criteria: &str) -> Vec<GeneId> {
    let mut out: Vec<GeneId> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for term in criteria.split_whitespace() {
        for g in search_genes(merged, term) {
            if seen.insert(g) {
                out.push(g);
            }
        }
    }
    out
}

/// Per-dataset matching rows (for highlighting hit positions pane by pane).
pub fn search_rows_per_dataset(merged: &MergedDatasets, query: &str) -> Vec<Vec<usize>> {
    merged.search_all(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::matrix::ExprMatrix;
    use fv_expr::meta::{ConditionMeta, GeneMeta};
    use fv_expr::Dataset;

    fn merged() -> MergedDatasets {
        let mut m = MergedDatasets::new();
        let mk = |name: &str, genes: Vec<GeneMeta>| {
            let mat = ExprMatrix::zeros(genes.len(), 1);
            Dataset::new(name, mat, genes, vec![ConditionMeta::new("c")]).unwrap()
        };
        m.add(mk(
            "a",
            vec![
                GeneMeta::new("YAL005C", "SSA1", "cytoplasmic chaperone"),
                GeneMeta::new("YBR072W", "HSP26", "small heat shock protein"),
            ],
        ))
        .unwrap();
        m.add(mk(
            "b",
            vec![
                GeneMeta::new("YBR072W", "HSP26", "heat shock"),
                GeneMeta::new("YLL026W", "HSP104", "disaggregase heat shock"),
            ],
        ))
        .unwrap();
        m
    }

    #[test]
    fn search_unions_across_datasets() {
        let m = merged();
        let hits = search_genes(&m, "heat shock");
        let names: Vec<&str> = hits.iter().map(|&g| m.universe().name(g)).collect();
        assert_eq!(names, vec!["YBR072W", "YLL026W"]);
    }

    #[test]
    fn search_dedups_shared_genes() {
        let m = merged();
        let hits = search_genes(&m, "HSP26");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn search_by_id_and_name() {
        let m = merged();
        assert_eq!(search_genes(&m, "yal005c").len(), 1);
        assert_eq!(search_genes(&m, "ssa").len(), 1);
        assert!(search_genes(&m, "zzz").is_empty());
    }

    #[test]
    fn multi_term_criteria_union() {
        let m = merged();
        let hits = search_gene_list(&m, "SSA1 HSP104");
        assert_eq!(hits.len(), 2);
        // order follows term order then dataset order
        let names: Vec<&str> = hits.iter().map(|&g| m.universe().name(g)).collect();
        assert_eq!(names, vec!["YAL005C", "YLL026W"]);
    }

    #[test]
    fn rows_per_dataset_positions() {
        let m = merged();
        let rows = search_rows_per_dataset(&m, "heat shock");
        assert_eq!(rows[0], vec![1]);
        assert_eq!(rows[1], vec![0, 1]);
    }

    #[test]
    fn empty_query_no_hits() {
        let m = merged();
        assert!(search_genes(&m, "").is_empty());
        assert!(search_gene_list(&m, "   ").is_empty());
    }
}
