//! The gene selection model.
//!
//! Section 2 lists three ways a gene subset is chosen: mouse-highlighting a
//! region of one dataset's global view, searching annotations across all
//! datasets, and accepting a list from an analysis application (SPELL,
//! GOLEM, or any exported list). A [`Selection`] records both the genes
//! (as universe ids, so it is meaningful in every pane) and its origin,
//! which the UI displays and EXPERIMENTS.md logs.

use fv_expr::universe::GeneId;

/// Where a selection came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionOrigin {
    /// Mouse region in one dataset's global view: `(dataset, row range)`.
    Region {
        /// Source dataset index.
        dataset: usize,
        /// Start display row (inclusive).
        start_row: usize,
        /// End display row (exclusive).
        end_row: usize,
    },
    /// Annotation/name search.
    Search {
        /// The query string.
        query: String,
    },
    /// Provided by an analysis tool ("the most adaptive method is to
    /// provide selection information from an analysis application").
    Analysis {
        /// Tool name, e.g. `SPELL`.
        tool: String,
    },
    /// Explicit gene list (import/export path).
    List,
}

/// An ordered set of selected genes.
///
/// Order matters: the zoom views render genes in selection order when
/// synchronization is on, so the order is part of what the user sees.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    genes: Vec<GeneId>,
    /// Provenance.
    pub origin: SelectionOrigin,
}

impl Selection {
    /// Build a selection, deduplicating while preserving first-seen order.
    pub fn new(genes: Vec<GeneId>, origin: SelectionOrigin) -> Self {
        let mut seen = std::collections::HashSet::new();
        let genes = genes.into_iter().filter(|g| seen.insert(*g)).collect();
        Selection { genes, origin }
    }

    /// The selected genes in order.
    pub fn genes(&self) -> &[GeneId] {
        &self.genes
    }

    /// Number of genes.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Whether a gene is selected.
    pub fn contains(&self, g: GeneId) -> bool {
        self.genes.contains(&g)
    }

    /// Union with another gene list (preserving this selection's order,
    /// appending new genes). Origin becomes `List`.
    pub fn extend(&mut self, more: &[GeneId]) {
        for &g in more {
            if !self.contains(g) {
                self.genes.push(g);
            }
        }
        self.origin = SelectionOrigin::List;
    }

    /// Keep only genes also in `keep` (order preserved).
    pub fn intersect(&mut self, keep: &[GeneId]) {
        let set: std::collections::HashSet<GeneId> = keep.iter().copied().collect();
        self.genes.retain(|g| set.contains(g));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u32) -> GeneId {
        GeneId(i)
    }

    #[test]
    fn new_dedups_preserving_order() {
        let s = Selection::new(vec![g(3), g(1), g(3), g(2), g(1)], SelectionOrigin::List);
        assert_eq!(s.genes(), &[g(3), g(1), g(2)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contains_and_empty() {
        let s = Selection::new(vec![g(5)], SelectionOrigin::List);
        assert!(s.contains(g(5)));
        assert!(!s.contains(g(6)));
        assert!(!s.is_empty());
        let e = Selection::new(vec![], SelectionOrigin::List);
        assert!(e.is_empty());
    }

    #[test]
    fn extend_appends_new_only() {
        let mut s = Selection::new(
            vec![g(1), g(2)],
            SelectionOrigin::Search {
                query: "hsp".into(),
            },
        );
        s.extend(&[g(2), g(3)]);
        assert_eq!(s.genes(), &[g(1), g(2), g(3)]);
        assert_eq!(s.origin, SelectionOrigin::List);
    }

    #[test]
    fn intersect_filters_in_order() {
        let mut s = Selection::new(vec![g(1), g(2), g(3), g(4)], SelectionOrigin::List);
        s.intersect(&[g(4), g(2)]);
        assert_eq!(s.genes(), &[g(2), g(4)]);
    }

    #[test]
    fn origin_region_fields() {
        let s = Selection::new(
            vec![g(0)],
            SelectionOrigin::Region {
                dataset: 1,
                start_row: 10,
                end_row: 20,
            },
        );
        match s.origin {
            SelectionOrigin::Region {
                dataset,
                start_row,
                end_row,
            } => {
                assert_eq!((dataset, start_row, end_row), (1, 10, 20));
            }
            _ => panic!("wrong origin"),
        }
    }
}
