//! # ForestView — scalable, dynamic analysis and visualization for genomic datasets
//!
//! This crate is the paper's primary contribution (Wallace et al., IPPS
//! 2007): a multi-dataset microarray visualization and analysis application
//! that "allows researchers to dynamically view and explore multiple
//! microarray datasets at once, to see context within those datasets, to
//! make comparisons between datasets, and provides an excellent platform
//! for expansion with additional tools and techniques" (Section 1).
//!
//! The architecture follows Figure 1 exactly:
//!
//! ```text
//!                     User Interface            →  [`command`]
//!   Find genes │ Order datasets │ Export │ Search   [`search`], [`ordering`], [`export`]
//!                  Dataset Analysis             →  [`integrate`] (SPELL, GOLEM)
//!              Visualization Synchronization    →  [`sync`]
//!          Gene Visualization 1 … n (panes)     →  [`pane`], [`renderer`]
//!              Merged Dataset Interface         →  fv-expr's `MergedDatasets`
//!                Dataset 1 … Dataset n          →  fv-expr / fv-formats
//! ```
//!
//! The [`session::Session`] object owns the whole stack. Rendering targets
//! either a desktop-sized framebuffer or a tiled display wall (`fv-wall`),
//! scaling "from a desktop/laptop setting … to very large-format display
//! devices" (Section 1).
//!
//! ## Quickstart
//!
//! ```
//! use forestview::session::Session;
//! use fv_expr::{Dataset, ExprMatrix};
//!
//! let mut session = Session::new();
//! let m = ExprMatrix::from_rows(3, 2, &[1.0, -1.0, 0.5, 0.2, -0.8, 0.9]).unwrap();
//! session.load_dataset(Dataset::with_default_meta("demo", m)).unwrap();
//! session.cluster_all();
//! let hits = session.search_and_select("G1");
//! assert_eq!(hits, 1);
//! let fb = forestview::renderer::render_desktop(&session, 320, 240);
//! assert_eq!(fb.width(), 320);
//! ```

#![forbid(unsafe_code)]

pub mod command;
pub mod export;
pub mod integrate;
pub mod layout;
pub mod ordering;
pub mod pane;
pub mod prefs;
pub mod renderer;
pub mod search;
pub mod selection;
pub mod session;
pub mod sync;

pub use selection::{Selection, SelectionOrigin};
pub use session::Session;
