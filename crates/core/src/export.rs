//! Session-level exports and textual reports.
//!
//! Beyond the raw exports in `fv-formats` (gene lists, merged tables),
//! examples and the benchmark harness need a human-readable summary of a
//! session — what is loaded, what is selected, what the panes show — to
//! print alongside the image artifacts.

use crate::session::Session;
use crate::sync;

/// One-paragraph textual summary of the session state.
pub fn session_summary(session: &Session) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "ForestView session: {} dataset(s), {} genes in universe, {} total measurements\n",
        session.n_datasets(),
        session.merged().universe().len(),
        session.merged().total_measurements(),
    ));
    for &d in session.dataset_order() {
        let ds = session.dataset(d);
        out.push_str(&format!(
            "  pane {:>2}: {:<24} {:>6} genes x {:>4} conditions, {} clustered\n",
            d,
            ds.name,
            ds.n_genes(),
            ds.n_conditions(),
            if session.gene_tree(d).is_some() {
                ""
            } else {
                "not"
            },
        ));
    }
    match session.selection() {
        Some(sel) => {
            out.push_str(&format!(
                "  selection: {} genes ({:?}), sync {}\n",
                sel.len(),
                sel.origin,
                if session.sync_enabled() { "on" } else { "off" },
            ));
            for &d in session.dataset_order() {
                let present = sync::zoom_rows(session, d)
                    .iter()
                    .filter(|r| r.is_some())
                    .count();
                out.push_str(&format!(
                    "    {}: {present}/{} selected genes measured\n",
                    session.dataset(d).name,
                    sel.len(),
                ));
            }
        }
        None => out.push_str("  selection: none\n"),
    }
    out
}

/// Tab-separated table of the current selection's per-dataset coverage —
/// the numbers behind the synchronized zoom views.
pub fn selection_coverage_tsv(session: &Session) -> String {
    let mut out = String::from("dataset\tmeasured\tselected\tcoverage\n");
    let Some(sel) = session.selection() else {
        return out;
    };
    for &d in session.dataset_order() {
        let present = sync::zoom_rows(session, d)
            .iter()
            .filter(|r| r.is_some())
            .count();
        let frac = if sel.is_empty() {
            0.0
        } else {
            present as f64 / sel.len() as f64
        };
        out.push_str(&format!(
            "{}\t{present}\t{}\t{frac:.3}\n",
            session.dataset(d).name,
            sel.len(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionOrigin;
    use fv_expr::{Dataset, ExprMatrix};

    fn session() -> Session {
        let mut s = Session::new();
        s.load_dataset(Dataset::with_default_meta("one", ExprMatrix::zeros(5, 3)))
            .unwrap();
        s.load_dataset(Dataset::with_default_meta("two", ExprMatrix::zeros(4, 2)))
            .unwrap();
        s
    }

    #[test]
    fn summary_mentions_datasets() {
        let s = session();
        let text = session_summary(&s);
        assert!(text.contains("2 dataset(s)"));
        assert!(text.contains("one"));
        assert!(text.contains("two"));
        assert!(text.contains("selection: none"));
    }

    #[test]
    fn summary_reports_selection() {
        let mut s = session();
        s.select_genes(&["G1", "G2"], SelectionOrigin::List);
        let text = session_summary(&s);
        assert!(text.contains("selection: 2 genes"));
        assert!(text.contains("sync on"));
    }

    #[test]
    fn coverage_tsv_shape() {
        let mut s = session();
        s.select_genes(&["G0", "G4"], SelectionOrigin::List);
        let tsv = selection_coverage_tsv(&s);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3);
        // "two" only has G0..G3 → 1 of 2 present
        assert!(lines[2].starts_with("two\t1\t2\t0.5"));
    }

    #[test]
    fn coverage_empty_without_selection() {
        let s = session();
        let tsv = selection_coverage_tsv(&s);
        assert_eq!(tsv.lines().count(), 1);
    }
}
