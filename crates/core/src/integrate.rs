//! Integration of SPELL and GOLEM into the ForestView session — Section 3
//! of the paper, and the content of Figure 6.
//!
//! The flows implemented here are the ones the paper describes verbatim:
//!
//! - **SPELL → ForestView**: run a similarity search seeded from the
//!   current selection; order the panes "in decreasing order of relevance
//!   to the query"; select the query plus "the top n genes … highlighted
//!   within each dataset".
//! - **ForestView → GOLEM**: take the selected gene list (instead of the
//!   export/re-import dance the paper laments) and compute statistical
//!   enrichment plus the local exploration map around the top hit.

use crate::ordering::{apply_order, OrderPolicy};
use crate::selection::{Selection, SelectionOrigin};
use crate::session::Session;
use fv_golem::layout::{layout_map, MapLayout};
use fv_golem::map::{build_local_map, LocalMap};
use fv_golem::{enrich, EnrichmentConfig, EnrichmentResult};
use fv_ontology::annotations::PropagatedAnnotations;
use fv_ontology::dag::OntologyDag;
use fv_spell::{SpellConfig, SpellEngine, SpellResult};

/// The analysis engines attached to a session (Figure 1's "Data Search
/// (e.g. SPELL)" and "Other Analysis (e.g. GOLEM)" boxes).
pub struct AnalysisSuite {
    /// SPELL compendium index over the session's datasets.
    pub spell: SpellEngine,
    /// The ontology GOLEM analyzes against.
    pub ontology: OntologyDag,
    /// Propagated gene↔term annotations.
    pub annotations: PropagatedAnnotations,
}

impl AnalysisSuite {
    /// Index every dataset of the session into a SPELL engine and attach
    /// the ontology.
    pub fn build(
        session: &Session,
        spell_config: SpellConfig,
        ontology: OntologyDag,
        annotations: PropagatedAnnotations,
    ) -> AnalysisSuite {
        let mut spell = SpellEngine::new(spell_config);
        for d in 0..session.n_datasets() {
            spell.add_dataset(session.dataset(d));
        }
        spell.finalize();
        AnalysisSuite {
            spell,
            ontology,
            annotations,
        }
    }

    /// Run SPELL seeded from the current selection; reorder panes by
    /// relevance and select the query plus the `top_n` best new genes.
    /// Returns the raw result (`None` if there is no selection).
    pub fn spell_from_selection(&self, session: &mut Session, top_n: usize) -> Option<SpellResult> {
        let sel = session.selection()?;
        let names: Vec<String> = sel
            .genes()
            .iter()
            .map(|&g| session.merged().universe().name(g).to_string())
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let result = self.spell.query(&refs);

        // Pane order ← dataset relevance (match engine datasets to session
        // datasets by name; engine indexed them in session order).
        let mut scores = vec![0.0f32; session.n_datasets()];
        for rel in &result.datasets {
            if let Some(d) = session.merged().index_of(&rel.name) {
                scores[d] = rel.weight;
            }
        }
        apply_order(session, &OrderPolicy::ByRelevance(scores));

        // Selection ← query + top new genes, in rank order.
        let mut selected: Vec<&str> = refs.clone();
        let top: Vec<String> = result
            .top_new_genes(top_n)
            .iter()
            .map(|g| g.gene.clone())
            .collect();
        selected.extend(top.iter().map(|s| s.as_str()));
        let ids = session.merged().resolve_genes(&selected);
        session.set_selection(Selection::new(
            ids,
            SelectionOrigin::Analysis {
                tool: "SPELL".to_string(),
            },
        ));
        Some(result)
    }

    /// GOLEM enrichment of the current selection. Empty when nothing is
    /// selected.
    pub fn enrich_selection(
        &self,
        session: &Session,
        config: &EnrichmentConfig,
    ) -> Vec<EnrichmentResult> {
        let Some(sel) = session.selection() else {
            return Vec::new();
        };
        let names: Vec<String> = sel
            .genes()
            .iter()
            .map(|&g| session.merged().universe().name(g).to_string())
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        enrich(&self.ontology, &self.annotations, &refs, config)
    }

    /// Build the local exploration map around the top enrichment hit.
    /// Returns `None` when the enrichment list is empty.
    pub fn local_map_for(
        &self,
        enrichment: &[EnrichmentResult],
        radius: u32,
        barycenter_passes: usize,
    ) -> Option<(LocalMap, MapLayout)> {
        let focus = enrichment.first()?.term;
        let map = build_local_map(&self.ontology, focus, radius, enrichment);
        let layout = layout_map(&map, barycenter_passes);
        Some((map, layout))
    }

    /// GOLEM → ForestView: select every session gene annotated (after
    /// propagation) to `term` — clicking a node in the local map to see
    /// its genes in the synchronized panes. Returns the selection size.
    pub fn select_term_genes(
        &self,
        session: &mut Session,
        term: fv_ontology::term::TermId,
    ) -> usize {
        let names: Vec<String> = self
            .annotations
            .genes_for(term)
            .iter()
            .map(|g| g.to_string())
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let ids = session.merged().resolve_genes(&refs);
        let sel = Selection::new(
            ids,
            SelectionOrigin::Analysis {
                tool: format!("GOLEM:{}", self.ontology.term(term).accession),
            },
        );
        let n = sel.len();
        session.set_selection(sel);
        n
    }

    /// Iterative SPELL refinement: run the query, absorb the top `expand`
    /// new genes into the query, and repeat for `rounds` rounds — the
    /// exploratory loop the SPELL paper describes for growing a pathway
    /// from a small seed. Returns the final result and the grown query.
    pub fn spell_iterative(
        &self,
        seed: &[&str],
        rounds: usize,
        expand: usize,
    ) -> (SpellResult, Vec<String>) {
        let mut query: Vec<String> = seed.iter().map(|s| s.to_string()).collect();
        let mut result = self.spell.query(seed);
        for _ in 0..rounds {
            let additions: Vec<String> = result
                .top_new_genes(expand)
                .iter()
                .map(|g| g.gene.clone())
                .collect();
            if additions.is_empty() {
                break;
            }
            for a in additions {
                if !query.iter().any(|q| q.eq_ignore_ascii_case(&a)) {
                    query.push(a);
                }
            }
            let refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
            result = self.spell.query(&refs);
        }
        (result, query)
    }

    /// The full Figure-6 pipeline: SPELL from selection → pane reorder +
    /// top-gene selection → GOLEM enrichment of the result → local map.
    pub fn integrated_analysis(
        &self,
        session: &mut Session,
        top_n: usize,
        enrich_config: &EnrichmentConfig,
        map_radius: u32,
    ) -> Option<IntegratedResult> {
        let spell = self.spell_from_selection(session, top_n)?;
        let enrichment = self.enrich_selection(session, enrich_config);
        let map = self.local_map_for(&enrichment, map_radius, 2);
        Some(IntegratedResult {
            spell,
            enrichment,
            map,
        })
    }
}

/// Everything the integrated (Figure 6) workflow produces.
pub struct IntegratedResult {
    /// SPELL's ordered datasets + genes.
    pub spell: SpellResult,
    /// GOLEM enrichment of the post-search selection.
    pub enrichment: Vec<EnrichmentResult>,
    /// Local exploration map around the top term (if any enrichment).
    pub map: Option<(LocalMap, MapLayout)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_synth::dataset::GenConfig;
    use fv_synth::modules::plant_modules;
    use fv_synth::names::orf_name;
    use fv_synth::ontogen::generate_ontology;
    use fv_synth::scenario::Scenario;

    fn setup() -> (Session, AnalysisSuite, fv_synth::modules::GroundTruth) {
        let sc = Scenario::three_datasets(240, 21);
        let truth = sc.truth.clone();
        let mut session = Session::new();
        for ds in sc.datasets {
            session.load_dataset(ds).unwrap();
        }
        let onto = generate_ontology(&truth, 120, 21);
        let prop = onto.annotations.propagate(&onto.dag);
        let suite = AnalysisSuite::build(&session, SpellConfig::default(), onto.dag, prop);
        (session, suite, truth)
    }

    #[test]
    fn spell_from_selection_reorders_and_selects() {
        let (mut session, suite, truth) = setup();
        // Seed with 5 ESR genes.
        let names: Vec<String> = truth.esr_induced()[..5]
            .iter()
            .map(|&g| orf_name(g))
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        session.select_genes(&refs, SelectionOrigin::List);
        let result = suite.spell_from_selection(&mut session, 10).unwrap();
        // selection grew to query + up to 10 new genes
        let sel = session.selection().unwrap();
        assert!(sel.len() > 5 && sel.len() <= 15);
        assert_eq!(
            sel.origin,
            SelectionOrigin::Analysis {
                tool: "SPELL".into()
            }
        );
        // top dataset should be coherent for ESR genes (stress or nutrient)
        assert!(result.datasets[0].weight > 0.0);
        // panes reordered to relevance order
        let first_pane = session.dataset_order()[0];
        assert_eq!(session.dataset(first_pane).name, result.datasets[0].name);
    }

    #[test]
    fn spell_recovers_module_mates() {
        let (mut session, suite, truth) = setup();
        let names: Vec<String> = truth.esr_induced()[..5]
            .iter()
            .map(|&g| orf_name(g))
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        session.select_genes(&refs, SelectionOrigin::List);
        let result = suite.spell_from_selection(&mut session, 20).unwrap();
        let esr: std::collections::HashSet<String> =
            truth.esr_induced().iter().map(|&g| orf_name(g)).collect();
        // Only esr.len() − 5 non-query members exist to recover; perfect
        // recovery places all of them in the top ranks.
        let remaining = esr.len() - 5;
        let top = result.top_new_genes(remaining);
        let hits = top.iter().filter(|g| esr.contains(&g.gene)).count();
        assert!(
            hits + 1 >= remaining,
            "recovered {hits}/{remaining} planted ESR members in the top ranks"
        );
    }

    #[test]
    fn enrich_selection_finds_module_term() {
        let (mut session, suite, truth) = setup();
        let names: Vec<String> = truth.modules[2].genes[..10]
            .iter()
            .map(|&g| orf_name(g))
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        session.select_genes(&refs, SelectionOrigin::List);
        let res = suite.enrich_selection(&session, &EnrichmentConfig::default());
        assert!(!res.is_empty());
        assert_eq!(
            suite.ontology.term(res[0].term).name,
            truth.modules[2].name,
            "top enriched term should be the planted module"
        );
    }

    #[test]
    fn enrich_without_selection_empty() {
        let (session, suite, _) = setup();
        assert!(suite
            .enrich_selection(&session, &EnrichmentConfig::default())
            .is_empty());
    }

    #[test]
    fn local_map_built_around_top_hit() {
        let (mut session, suite, truth) = setup();
        let names: Vec<String> = truth.modules[2].genes[..10]
            .iter()
            .map(|&g| orf_name(g))
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        session.select_genes(&refs, SelectionOrigin::List);
        let res = suite.enrich_selection(&session, &EnrichmentConfig::default());
        let (map, layout) = suite.local_map_for(&res, 2, 2).unwrap();
        assert_eq!(map.focus, res[0].term);
        assert!(map.n_nodes() >= 2);
        assert_eq!(layout.nodes.len(), map.n_nodes());
    }

    #[test]
    fn integrated_pipeline_end_to_end() {
        let (mut session, suite, truth) = setup();
        let names: Vec<String> = truth.esr_induced()[..6]
            .iter()
            .map(|&g| orf_name(g))
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        session.select_genes(&refs, SelectionOrigin::List);
        let out = suite
            .integrated_analysis(&mut session, 15, &EnrichmentConfig::default(), 2)
            .unwrap();
        assert!(!out.spell.genes.is_empty());
        assert!(!out.enrichment.is_empty());
        // the enriched term for an ESR selection should be the ESR term
        assert_eq!(
            suite.ontology.term(out.enrichment[0].term).name,
            truth.modules[0].name
        );
        assert!(out.map.is_some());
    }

    #[test]
    fn select_term_genes_selects_module() {
        let (mut session, suite, truth) = setup();
        // The ESR term annotates exactly the planted ESR-induced genes.
        let esr_term = suite
            .ontology
            .ids()
            .find(|&t| suite.ontology.term(t).name == truth.modules[0].name)
            .unwrap();
        let n = suite.select_term_genes(&mut session, esr_term);
        assert_eq!(n, truth.esr_induced().len());
        let sel = session.selection().unwrap();
        assert!(matches!(
            &sel.origin,
            SelectionOrigin::Analysis { tool } if tool.starts_with("GOLEM:")
        ));
        // selected genes are exactly the module members
        let names: std::collections::HashSet<String> = sel
            .genes()
            .iter()
            .map(|&g| session.merged().universe().name(g).to_string())
            .collect();
        for &g in truth.esr_induced() {
            assert!(names.contains(&orf_name(g)));
        }
    }

    #[test]
    fn spell_iterative_grows_query_monotonically() {
        let (_, suite, truth) = setup();
        let seed: Vec<String> = truth.esr_induced()[..4]
            .iter()
            .map(|&g| orf_name(g))
            .collect();
        let refs: Vec<&str> = seed.iter().map(|s| s.as_str()).collect();
        let (result, grown) = suite.spell_iterative(&refs, 2, 5);
        assert!(grown.len() > 4, "query should grow: {}", grown.len());
        assert!(grown.len() <= 4 + 2 * 5);
        // grown query members are flagged as query in the final result
        for g in &result.genes {
            if grown.iter().any(|q| q.eq_ignore_ascii_case(&g.gene)) {
                assert!(g.in_query, "{} should be flagged", g.gene);
            }
        }
        // iterated query keeps finding planted members
        let esr: std::collections::HashSet<String> =
            truth.esr_induced().iter().map(|&g| orf_name(g)).collect();
        let found = grown.iter().filter(|g| esr.contains(*g)).count();
        assert!(
            found * 2 > grown.len(),
            "most of the grown query should be planted members: {found}/{}",
            grown.len()
        );
    }

    #[test]
    fn no_selection_spell_none() {
        let (mut session, suite, _) = setup();
        assert!(suite.spell_from_selection(&mut session, 5).is_none());
    }

    // keep the unused-import lint quiet for the helper types used above
    #[allow(unused)]
    fn _use(p: GenConfig, t: fv_synth::modules::GroundTruth) {
        let _ = (p, t);
        let _ = plant_modules(30, 0, 0, 1);
    }
}
