//! Pane content: everything the renderer needs to paint one dataset pane.
//!
//! Building the content is separated from painting so the wall renderer can
//! build once per frame and paint per tile, and so tests can assert on
//! content without rasterizing.

use crate::prefs::PanePrefs;
use crate::session::Session;
use crate::sync;
use fv_render::dendro::{DendroChild, DendroMerge};

/// Snapshot of one pane's displayable state.
#[derive(Debug, Clone)]
pub struct PaneContent {
    /// Dataset index in the session.
    pub dataset: usize,
    /// Pane title (dataset name).
    pub title: String,
    /// Genes × conditions of the dataset.
    pub n_rows: usize,
    /// Condition count.
    pub n_cols: usize,
    /// Display row → matrix row.
    pub display_order: Vec<usize>,
    /// Display column → matrix column (array-tree order when clustered).
    pub col_order: Vec<usize>,
    /// Zoom-view rows (selection under sync rules); `None` = gap.
    pub zoom_rows: Vec<Option<u32>>,
    /// Display rows to mark in the global view.
    pub marks: Vec<usize>,
    /// Labels for the zoom rows (gene display labels; empty for gaps).
    pub zoom_labels: Vec<String>,
    /// Dendrogram merges (render form), if the dataset is clustered.
    pub tree: Option<Vec<DendroMerge>>,
    /// Leaf display positions for the dendrogram (matrix row → display pos).
    pub leaf_pos: Vec<usize>,
    /// Array dendrogram merges, if the conditions are clustered.
    pub array_tree: Option<Vec<DendroMerge>>,
    /// Column display positions (matrix col → display pos).
    pub col_pos: Vec<usize>,
    /// Effective preferences.
    pub prefs: PanePrefs,
}

impl PaneContent {
    /// Build the content snapshot for dataset `d`.
    pub fn build(session: &Session, d: usize) -> PaneContent {
        let ds = session.dataset(d);
        let zoom_rows = sync::zoom_rows(session, d);
        let zoom_labels = zoom_rows
            .iter()
            .map(|r| match r {
                Some(row) => ds.genes[*row as usize].label().to_string(),
                None => String::new(),
            })
            .collect();
        let tree = session.gene_tree(d).map(|t| {
            t.merges()
                .iter()
                .map(|m| DendroMerge {
                    left: to_child(m.left),
                    right: to_child(m.right),
                    height: m.height,
                })
                .collect()
        });
        let leaf_pos = (0..ds.n_genes())
            .map(|r| session.display_pos_of_row(d, r))
            .collect();
        let array_tree = session.array_tree(d).map(|t| {
            t.merges()
                .iter()
                .map(|m| DendroMerge {
                    left: to_child(m.left),
                    right: to_child(m.right),
                    height: m.height,
                })
                .collect()
        });
        let col_pos = {
            let order = session.col_order(d);
            let mut pos = vec![0usize; order.len()];
            for (display, &col) in order.iter().enumerate() {
                pos[col] = display;
            }
            pos
        };
        PaneContent {
            dataset: d,
            title: ds.name.clone(),
            n_rows: ds.n_genes(),
            n_cols: ds.n_conditions(),
            display_order: session.display_order(d).to_vec(),
            col_order: session.col_order(d).to_vec(),
            zoom_rows,
            marks: sync::global_marks(session, d),
            zoom_labels,
            tree,
            leaf_pos,
            array_tree,
            col_pos,
            prefs: session.prefs.for_dataset(d),
        }
    }

    /// Expression value at (display row, display column) for the global
    /// view — both axes go through their display orders.
    pub fn global_value(
        &self,
        session: &Session,
        display_row: usize,
        display_col: usize,
    ) -> Option<f32> {
        let row = *self.display_order.get(display_row)?;
        let col = *self.col_order.get(display_col)?;
        session.dataset(self.dataset).matrix.get(row, col)
    }

    /// Expression value at (zoom row, display column) for the zoom view.
    pub fn zoom_value(
        &self,
        session: &Session,
        zoom_row: usize,
        display_col: usize,
    ) -> Option<f32> {
        let row = (*self.zoom_rows.get(zoom_row)?)?;
        let col = *self.col_order.get(display_col)?;
        session.dataset(self.dataset).matrix.get(row as usize, col)
    }
}

fn to_child(n: fv_cluster::tree::NodeRef) -> DendroChild {
    match n {
        fv_cluster::tree::NodeRef::Leaf(i) => DendroChild::Leaf(i as usize),
        fv_cluster::tree::NodeRef::Internal(i) => DendroChild::Internal(i as usize),
    }
}

/// Build contents for every pane in display order.
pub fn build_all(session: &Session) -> Vec<PaneContent> {
    session
        .dataset_order()
        .iter()
        .map(|&d| PaneContent::build(session, d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionOrigin;
    use fv_expr::meta::{ConditionMeta, GeneMeta};
    use fv_expr::{Dataset, ExprMatrix};

    fn session() -> Session {
        let mut s = Session::new();
        let m = ExprMatrix::from_rows(3, 2, &[1.0, 2.0, 5.0, 6.0, -1.0, -2.0]).unwrap();
        let genes = vec![
            GeneMeta::new("G1", "AAA", "x"),
            GeneMeta::new("G2", "", "y"),
            GeneMeta::new("G3", "CCC", "z"),
        ];
        let conds = vec![ConditionMeta::new("c0"), ConditionMeta::new("c1")];
        s.load_dataset(Dataset::new("demo", m, genes, conds).unwrap())
            .unwrap();
        s
    }

    #[test]
    fn build_basic_fields() {
        let mut s = session();
        s.select_genes(&["G3", "G1"], SelectionOrigin::List);
        let c = PaneContent::build(&s, 0);
        assert_eq!(c.title, "demo");
        assert_eq!(c.n_rows, 3);
        assert_eq!(c.n_cols, 2);
        assert_eq!(c.zoom_rows, vec![Some(2), Some(0)]);
        assert_eq!(c.zoom_labels, vec!["CCC", "AAA"]);
        assert!(c.tree.is_none());
    }

    #[test]
    fn labels_fall_back_to_id() {
        let mut s = session();
        s.select_genes(&["G2"], SelectionOrigin::List);
        let c = PaneContent::build(&s, 0);
        assert_eq!(c.zoom_labels, vec!["G2"]);
    }

    #[test]
    fn values_read_through_display_order() {
        let mut s = session();
        s.select_genes(&["G2"], SelectionOrigin::List);
        let c = PaneContent::build(&s, 0);
        assert_eq!(c.global_value(&s, 1, 1), Some(6.0));
        assert_eq!(c.zoom_value(&s, 0, 0), Some(5.0));
        assert_eq!(c.zoom_value(&s, 5, 0), None);
    }

    #[test]
    fn tree_converted_after_clustering() {
        let mut s = session();
        s.cluster_all();
        let c = PaneContent::build(&s, 0);
        let tree = c.tree.expect("clustered");
        assert_eq!(tree.len(), 2);
        assert_eq!(c.leaf_pos.len(), 3);
    }

    #[test]
    fn col_order_applies_to_values() {
        let mut s = session();
        s.select_genes(&["G1"], SelectionOrigin::List);
        s.cluster_arrays(
            0,
            fv_cluster::Metric::Euclidean,
            fv_cluster::Linkage::Average,
        );
        let c = PaneContent::build(&s, 0);
        // values read through the (possibly permuted) column order
        for display_col in 0..2 {
            let mat_col = c.col_order[display_col];
            assert_eq!(
                c.global_value(&s, 0, display_col),
                s.dataset(0).matrix.get(c.display_order[0], mat_col)
            );
        }
    }

    #[test]
    fn build_all_follows_dataset_order() {
        let mut s = session();
        s.load_dataset(Dataset::with_default_meta(
            "second",
            ExprMatrix::zeros(2, 2),
        ))
        .unwrap();
        s.set_dataset_order(vec![1, 0]);
        let all = build_all(&s);
        assert_eq!(all[0].title, "second");
        assert_eq!(all[1].title, "demo");
    }
}
