//! Per-dataset display preferences.
//!
//! "ForestView also allows users to change user preferences on a
//! per-dataset basis. For instance the scaling of the global and zoom view,
//! the annotation information and the expression level colors can be
//! adjusted independently for datasets or applied to all datasets."
//! (paper, Section 2)

use fv_render::{ColorScheme, ExpressionColorMap};
use std::collections::HashMap;

/// Display preferences for one dataset pane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanePrefs {
    /// Expression color map (scheme + contrast + missing color).
    pub colormap: ExpressionColorMap,
    /// Zoom-view cell height in pixels (row thickness).
    pub zoom_cell_h: usize,
    /// Zoom-view cell width in pixels.
    pub zoom_cell_w: usize,
    /// Whether the annotation column is drawn in the zoom view.
    pub show_annotations: bool,
    /// Whether the gene dendrogram is drawn (when the dataset is clustered).
    pub show_gene_tree: bool,
}

impl Default for PanePrefs {
    fn default() -> Self {
        PanePrefs {
            colormap: ExpressionColorMap::default(),
            zoom_cell_h: 10,
            zoom_cell_w: 6,
            show_annotations: true,
            show_gene_tree: true,
        }
    }
}

/// Preference store: a default plus per-dataset overrides.
#[derive(Debug, Clone, Default)]
pub struct PrefsStore {
    default: PanePrefs,
    overrides: HashMap<usize, PanePrefs>,
}

impl PrefsStore {
    /// Store with library defaults.
    pub fn new() -> Self {
        PrefsStore {
            default: PanePrefs::default(),
            overrides: HashMap::new(),
        }
    }

    /// Effective preferences for dataset `d`.
    pub fn for_dataset(&self, d: usize) -> PanePrefs {
        self.overrides.get(&d).copied().unwrap_or(self.default)
    }

    /// Override preferences for one dataset.
    pub fn set_for_dataset(&mut self, d: usize, prefs: PanePrefs) {
        self.overrides.insert(d, prefs);
    }

    /// Apply preferences to **all** datasets (clears overrides) — the
    /// paper's "applied to all datasets" path.
    pub fn set_for_all(&mut self, prefs: PanePrefs) {
        self.default = prefs;
        self.overrides.clear();
    }

    /// Convenience: change just the color scheme of one dataset.
    pub fn set_scheme(&mut self, d: usize, scheme: ColorScheme) {
        let mut p = self.for_dataset(d);
        p.colormap.scheme = scheme;
        self.set_for_dataset(d, p);
    }

    /// Convenience: change just the contrast of one dataset.
    pub fn set_contrast(&mut self, d: usize, contrast: f32) {
        let mut p = self.for_dataset(d);
        p.colormap.contrast = contrast;
        self.set_for_dataset(d, p);
    }

    /// Whether dataset `d` has an override.
    pub fn has_override(&self, d: usize) -> bool {
        self.overrides.contains_key(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_applies_everywhere() {
        let s = PrefsStore::new();
        assert_eq!(s.for_dataset(0), PanePrefs::default());
        assert_eq!(s.for_dataset(99), PanePrefs::default());
    }

    #[test]
    fn override_one_dataset() {
        let mut s = PrefsStore::new();
        let p = PanePrefs {
            zoom_cell_h: 14,
            ..PanePrefs::default()
        };
        s.set_for_dataset(2, p);
        assert_eq!(s.for_dataset(2).zoom_cell_h, 14);
        assert_eq!(s.for_dataset(1).zoom_cell_h, 10);
        assert!(s.has_override(2));
        assert!(!s.has_override(1));
    }

    #[test]
    fn set_for_all_clears_overrides() {
        let mut s = PrefsStore::new();
        s.set_contrast(1, 5.0);
        let p = PanePrefs {
            zoom_cell_w: 9,
            ..PanePrefs::default()
        };
        s.set_for_all(p);
        assert_eq!(s.for_dataset(1).zoom_cell_w, 9);
        assert_eq!(s.for_dataset(1).colormap.contrast, 3.0);
        assert!(!s.has_override(1));
    }

    #[test]
    fn scheme_and_contrast_shortcuts() {
        let mut s = PrefsStore::new();
        s.set_scheme(0, ColorScheme::RedBlue);
        s.set_contrast(0, 2.0);
        let p = s.for_dataset(0);
        assert_eq!(p.colormap.scheme, ColorScheme::RedBlue);
        assert_eq!(p.colormap.contrast, 2.0);
        // other prefs untouched
        assert!(p.show_annotations);
    }
}
