//! Pane layout: dividing a display surface into vertical dataset panes.
//!
//! "The ForestView display is divided into multiple vertical panes, each
//! pane displaying one dataset. Each dataset pane shows a global view of
//! the whole genome and a zoom view showing details of selected genes"
//! (paper, Section 2). Each pane stacks: title strip, global view (with
//! the gene tree to its left), zoom view (with tree + annotation strip).

/// A rectangle in surface coordinates (may be empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rect {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Width.
    pub w: usize,
    /// Height.
    pub h: usize,
}

impl Rect {
    /// Whether the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Area in pixels.
    pub fn area(&self) -> usize {
        self.w * self.h
    }
}

/// The sub-regions of one dataset pane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaneLayout {
    /// The whole pane.
    pub pane: Rect,
    /// Title strip at the top.
    pub title: Rect,
    /// Array (condition) dendrogram above the global view.
    pub array_tree: Rect,
    /// Gene dendrogram beside the global view.
    pub global_tree: Rect,
    /// Global (whole-dataset) heatmap.
    pub global: Rect,
    /// Zoom-view heatmap (selected genes).
    pub zoom: Rect,
    /// Annotation/label strip beside the zoom view.
    pub labels: Rect,
}

/// Fixed layout constants (pixels).
pub mod dims {
    /// Title strip height.
    pub const TITLE_H: usize = 12;
    /// Gap between panes.
    pub const PANE_GAP: usize = 4;
    /// Dendrogram strip width (when shown).
    pub const TREE_W: usize = 48;
    /// Label strip width (when shown).
    pub const LABEL_W: usize = 70;
    /// Fraction of the content height given to the global view (per mille).
    pub const GLOBAL_FRACTION_PM: usize = 550;
    /// Vertical gap between global and zoom views.
    pub const VIEW_GAP: usize = 4;
    /// Array-dendrogram strip height (when shown).
    pub const ARRAY_TREE_H: usize = 24;
}

/// Compute layouts for `n_panes` vertical panes across a `width × height`
/// surface. `show_tree` / `show_labels` / `show_array_tree` reserve those
/// strips.
pub fn layout_panes(
    width: usize,
    height: usize,
    n_panes: usize,
    show_tree: bool,
    show_labels: bool,
    show_array_tree: bool,
) -> Vec<PaneLayout> {
    if n_panes == 0 || width == 0 || height == 0 {
        return Vec::new();
    }
    let total_gap = dims::PANE_GAP * (n_panes.saturating_sub(1));
    let pane_w = width.saturating_sub(total_gap) / n_panes;
    let mut out = Vec::with_capacity(n_panes);
    for p in 0..n_panes {
        let x = p * (pane_w + dims::PANE_GAP);
        let pane = Rect {
            x,
            y: 0,
            w: pane_w,
            h: height,
        };
        let title = Rect {
            x,
            y: 0,
            w: pane_w,
            h: dims::TITLE_H.min(height),
        };
        let atree_h = if show_array_tree {
            dims::ARRAY_TREE_H.min(height.saturating_sub(title.h) / 4)
        } else {
            0
        };
        let content_y = title.h + atree_h;
        let content_h = height.saturating_sub(content_y);
        let global_h = content_h * dims::GLOBAL_FRACTION_PM / 1000;
        let zoom_y = content_y + global_h + dims::VIEW_GAP;
        let zoom_h = (content_y + content_h).saturating_sub(zoom_y);

        let tree_w = if show_tree {
            dims::TREE_W.min(pane_w / 4)
        } else {
            0
        };
        let label_w = if show_labels {
            dims::LABEL_W.min(pane_w / 3)
        } else {
            0
        };

        let array_tree = Rect {
            x: x + tree_w,
            y: title.h,
            w: pane_w.saturating_sub(tree_w),
            h: atree_h,
        };
        let global_tree = Rect {
            x,
            y: content_y,
            w: tree_w,
            h: global_h,
        };
        let global = Rect {
            x: x + tree_w,
            y: content_y,
            w: pane_w.saturating_sub(tree_w),
            h: global_h,
        };
        let zoom = Rect {
            x: x + tree_w,
            y: zoom_y,
            w: pane_w.saturating_sub(tree_w + label_w),
            h: zoom_h,
        };
        let labels = Rect {
            x: x + pane_w.saturating_sub(label_w),
            y: zoom_y,
            w: label_w,
            h: zoom_h,
        };
        out.push(PaneLayout {
            pane,
            title,
            array_tree,
            global_tree,
            global,
            zoom,
            labels,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panes_tile_width() {
        let l = layout_panes(1000, 600, 3, true, true, false);
        assert_eq!(l.len(), 3);
        for (i, p) in l.iter().enumerate() {
            assert_eq!(p.pane.w, (1000 - 2 * dims::PANE_GAP) / 3);
            if i > 0 {
                assert!(
                    p.pane.x >= l[i - 1].pane.x + l[i - 1].pane.w,
                    "panes overlap"
                );
            }
        }
    }

    #[test]
    fn regions_within_pane() {
        let l = layout_panes(900, 700, 2, true, true, false);
        for p in &l {
            for r in [p.title, p.global_tree, p.global, p.zoom, p.labels] {
                assert!(r.x >= p.pane.x);
                assert!(r.x + r.w <= p.pane.x + p.pane.w + 1);
                assert!(r.y + r.h <= p.pane.y + p.pane.h);
            }
        }
    }

    #[test]
    fn global_above_zoom() {
        let l = layout_panes(800, 600, 1, false, false, false);
        let p = &l[0];
        assert!(p.global.y + p.global.h <= p.zoom.y);
        assert!(p.global.h > 0 && p.zoom.h > 0);
        // without tree/labels the heatmaps use the full pane width
        assert_eq!(p.global.w, p.pane.w);
        assert_eq!(p.zoom.w, p.pane.w);
    }

    #[test]
    fn tree_and_labels_reserved() {
        let l = layout_panes(800, 600, 1, true, true, false);
        let p = &l[0];
        assert_eq!(p.global_tree.w, dims::TREE_W);
        assert_eq!(p.labels.w, dims::LABEL_W);
        assert_eq!(p.global.x, p.pane.x + dims::TREE_W);
        assert_eq!(p.zoom.w, p.pane.w - dims::TREE_W - dims::LABEL_W);
    }

    #[test]
    fn array_tree_strip_reserved() {
        let with = layout_panes(800, 600, 1, true, true, true);
        let without = layout_panes(800, 600, 1, true, true, false);
        let (p, q) = (&with[0], &without[0]);
        assert_eq!(p.array_tree.h, dims::ARRAY_TREE_H);
        assert_eq!(p.array_tree.y, dims::TITLE_H);
        assert_eq!(
            p.array_tree.x, p.global.x,
            "array tree aligns with heatmap columns"
        );
        assert_eq!(p.array_tree.w, p.global.w);
        // content shifts down by the strip height
        assert_eq!(p.global.y, q.global.y + dims::ARRAY_TREE_H);
        assert!(q.array_tree.is_empty());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(layout_panes(0, 100, 2, true, true, false).is_empty());
        assert!(layout_panes(100, 100, 0, true, true, false).is_empty());
        // tiny surface still produces non-panicking layout
        let l = layout_panes(10, 8, 2, true, true, false);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn many_panes_wall_scale() {
        // 24 panes across a 7680-wide wall: each pane ~300 px
        let l = layout_panes(7680, 3072, 24, true, true, false);
        assert_eq!(l.len(), 24);
        assert!(l[23].pane.x + l[23].pane.w <= 7680);
        assert!(l[0].zoom.w > 100);
    }
}
