//! Deterministic interaction commands.
//!
//! The paper's ForestView is mouse-driven; for a reproducible system the
//! interactions become a replayable command stream ("selecting clusters of
//! genes or tree nodes, panning and zooming views, and adjusting color and
//! display settings", Section 2). Each command reports the **damage** it
//! causes in scene coordinates so the wall renderer can repaint only what
//! changed — that is the measurable meaning of "dynamic" at wall scale
//! (ablation A2).

use crate::layout::{layout_panes, PaneLayout};
use crate::ordering::{apply_order, OrderPolicy};
use crate::selection::SelectionOrigin;
use crate::session::Session;
use fv_cluster::distance::Metric;
use fv_cluster::linkage::Linkage;
use fv_wall::tile::Viewport;

/// A user interaction.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Highlight a fraction range of one dataset's global view
    /// (`0.0..=1.0` of its displayed genes) — the mouse-region path.
    SelectRegion {
        /// Source dataset.
        dataset: usize,
        /// Start fraction of the displayed gene list.
        start_frac: f32,
        /// End fraction.
        end_frac: f32,
    },
    /// Select named genes (an imported list).
    SelectGenes(Vec<String>),
    /// Search annotations and select the hits.
    Search(String),
    /// Clear the selection.
    ClearSelection,
    /// Toggle synchronized viewing.
    ToggleSync,
    /// Scroll the zoom views by rows.
    Scroll(i64),
    /// Reorder panes alphabetically.
    OrderByName,
    /// Reorder panes by external relevance scores.
    OrderByRelevance(Vec<f32>),
    /// Hierarchically cluster every dataset.
    ClusterAll,
    /// Adjust color contrast for one dataset (`None` = all datasets).
    SetContrast {
        /// Target dataset, or all.
        dataset: Option<usize>,
        /// New contrast.
        contrast: f32,
    },
    /// Set the linkage criterion used by subsequent clustering, so the
    /// cluster parameters are part of the replayable stream rather than
    /// hardcoded at call sites. Takes effect at the next `ClusterAll`.
    SetLinkage(Linkage),
    /// Set the distance metric used by subsequent clustering; companion
    /// to [`Command::SetLinkage`].
    SetMetric(Metric),
}

/// What a command changed.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Selection size after the command, if a selection exists.
    pub selection_len: Option<usize>,
    /// Scene-coordinate rectangles invalidated by the command, for a scene
    /// laid out at the dimensions passed to [`apply`].
    pub damage: Vec<Viewport>,
}

fn rect_to_vp(r: crate::layout::Rect) -> Viewport {
    Viewport {
        x: r.x,
        y: r.y,
        w: r.w,
        h: r.h,
    }
}

fn zoom_and_marks_damage(layouts: &[PaneLayout]) -> Vec<Viewport> {
    let mut v = Vec::with_capacity(layouts.len() * 2);
    for l in layouts {
        v.push(rect_to_vp(l.zoom));
        v.push(rect_to_vp(l.labels));
        v.push(rect_to_vp(l.global));
    }
    v
}

fn zoom_only_damage(layouts: &[PaneLayout]) -> Vec<Viewport> {
    let mut v = Vec::with_capacity(layouts.len() * 2);
    for l in layouts {
        v.push(rect_to_vp(l.zoom));
        v.push(rect_to_vp(l.labels));
    }
    v
}

fn full_damage(scene_w: usize, scene_h: usize) -> Vec<Viewport> {
    vec![Viewport {
        x: 0,
        y: 0,
        w: scene_w,
        h: scene_h,
    }]
}

/// Which scene regions a command invalidates, independent of scene
/// dimensions. Resolved to concrete rectangles by [`resolve_damage`] in a
/// single layout pass — the seam that lets a batch of commands share one
/// layout computation instead of paying one per command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamageClass {
    /// Zoom views, label gutters, and global-view marks of every pane.
    ZoomAndMarks,
    /// Zoom views and label gutters only (scrolling, sync toggles).
    ZoomOnly,
    /// The whole scene.
    Full,
    /// A single dataset's pane (by dataset index, not pane position).
    SinglePane(usize),
    /// Nothing repaints (settings that take effect on a later command).
    None,
}

/// Mutate the session according to `cmd` and report the damage class —
/// the layout-free half of [`apply`].
pub fn perform(session: &mut Session, cmd: &Command) -> DamageClass {
    match cmd {
        Command::SelectRegion {
            dataset,
            start_frac,
            end_frac,
        } => {
            let rows = session.display_order(*dataset).len();
            let a = ((start_frac.clamp(0.0, 1.0)) * rows as f32) as usize;
            let b = ((end_frac.clamp(0.0, 1.0)) * rows as f32) as usize;
            session.select_region(*dataset, a.min(b), a.max(b));
            DamageClass::ZoomAndMarks
        }
        Command::SelectGenes(names) => {
            let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            session.select_genes(&refs, SelectionOrigin::List);
            DamageClass::ZoomAndMarks
        }
        Command::Search(q) => {
            session.search_and_select(q);
            DamageClass::ZoomAndMarks
        }
        Command::ClearSelection => {
            session.clear_selection();
            DamageClass::ZoomAndMarks
        }
        Command::ToggleSync => {
            session.toggle_sync();
            DamageClass::ZoomOnly
        }
        Command::Scroll(delta) => {
            session.scroll_by(*delta);
            DamageClass::ZoomOnly
        }
        Command::OrderByName => {
            apply_order(session, &OrderPolicy::ByName);
            DamageClass::Full
        }
        Command::OrderByRelevance(scores) => {
            apply_order(session, &OrderPolicy::ByRelevance(scores.clone()));
            DamageClass::Full
        }
        Command::ClusterAll => {
            session.cluster_all();
            DamageClass::Full
        }
        Command::SetContrast { dataset, contrast } => match dataset {
            Some(d) => {
                session.prefs.set_contrast(*d, *contrast);
                DamageClass::SinglePane(*d)
            }
            None => {
                let mut prefs = session.prefs.for_dataset(0);
                prefs.colormap.contrast = *contrast;
                session.prefs.set_for_all(prefs);
                DamageClass::Full
            }
        },
        Command::SetLinkage(linkage) => {
            session.set_linkage(*linkage);
            DamageClass::None
        }
        Command::SetMetric(metric) => {
            session.set_metric(*metric);
            DamageClass::None
        }
    }
}

/// Current pane layouts for a `scene_w × scene_h` scene.
fn scene_layouts(session: &Session, scene_w: usize, scene_h: usize) -> Vec<PaneLayout> {
    let n = session.dataset_order().len();
    let show_atree = (0..session.n_datasets()).any(|d| session.array_tree(d).is_some());
    layout_panes(scene_w, scene_h, n, true, true, show_atree)
}

fn class_damage(
    session: &Session,
    layouts: &[PaneLayout],
    class: DamageClass,
    scene_w: usize,
    scene_h: usize,
) -> Vec<Viewport> {
    match class {
        DamageClass::ZoomAndMarks => zoom_and_marks_damage(layouts),
        DamageClass::ZoomOnly => zoom_only_damage(layouts),
        DamageClass::Full => full_damage(scene_w, scene_h),
        DamageClass::SinglePane(d) => {
            let pos = session.dataset_order().iter().position(|&x| x == d);
            match pos {
                Some(p) => vec![rect_to_vp(layouts[p].pane)],
                None => Vec::new(),
            }
        }
        DamageClass::None => Vec::new(),
    }
}

/// Resolve one damage class to scene rectangles, running layout once.
pub fn resolve_damage(
    session: &Session,
    class: DamageClass,
    scene_w: usize,
    scene_h: usize,
) -> Vec<Viewport> {
    let layouts = scene_layouts(session, scene_w, scene_h);
    class_damage(session, &layouts, class, scene_w, scene_h)
}

/// Resolve many damage classes against ONE layout pass, returning the
/// deduplicated union of their rectangles. Full-scene damage short-circuits
/// to a single covering rectangle.
pub fn resolve_damage_batch(
    session: &Session,
    classes: &[DamageClass],
    scene_w: usize,
    scene_h: usize,
) -> Vec<Viewport> {
    if classes.iter().any(|c| matches!(c, DamageClass::Full)) {
        return full_damage(scene_w, scene_h);
    }
    let layouts = scene_layouts(session, scene_w, scene_h);
    let mut rects: Vec<Viewport> = Vec::new();
    for &class in classes {
        for r in class_damage(session, &layouts, class, scene_w, scene_h) {
            if !rects.contains(&r) {
                rects.push(r);
            }
        }
    }
    rects
}

/// Memoized pane layout for resolving a *sequence* of damage classes with
/// as few layout passes as possible.
///
/// Sequential [`resolve_damage`] calls pay one `layout_panes` pass each.
/// Across a request run the layout inputs (pane order, array-tree strip)
/// rarely change, so a cache keyed on exactly those inputs collapses the
/// per-command fixed cost to one pass per *distinct layout state* — while
/// returning rectangles identical to what per-command resolution would
/// have produced (each `resolve` reads the session as it is *now*, so
/// interleaving mutations with resolutions stays exact).
pub struct LayoutCache {
    scene: (usize, usize),
    /// `(dataset order, array-tree strip shown, layouts)` of the last pass.
    state: Option<(Vec<usize>, bool, Vec<PaneLayout>)>,
    passes: usize,
}

impl LayoutCache {
    /// Empty cache for a `scene_w × scene_h` scene.
    pub fn new(scene_w: usize, scene_h: usize) -> Self {
        LayoutCache {
            scene: (scene_w, scene_h),
            state: None,
            passes: 0,
        }
    }

    /// Number of `layout_panes` passes run so far — observability for
    /// tests asserting that batches actually coalesce.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Resolve one damage class against the session's *current* state,
    /// re-running layout only if the layout-relevant state changed since
    /// the previous resolution. Equivalent to [`resolve_damage`] call for
    /// call.
    pub fn resolve(&mut self, session: &Session, class: DamageClass) -> Vec<Viewport> {
        let order = session.dataset_order();
        let show_atree = (0..session.n_datasets()).any(|d| session.array_tree(d).is_some());
        let stale = match &self.state {
            Some((o, a, _)) => o != order || *a != show_atree,
            None => true,
        };
        if stale {
            self.passes += 1;
            let layouts = layout_panes(
                self.scene.0,
                self.scene.1,
                order.len(),
                true,
                true,
                show_atree,
            );
            self.state = Some((order.to_vec(), show_atree, layouts));
        }
        let (_, _, layouts) = self.state.as_ref().expect("state just ensured");
        class_damage(session, layouts, class, self.scene.0, self.scene.1)
    }
}

/// Apply a command to the session, reporting damage for a scene laid out
/// at `scene_w × scene_h`.
pub fn apply(session: &mut Session, cmd: &Command, scene_w: usize, scene_h: usize) -> Outcome {
    let class = perform(session, cmd);
    Outcome {
        selection_len: session.selection().map(|s| s.len()),
        damage: resolve_damage(session, class, scene_w, scene_h),
    }
}

/// Apply a whole command script, returning per-command outcomes.
pub fn run_script(
    session: &mut Session,
    script: &[Command],
    scene_w: usize,
    scene_h: usize,
) -> Vec<Outcome> {
    script
        .iter()
        .map(|c| apply(session, c, scene_w, scene_h))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::{Dataset, ExprMatrix};

    fn session() -> Session {
        let mut s = Session::new();
        let vals: Vec<f32> = (0..20 * 4).map(|i| (i % 7) as f32 - 3.0).collect();
        let m = ExprMatrix::from_rows(20, 4, &vals).unwrap();
        s.load_dataset(Dataset::with_default_meta("a", m.clone()))
            .unwrap();
        s.load_dataset(Dataset::with_default_meta("b", m)).unwrap();
        s
    }

    #[test]
    fn select_region_fractions() {
        let mut s = session();
        let out = apply(
            &mut s,
            &Command::SelectRegion {
                dataset: 0,
                start_frac: 0.25,
                end_frac: 0.5,
            },
            800,
            600,
        );
        assert_eq!(out.selection_len, Some(5)); // rows 5..10
        assert!(!out.damage.is_empty());
    }

    #[test]
    fn select_region_swapped_fracs_ok() {
        let mut s = session();
        let out = apply(
            &mut s,
            &Command::SelectRegion {
                dataset: 0,
                start_frac: 0.5,
                end_frac: 0.25,
            },
            800,
            600,
        );
        assert_eq!(out.selection_len, Some(5));
    }

    #[test]
    fn scroll_damage_excludes_global() {
        let mut s = session();
        apply(
            &mut s,
            &Command::SelectGenes(vec!["G1".into(), "G2".into(), "G3".into()]),
            800,
            600,
        );
        let out = apply(&mut s, &Command::Scroll(1), 800, 600);
        // zoom+labels per pane = 4 rects for 2 panes; none should be the
        // global region
        let layouts = layout_panes(800, 600, 2, true, true, false);
        for d in &out.damage {
            for l in &layouts {
                assert_ne!(
                    (d.x, d.y, d.w, d.h),
                    (l.global.x, l.global.y, l.global.w, l.global.h)
                );
            }
        }
    }

    #[test]
    fn cluster_all_full_damage() {
        let mut s = session();
        let out = apply(&mut s, &Command::ClusterAll, 640, 480);
        assert_eq!(
            out.damage,
            vec![Viewport {
                x: 0,
                y: 0,
                w: 640,
                h: 480
            }]
        );
        assert!(s.gene_tree(0).is_some());
    }

    #[test]
    fn contrast_single_pane_damage() {
        let mut s = session();
        let out = apply(
            &mut s,
            &Command::SetContrast {
                dataset: Some(1),
                contrast: 1.5,
            },
            800,
            600,
        );
        assert_eq!(out.damage.len(), 1);
        assert_eq!(s.prefs.for_dataset(1).colormap.contrast, 1.5);
        assert_eq!(s.prefs.for_dataset(0).colormap.contrast, 3.0);
    }

    #[test]
    fn contrast_all_full_damage() {
        let mut s = session();
        let out = apply(
            &mut s,
            &Command::SetContrast {
                dataset: None,
                contrast: 2.0,
            },
            800,
            600,
        );
        assert_eq!(out.damage.len(), 1);
        assert_eq!(out.damage[0].w, 800);
        assert_eq!(s.prefs.for_dataset(1).colormap.contrast, 2.0);
    }

    #[test]
    fn script_runs_in_order() {
        let mut s = session();
        let outcomes = run_script(
            &mut s,
            &[
                Command::ClusterAll,
                Command::SelectRegion {
                    dataset: 0,
                    start_frac: 0.0,
                    end_frac: 0.3,
                },
                Command::ToggleSync,
                Command::Scroll(2),
            ],
            640,
            480,
        );
        assert_eq!(outcomes.len(), 4);
        assert!(!s.sync_enabled());
        assert_eq!(s.scroll(), 2);
    }

    #[test]
    fn search_command_selects() {
        let mut s = session();
        let out = apply(&mut s, &Command::Search("G5".into()), 640, 480);
        assert_eq!(out.selection_len, Some(1));
    }

    #[test]
    fn cluster_settings_commands_update_session() {
        let mut s = session();
        let out = apply(&mut s, &Command::SetLinkage(Linkage::Ward), 640, 480);
        assert!(out.damage.is_empty(), "settings change repaints nothing");
        apply(&mut s, &Command::SetMetric(Metric::Euclidean), 640, 480);
        assert_eq!(s.cluster_settings(), (Metric::Euclidean, Linkage::Ward));
        // the settings drive the next ClusterAll
        apply(&mut s, &Command::ClusterAll, 640, 480);
        assert!(s.gene_tree(0).is_some());
    }

    #[test]
    fn batch_damage_matches_sequential_union() {
        let mut a = session();
        let mut b = session();
        let script = [
            Command::SelectRegion {
                dataset: 0,
                start_frac: 0.0,
                end_frac: 0.5,
            },
            Command::Scroll(1),
            Command::SetContrast {
                dataset: Some(1),
                contrast: 1.4,
            },
        ];
        // Sequential: one layout pass per command.
        let mut sequential: Vec<Viewport> = Vec::new();
        for cmd in &script {
            for r in apply(&mut a, cmd, 800, 600).damage {
                if !sequential.contains(&r) {
                    sequential.push(r);
                }
            }
        }
        // Batched: perform all, then one layout pass.
        let classes: Vec<DamageClass> = script.iter().map(|c| perform(&mut b, c)).collect();
        let batched = resolve_damage_batch(&b, &classes, 800, 600);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn batch_full_damage_short_circuits() {
        let mut s = session();
        let classes = [DamageClass::ZoomOnly, DamageClass::Full];
        let damage = resolve_damage_batch(&s, &classes, 640, 480);
        assert_eq!(
            damage,
            vec![Viewport {
                x: 0,
                y: 0,
                w: 640,
                h: 480
            }]
        );
        let _ = &mut s;
    }

    #[test]
    fn layout_cache_matches_per_command_resolution() {
        let mut s = session();
        let script = [
            Command::SelectRegion {
                dataset: 0,
                start_frac: 0.0,
                end_frac: 0.4,
            },
            Command::Scroll(2),
            Command::ToggleSync,
            Command::SetContrast {
                dataset: Some(1),
                contrast: 1.5,
            },
        ];
        let mut cache = LayoutCache::new(640, 480);
        for cmd in &script {
            let class = perform(&mut s, cmd);
            let direct = resolve_damage(&s, class, 640, 480);
            assert_eq!(cache.resolve(&s, class), direct);
        }
        assert_eq!(cache.passes(), 1, "layout-stable run shares one pass");
    }

    #[test]
    fn layout_cache_recomputes_on_reorder() {
        let mut s = session();
        let mut cache = LayoutCache::new(640, 480);
        let class = perform(&mut s, &Command::Scroll(1));
        assert_eq!(
            cache.resolve(&s, class),
            resolve_damage(&s, class, 640, 480)
        );
        // Relevance ordering flips the pane order, which moves SinglePane
        // rectangles — the cache must notice and re-run layout.
        let class = perform(&mut s, &Command::OrderByRelevance(vec![0.1, 0.9]));
        assert_eq!(s.dataset_order(), &[1, 0]);
        let class2 = perform(
            &mut s,
            &Command::SetContrast {
                dataset: Some(0),
                contrast: 2.0,
            },
        );
        assert_eq!(
            cache.resolve(&s, class),
            resolve_damage(&s, class, 640, 480)
        );
        assert_eq!(
            cache.resolve(&s, class2),
            resolve_damage(&s, class2, 640, 480)
        );
        assert_eq!(cache.passes(), 2, "reorder forces exactly one more pass");
    }
}
