//! Dataset (pane) ordering policies — the "Order Datasets" box of Figure 1.
//!
//! Panes can be ordered by load order, by name, or by an external relevance
//! score — the last is how SPELL results drive the display: "The datasets
//! returned can be displayed in decreasing order of relevance to the
//! query" (paper, Section 3).

use crate::session::Session;

/// How to order the panes.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderPolicy {
    /// The order datasets were loaded.
    LoadOrder,
    /// Alphabetical by dataset name.
    ByName,
    /// Decreasing external relevance; `scores[d]` scores dataset `d`.
    /// Ties break by name.
    ByRelevance(Vec<f32>),
}

/// Compute the pane order under a policy.
pub fn compute_order(session: &Session, policy: &OrderPolicy) -> Vec<usize> {
    let n = session.n_datasets();
    let mut order: Vec<usize> = (0..n).collect();
    match policy {
        OrderPolicy::LoadOrder => {}
        OrderPolicy::ByName => {
            order.sort_by(|&a, &b| session.dataset(a).name.cmp(&session.dataset(b).name));
        }
        OrderPolicy::ByRelevance(scores) => {
            assert_eq!(scores.len(), n, "one score per dataset");
            order.sort_by(|&a, &b| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| session.dataset(a).name.cmp(&session.dataset(b).name))
            });
        }
    }
    order
}

/// Apply a policy to the session.
pub fn apply_order(session: &mut Session, policy: &OrderPolicy) {
    let order = compute_order(session, policy);
    session.set_dataset_order(order);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_expr::{Dataset, ExprMatrix};

    fn session() -> Session {
        let mut s = Session::new();
        for name in ["zeta", "alpha", "mid"] {
            s.load_dataset(Dataset::with_default_meta(name, ExprMatrix::zeros(2, 2)))
                .unwrap();
        }
        s
    }

    #[test]
    fn load_order_identity() {
        let s = session();
        assert_eq!(compute_order(&s, &OrderPolicy::LoadOrder), vec![0, 1, 2]);
    }

    #[test]
    fn by_name_alphabetical() {
        let s = session();
        assert_eq!(compute_order(&s, &OrderPolicy::ByName), vec![1, 2, 0]);
    }

    #[test]
    fn by_relevance_descending() {
        let s = session();
        let order = compute_order(&s, &OrderPolicy::ByRelevance(vec![0.1, 0.9, 0.5]));
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn relevance_ties_break_by_name() {
        let s = session();
        let order = compute_order(&s, &OrderPolicy::ByRelevance(vec![0.5, 0.5, 0.5]));
        assert_eq!(order, vec![1, 2, 0]); // alpha, mid, zeta
    }

    #[test]
    fn apply_order_updates_session() {
        let mut s = session();
        apply_order(&mut s, &OrderPolicy::ByName);
        assert_eq!(s.dataset_order(), &[1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "one score per dataset")]
    fn wrong_score_count_panics() {
        let s = session();
        let _ = compute_order(&s, &OrderPolicy::ByRelevance(vec![0.5]));
    }
}
