//! Session rendering: panes → pixels, on desktop surfaces or tiled walls.
//!
//! The same `paint_scene` draws at any scale: the desktop path calls it
//! once with a zero origin; the wall path calls it once per tile with the
//! tile's origin, so tiles rasterize in parallel and each pays only for the
//! scene portion it shows ("scalable for use in both a desktop/laptop
//! setting and for use on very large-format display devices", Section 2).

use crate::layout::{layout_panes, PaneLayout};
use crate::pane::{build_all, PaneContent};
use crate::session::Session;
use fv_golem::layout::MapLayout;
use fv_golem::map::LocalMap;
use fv_ontology::dag::OntologyDag;
use fv_render::color::Rgb;
use fv_render::dendro::{paint_dendrogram_at, Orientation};
use fv_render::draw;
use fv_render::font;
use fv_render::heatmap::{mark_rows_at, paint_global_at, paint_zoom_at};
use fv_render::Framebuffer;
use fv_spell::SpellResult;
use fv_wall::stats::FrameStats;
use fv_wall::WallRenderer;

/// Highlight color for selection marks and borders.
const MARK: Rgb = Rgb::new(255, 255, 255);
/// Pane border color.
const BORDER: Rgb = Rgb::new(90, 90, 90);
/// Title text color.
const TITLE: Rgb = Rgb::new(220, 220, 220);
/// Label text color.
const LABEL: Rgb = Rgb::new(180, 180, 180);

/// Paint the whole session scene, laid out for a `scene_w × scene_h`
/// surface, translated by `(-origin_x, -origin_y)` into `fb`.
///
/// `panes` must come from [`crate::pane::build_all`] on the same session.
pub fn paint_scene(
    fb: &mut Framebuffer,
    session: &Session,
    panes: &[PaneContent],
    scene_w: usize,
    scene_h: usize,
    origin_x: i64,
    origin_y: i64,
) {
    let show_tree = panes
        .iter()
        .any(|p| p.tree.is_some() && p.prefs.show_gene_tree);
    let show_labels = panes.iter().any(|p| p.prefs.show_annotations);
    let show_atree = panes.iter().any(|p| p.array_tree.is_some());
    let layouts = layout_panes(
        scene_w,
        scene_h,
        panes.len(),
        show_tree,
        show_labels,
        show_atree,
    );
    for (content, lay) in panes.iter().zip(&layouts) {
        paint_pane(fb, session, content, lay, origin_x, origin_y);
    }
}

fn paint_pane(
    fb: &mut Framebuffer,
    session: &Session,
    c: &PaneContent,
    lay: &PaneLayout,
    ox: i64,
    oy: i64,
) {
    let tx = |x: usize| x as i64 - ox;
    let ty = |y: usize| y as i64 - oy;

    // Pane border and title.
    draw::rect_outline(
        fb,
        tx(lay.pane.x),
        ty(lay.pane.y),
        lay.pane.w,
        lay.pane.h,
        BORDER,
    );
    let title = font::fit_text(&c.title, lay.title.w.saturating_sub(4), 1);
    font::draw_text(
        fb,
        tx(lay.title.x + 2),
        ty(lay.title.y + 2),
        &title,
        TITLE,
        1,
    );

    // Global view: whole dataset in display order, downsampled with
    // averaging.
    if !lay.global.is_empty() && c.n_rows > 0 {
        let map = c.prefs.colormap;
        paint_global_at(
            fb,
            tx(lay.global.x),
            ty(lay.global.y),
            lay.global.w,
            lay.global.h,
            c.n_rows,
            c.n_cols,
            |r, col| c.global_value(session, r, col),
            &map,
        );
        // Selection highlight lines.
        mark_rows_at(
            fb,
            tx(lay.global.x),
            ty(lay.global.y),
            lay.global.w,
            lay.global.h,
            c.n_rows,
            &c.marks,
            MARK,
        );
    }

    // Gene dendrogram beside the global view.
    if c.prefs.show_gene_tree && !lay.global_tree.is_empty() {
        if let Some(tree) = &c.tree {
            if !tree.is_empty() {
                paint_dendrogram_at(
                    fb,
                    tx(lay.global_tree.x),
                    ty(lay.global_tree.y),
                    lay.global_tree.w,
                    lay.global_tree.h,
                    tree,
                    &c.leaf_pos,
                    Orientation::Horizontal,
                    BORDER,
                );
            }
        }
    }

    // Array dendrogram above the global view.
    if !lay.array_tree.is_empty() {
        if let Some(tree) = &c.array_tree {
            if !tree.is_empty() {
                paint_dendrogram_at(
                    fb,
                    tx(lay.array_tree.x),
                    ty(lay.array_tree.y),
                    lay.array_tree.w,
                    lay.array_tree.h,
                    tree,
                    &c.col_pos,
                    Orientation::Vertical,
                    BORDER,
                );
            }
        }
    }

    // Zoom view: the synchronized selection window.
    if !lay.zoom.is_empty() && !c.zoom_rows.is_empty() {
        let cell_h = c.prefs.zoom_cell_h.max(1);
        let visible = (lay.zoom.h / cell_h).max(1);
        let start = session.scroll().min(c.zoom_rows.len().saturating_sub(1));
        let window: Vec<Option<u32>> = c
            .zoom_rows
            .iter()
            .skip(start)
            .take(visible)
            .copied()
            .collect();
        let shown = window.len();
        let zoom_h = (shown * cell_h).min(lay.zoom.h);
        let map = c.prefs.colormap;
        paint_zoom_at(
            fb,
            tx(lay.zoom.x),
            ty(lay.zoom.y),
            lay.zoom.w,
            zoom_h,
            shown,
            c.n_cols,
            |r, col| match window[r] {
                Some(row) => session
                    .dataset(c.dataset)
                    .matrix
                    .get(row as usize, c.col_order[col]),
                None => None,
            },
            &map,
        );
        // Labels beside the zoom rows.
        if c.prefs.show_annotations && !lay.labels.is_empty() {
            for (i, _) in window.iter().enumerate() {
                let label = &c.zoom_labels[start + i];
                if label.is_empty() {
                    continue;
                }
                let text = font::fit_text(label, lay.labels.w.saturating_sub(2), 1);
                let y = lay.labels.y + i * cell_h + (cell_h.saturating_sub(font::GLYPH_H)) / 2;
                font::draw_text(fb, tx(lay.labels.x + 2), ty(y), &text, LABEL, 1);
            }
        }
    }
}

/// Render the session to a desktop-sized framebuffer.
pub fn render_desktop(session: &Session, width: usize, height: usize) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height);
    let panes = build_all(session);
    paint_scene(&mut fb, session, &panes, width, height, 0, 0);
    fb
}

/// Render the session across a display wall (tiles in parallel). Returns
/// the per-frame stats; read tiles or composite from the renderer.
pub fn render_wall(session: &Session, wall: &mut WallRenderer) -> FrameStats {
    let w = wall.grid().wall_width();
    let h = wall.grid().wall_height();
    let panes = build_all(session);
    wall.render_frame(|fb, vp| paint_scene(fb, session, &panes, w, h, vp.x as i64, vp.y as i64))
}

/// Render a GOLEM local exploration map (Figure 5): layered DAG with nodes
/// colored by enrichment significance and labeled with term names.
pub fn render_golem_map(
    map: &LocalMap,
    layout: &MapLayout,
    dag: &OntologyDag,
    width: usize,
    height: usize,
) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height);
    let margin = 10usize;
    let iw = width.saturating_sub(2 * margin).max(1) as f32;
    let ih = height.saturating_sub(2 * margin).max(1) as f32;
    let pos = |x: f32, y: f32| -> (i64, i64) {
        (
            (margin as f32 + x * iw) as i64,
            (margin as f32 + y * ih) as i64,
        )
    };
    // Edges first.
    for &(ci, pi) in &layout.edges {
        let (x0, y0) = pos(layout.nodes[ci].x, layout.nodes[ci].y);
        let (x1, y1) = pos(layout.nodes[pi].x, layout.nodes[pi].y);
        draw::line(&mut fb, x0, y0, x1, y1, BORDER);
    }
    // Nodes: box colored by significance (−log₁₀ p, saturating at 10).
    for (i, ln) in layout.nodes.iter().enumerate() {
        let (x, y) = pos(ln.x, ln.y);
        let node = &map.nodes[i];
        let color = match node.p_value {
            Some(p) => {
                let t = ((-p.max(1e-300).log10()) / 10.0).clamp(0.0, 1.0) as f32;
                Rgb::new(60, 60, 60).lerp(Rgb::new(255, 40, 40), t)
            }
            None => Rgb::new(60, 60, 60),
        };
        let is_focus = node.term == map.focus;
        let half = if is_focus { 5 } else { 3 };
        fb.fill_rect(
            x - half,
            y - half,
            (half * 2) as usize,
            (half * 2) as usize,
            color,
        );
        if is_focus {
            draw::rect_outline(
                &mut fb,
                x - half - 1,
                y - half - 1,
                (half * 2 + 2) as usize,
                (half * 2 + 2) as usize,
                MARK,
            );
        }
        let name = font::fit_text(&dag.term(node.term).name, 90, 1);
        font::draw_text(&mut fb, x + half + 2, y - 3, &name, LABEL, 1);
    }
    fb
}

/// Render a SPELL result panel (Figure 4): dataset-relevance bars and the
/// top gene list.
pub fn render_spell_panel(result: &SpellResult, width: usize, height: usize) -> Framebuffer {
    let mut fb = Framebuffer::new(width, height);
    font::draw_text(&mut fb, 4, 2, "SPELL SEARCH RESULTS", TITLE, 1);
    let bar_x = 4i64;
    let bar_max_w = (width / 2).saturating_sub(8);
    let mut y = 14i64;
    let wmax = result
        .datasets
        .iter()
        .map(|d| d.weight)
        .fold(0.0f32, f32::max)
        .max(f32::MIN_POSITIVE);
    for d in result
        .datasets
        .iter()
        .take((height.saturating_sub(20)) / 10 / 2)
    {
        let w = ((d.weight / wmax) * bar_max_w as f32) as usize;
        fb.fill_rect(bar_x, y, w.max(1), 6, Rgb::new(80, 160, 255));
        let label = font::fit_text(&d.name, width / 2 - 8, 1);
        font::draw_text(
            &mut fb,
            bar_x + bar_max_w as i64 + 6,
            y - 1,
            &label,
            LABEL,
            1,
        );
        y += 10;
    }
    // Top genes on the right half... below the bars.
    let mut gy = y + 6;
    font::draw_text(&mut fb, 4, gy, "TOP GENES:", TITLE, 1);
    gy += 10;
    for g in result.top_new_genes(((height as i64 - gy) / 9).max(0) as usize) {
        let line = format!("{} {:.3}", g.gene, g.score);
        font::draw_text(
            &mut fb,
            8,
            gy,
            &font::fit_text(&line, width - 12, 1),
            LABEL,
            1,
        );
        gy += 9;
    }
    fb
}

/// Compose the Figure-6 style tri-panel: ForestView left, GOLEM upper
/// right, SPELL lower right.
pub fn compose_figure6(
    forestview: &Framebuffer,
    golem: &Framebuffer,
    spell: &Framebuffer,
) -> Framebuffer {
    let right_w = golem.width().max(spell.width());
    let w = forestview.width() + right_w;
    let h = forestview.height().max(golem.height() + spell.height());
    let mut out = Framebuffer::new(w, h);
    out.blit(forestview, 0, 0);
    out.blit(golem, forestview.width() as i64, 0);
    out.blit(spell, forestview.width() as i64, golem.height() as i64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionOrigin;
    use fv_expr::{Dataset, ExprMatrix};
    use fv_wall::TileGrid;

    fn session() -> Session {
        let mut s = Session::new();
        let vals: Vec<f32> = (0..40 * 6)
            .map(|i| ((i * 13 % 17) as f32 - 8.0) * 0.4)
            .collect();
        let m = ExprMatrix::from_rows(40, 6, &vals).unwrap();
        s.load_dataset(Dataset::with_default_meta("alpha", m.clone()))
            .unwrap();
        s.load_dataset(Dataset::with_default_meta("beta", m))
            .unwrap();
        s.cluster_all();
        s.select_region(0, 5, 15);
        s
    }

    #[test]
    fn desktop_render_not_blank() {
        let s = session();
        let fb = render_desktop(&s, 400, 300);
        assert_eq!(fb.width(), 400);
        // Not all black: heatmap + borders drew something.
        let blank = fb.count_pixels(Rgb::BLACK);
        assert!(blank < 400 * 300, "nothing was drawn");
    }

    #[test]
    fn wall_render_matches_desktop_at_same_size() {
        let s = session();
        let grid = TileGrid::new(2, 2, 100, 75);
        let mut wall = WallRenderer::new(grid);
        render_wall(&s, &mut wall);
        let from_tiles = wall.composite();
        let direct = render_desktop(&s, 200, 150);
        assert_eq!(from_tiles, direct, "tiled render must equal direct render");
    }

    #[test]
    fn wall_render_reports_stats() {
        let s = session();
        let mut wall = WallRenderer::new(TileGrid::new(3, 2, 64, 64));
        let stats = render_wall(&s, &mut wall);
        assert_eq!(stats.tiles_rendered, 6);
        assert_eq!(stats.pixels_rendered, 6 * 64 * 64);
    }

    #[test]
    fn selection_marks_visible_in_global() {
        let mut s = session();
        s.clear_selection();
        let before = render_desktop(&s, 300, 200);
        s.select_region(0, 0, 10);
        let after = render_desktop(&s, 300, 200);
        assert_ne!(before, after, "selection must change the rendering");
        assert!(after.count_pixels(MARK) > before.count_pixels(MARK));
    }

    #[test]
    fn sync_toggle_changes_render() {
        let mut s = session();
        // Pick three genes and select them in REVERSE display order, so
        // the unsynchronized view (dataset display order) provably differs
        // from the synchronized view (selection order).
        let picks = [3usize, 9, 27];
        let mut ordered: Vec<usize> = picks.to_vec();
        ordered.sort_by_key(|&r| std::cmp::Reverse(s.display_pos_of_row(0, r)));
        let names: Vec<String> = ordered.iter().map(|r| format!("G{r}")).collect();
        let refs: Vec<&str> = names.iter().map(|x| x.as_str()).collect();
        s.select_genes(&refs, SelectionOrigin::List);

        let rows_sync = crate::sync::zoom_rows(&s, 0);
        s.set_sync(false);
        let rows_unsync = crate::sync::zoom_rows(&s, 0);
        assert_ne!(rows_sync, rows_unsync, "row orders must differ");

        s.set_sync(true);
        let sync_on = render_desktop(&s, 300, 200);
        s.set_sync(false);
        let sync_off = render_desktop(&s, 300, 200);
        assert_ne!(sync_on, sync_off);
    }

    #[test]
    fn array_clustering_changes_render() {
        let mut s = session();
        let before = render_desktop(&s, 300, 200);
        s.cluster_arrays(
            0,
            fv_cluster::Metric::Euclidean,
            fv_cluster::Linkage::Average,
        );
        s.cluster_arrays(
            1,
            fv_cluster::Metric::Euclidean,
            fv_cluster::Linkage::Average,
        );
        let after = render_desktop(&s, 300, 200);
        // The array-tree strip appears and (usually) columns permute.
        assert_ne!(before, after);
        // Wall rendering stays consistent with the array-clustered scene.
        let grid = TileGrid::new(2, 2, 75, 50);
        let mut wall = WallRenderer::new(grid);
        render_wall(&s, &mut wall);
        assert_eq!(wall.composite(), render_desktop(&s, 150, 100));
    }

    #[test]
    fn golem_map_renders() {
        use fv_golem::layout::layout_map;
        use fv_golem::map::build_local_map;
        use fv_ontology::dag::{DagBuilder, RelType};
        use fv_ontology::term::{Namespace, Term};
        let mut b = DagBuilder::new();
        let root = b
            .add_term(Term::new("GO:1", "root", Namespace::BiologicalProcess))
            .unwrap();
        let child = b
            .add_term(Term::new("GO:2", "stress", Namespace::BiologicalProcess))
            .unwrap();
        b.add_edge(child, root, RelType::IsA);
        let dag = b.build().unwrap();
        let map = build_local_map(&dag, child, 2, &[]);
        let layout = layout_map(&map, 2);
        let fb = render_golem_map(&map, &layout, &dag, 200, 150);
        assert!(fb.count_pixels(Rgb::BLACK) < 200 * 150);
    }

    #[test]
    fn compose_figure6_dimensions() {
        let a = Framebuffer::new(100, 80);
        let b = Framebuffer::new(50, 40);
        let c = Framebuffer::new(60, 30);
        let out = compose_figure6(&a, &b, &c);
        assert_eq!(out.width(), 160);
        assert_eq!(out.height(), 80);
    }

    #[test]
    fn empty_session_renders_blank() {
        let s = Session::new();
        let fb = render_desktop(&s, 100, 100);
        assert_eq!(fb.count_pixels(Rgb::BLACK), 100 * 100);
    }
}
