//! Visualization synchronization (the layer between analysis and panes in
//! Figure 1).
//!
//! "When a set of genes is selected, the zoom view for each dataset shows
//! the gene expression data in exactly the same order and same scroll
//! position. This allows the user to scan horizontally across a row of
//! expression data where each row corresponds to data for the same gene
//! even though it crosses multiple datasets. If desired it is possible to
//! turn off synchronous viewing in order to see the selected subsets in
//! the underlying gene order of each dataset." (paper, Section 2)
//!
//! Synchronized mode keeps one row per selected gene in every pane, with
//! **gaps** (blank rows) where a dataset does not measure the gene — that
//! is what keeps the horizontal scan row-aligned. Unsynchronized mode shows
//! each dataset's own subset in its own display (dendrogram) order, gap-free.

use crate::session::Session;

/// Zoom-view rows for dataset `d` under the session's sync setting:
/// each entry is `Some(matrix_row)` or `None` for an alignment gap.
pub fn zoom_rows(session: &Session, d: usize) -> Vec<Option<u32>> {
    let Some(sel) = session.selection() else {
        return Vec::new();
    };
    let merged = session.merged();
    if session.sync_enabled() {
        sel.genes()
            .iter()
            .map(|&g| merged.gene_row(d, g).map(|r| r as u32))
            .collect()
    } else {
        // The dataset's own display order, restricted to selected genes.
        let mut rows: Vec<u32> = sel
            .genes()
            .iter()
            .filter_map(|&g| merged.gene_row(d, g).map(|r| r as u32))
            .collect();
        rows.sort_by_key(|&r| session.display_pos_of_row(d, r as usize));
        rows.into_iter().map(Some).collect()
    }
}

/// Zoom rows after applying the shared scroll offset: the window of
/// `visible` rows starting at the session's scroll position.
pub fn zoom_rows_scrolled(session: &Session, d: usize, visible: usize) -> Vec<Option<u32>> {
    let rows = zoom_rows(session, d);
    let start = session.scroll().min(rows.len());
    rows.into_iter().skip(start).take(visible).collect()
}

/// Display-row positions of the selection in dataset `d`'s global view —
/// where the highlight lines are drawn ("all of the other datasets will
/// search for occurrences of those genes and highlight their position in
/// the global view with a line").
pub fn global_marks(session: &Session, d: usize) -> Vec<usize> {
    let Some(sel) = session.selection() else {
        return Vec::new();
    };
    let merged = session.merged();
    sel.genes()
        .iter()
        .filter_map(|&g| merged.gene_row(d, g))
        .map(|row| session.display_pos_of_row(d, row))
        .collect()
}

/// Check that synchronized zoom rows are row-aligned across datasets:
/// row `i` of every pane refers to the same gene (or a gap). Used by tests
/// and debug assertions.
pub fn verify_alignment(session: &Session) -> bool {
    let Some(sel) = session.selection() else {
        return true;
    };
    if !session.sync_enabled() {
        return true;
    }
    let merged = session.merged();
    for d in 0..session.n_datasets() {
        let rows = zoom_rows(session, d);
        if rows.len() != sel.len() {
            return false;
        }
        for (i, row) in rows.iter().enumerate() {
            if let Some(r) = row {
                let gene = sel.genes()[i];
                if merged.gene_row(d, gene) != Some(*r as usize) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionOrigin;
    use fv_expr::matrix::ExprMatrix;
    use fv_expr::meta::{ConditionMeta, GeneMeta};
    use fv_expr::Dataset;

    fn ds(name: &str, ids: &[&str], n_cols: usize) -> Dataset {
        let vals: Vec<f32> = (0..ids.len() * n_cols).map(|i| i as f32).collect();
        let m = ExprMatrix::from_rows(ids.len(), n_cols, &vals).unwrap();
        let genes = ids.iter().map(|&i| GeneMeta::id_only(i)).collect();
        let conds = (0..n_cols)
            .map(|c| ConditionMeta::new(format!("c{c}")))
            .collect();
        Dataset::new(name, m, genes, conds).unwrap()
    }

    fn session() -> Session {
        let mut s = Session::new();
        s.load_dataset(ds("a", &["G1", "G2", "G3", "G4"], 2))
            .unwrap();
        // b measures G3, G1 (different order), not G2/G4; adds G5
        s.load_dataset(ds("b", &["G3", "G5", "G1"], 2)).unwrap();
        s
    }

    #[test]
    fn sync_rows_follow_selection_order() {
        let mut s = session();
        s.select_genes(&["G2", "G3", "G1"], SelectionOrigin::List);
        let a = zoom_rows(&s, 0);
        assert_eq!(a, vec![Some(1), Some(2), Some(0)]);
        let b = zoom_rows(&s, 1);
        // G2 absent in b → gap; G3 row 0; G1 row 2
        assert_eq!(b, vec![None, Some(0), Some(2)]);
    }

    #[test]
    fn sync_alignment_verified() {
        let mut s = session();
        s.select_genes(&["G1", "G2", "G3", "G4", "G5"], SelectionOrigin::List);
        assert!(verify_alignment(&s));
    }

    #[test]
    fn unsync_uses_dataset_order_no_gaps() {
        let mut s = session();
        s.select_genes(&["G1", "G3"], SelectionOrigin::List);
        s.set_sync(false);
        let b = zoom_rows(&s, 1);
        // b's display order is load order: G3 (row 0) before G1 (row 2)
        assert_eq!(b, vec![Some(0), Some(2)]);
        assert!(b.iter().all(|r| r.is_some()));
    }

    #[test]
    fn unsync_respects_clustered_display_order() {
        let mut s = session();
        s.select_genes(&["G1", "G2", "G3", "G4"], SelectionOrigin::List);
        s.set_sync(false);
        // Force a custom display order by clustering... dataset a has rows
        // 0..3; after clustering the order may change, but the zoom rows
        // must follow display positions exactly.
        s.cluster_dataset(
            0,
            fv_cluster::Metric::Euclidean,
            fv_cluster::Linkage::Average,
        );
        let rows = zoom_rows(&s, 0);
        let pos: Vec<usize> = rows
            .iter()
            .map(|r| s.display_pos_of_row(0, r.unwrap() as usize))
            .collect();
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        assert_eq!(pos, sorted, "zoom rows must be in display order");
    }

    #[test]
    fn no_selection_empty_rows() {
        let s = session();
        assert!(zoom_rows(&s, 0).is_empty());
        assert!(global_marks(&s, 0).is_empty());
        assert!(verify_alignment(&s));
    }

    #[test]
    fn scrolled_window() {
        let mut s = session();
        s.select_genes(&["G1", "G2", "G3", "G4"], SelectionOrigin::List);
        s.scroll_by(1);
        let w = zoom_rows_scrolled(&s, 0, 2);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], Some(1)); // G2
        assert_eq!(w[1], Some(2)); // G3
    }

    #[test]
    fn scroll_same_window_position_across_panes() {
        let mut s = session();
        s.select_genes(&["G2", "G3"], SelectionOrigin::List);
        s.scroll_by(1);
        let a = zoom_rows_scrolled(&s, 0, 5);
        let b = zoom_rows_scrolled(&s, 1, 5);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        // both panes now show G3's row (or its gap)
        assert_eq!(a[0], Some(2));
        assert_eq!(b[0], Some(0));
    }

    #[test]
    fn global_marks_positions() {
        let mut s = session();
        s.select_genes(&["G3", "G5"], SelectionOrigin::List);
        assert_eq!(global_marks(&s, 0), vec![2]); // only G3 in a
        let mut marks_b = global_marks(&s, 1);
        marks_b.sort_unstable();
        assert_eq!(marks_b, vec![0, 1]); // G3 row 0, G5 row 1
    }
}
