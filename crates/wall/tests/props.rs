//! Property-based tests for the wall simulator: damage merging never loses
//! coverage and stays bounded, tile geometry round-trips, and the
//! fv-stream tile-frame codec is an exact encode/decode inverse.

use fv_wall::damage::DamageTracker;
use fv_wall::stream::{decode, FrameKind, TileFrame};
use fv_wall::tile::{TileGrid, Viewport};
use proptest::prelude::*;

prop_compose! {
    fn arb_rect()(
        x in 0usize..200,
        y in 0usize..200,
        w in 1usize..40,
        h in 1usize..40,
    ) -> Viewport {
        Viewport { x, y, w, h }
    }
}

prop_compose! {
    fn arb_grid()(
        tiles_x in 1usize..7,
        tiles_y in 1usize..5,
        tile_w in 1usize..40,
        tile_h in 1usize..40,
    ) -> TileGrid {
        TileGrid::new(tiles_x, tiles_y, tile_w, tile_h)
    }
}

prop_compose! {
    fn arb_frame()(
        seq in any::<u64>(),
        key in any::<bool>(),
        tile in 0usize..64,
        x in 0usize..5000,
        y in 0usize..5000,
        w in 1usize..32,
        h in 1usize..32,
        seed in any::<u64>(),
    ) -> TileFrame {
        let rect = Viewport { x, y, w, h };
        let mut s = seed | 1;
        let pixels = (0..rect.area() * 3)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 0xFF) as u8
            })
            .collect();
        TileFrame {
            seq,
            kind: if key { FrameKind::Key } else { FrameKind::Delta },
            tile,
            rect,
            pixels,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn damage_merge_never_loses_coverage(rects in prop::collection::vec(arb_rect(), 1..80)) {
        let mut t = DamageTracker::new();
        for r in &rects {
            t.add(*r);
        }
        // Every input corner pixel (cheap proxy for every input pixel) is
        // still covered by some tracked rect.
        for r in &rects {
            for &(px, py) in &[
                (r.x, r.y),
                (r.x + r.w - 1, r.y),
                (r.x, r.y + r.h - 1),
                (r.x + r.w - 1, r.y + r.h - 1),
            ] {
                prop_assert!(
                    t.rects().iter().any(|d| d.contains(px, py)),
                    "pixel ({px},{py}) lost after merging {} rects",
                    rects.len()
                );
            }
        }
        // The merge loop terminated (we got here) and stayed bounded.
        prop_assert!(t.rects().len() <= DamageTracker::MAX_RECTS);
        prop_assert!(t.rects().len() <= rects.len());
        // Tracked rects are pairwise non-touching, else a merge was missed.
        let tracked = t.rects();
        for i in 0..tracked.len() {
            for j in (i + 1)..tracked.len() {
                let a = &tracked[i];
                let b = &tracked[j];
                let touches = a.x <= b.x + b.w
                    && b.x <= a.x + a.w
                    && a.y <= b.y + b.h
                    && b.y <= a.y + a.h;
                prop_assert!(!touches, "tracked rects {i} and {j} still touch");
            }
        }
    }

    #[test]
    fn tile_at_inverts_tile_viewport(grid in arb_grid(), seed in any::<u64>()) {
        for i in 0..grid.n_tiles() {
            let vp = grid.tile_viewport_linear(i);
            // Any pixel of the viewport maps back to the same tile.
            let px = vp.x + (seed as usize) % vp.w;
            let py = vp.y + (seed as usize / 7) % vp.h;
            let (tx, ty) = grid.tile_at(px, py).expect("viewport pixel inside wall");
            prop_assert_eq!(ty * grid.tiles_x + tx, i);
            prop_assert_eq!(grid.tile_viewport(tx, ty), vp);
        }
        prop_assert!(grid.tile_at(grid.wall_width(), 0).is_none());
        prop_assert!(grid.tile_at(0, grid.wall_height()).is_none());
    }

    #[test]
    fn tile_frame_encode_decode_roundtrip(frame in arb_frame(), split in any::<u64>()) {
        let wire = frame.encode();
        let (back, used) = decode(&wire)
            .expect("well-formed frame decodes")
            .expect("complete frame decodes");
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(&back, &frame);
        // Any strict prefix is incomplete, never an error.
        let cut = (split as usize) % wire.len();
        prop_assert_eq!(decode(&wire[..cut]).expect("prefix is not an error"), None);
        // Two frames back to back decode independently.
        let mut twice = wire.clone();
        twice.extend_from_slice(&wire);
        let (first, used) = decode(&twice).unwrap().unwrap();
        prop_assert_eq!(&first, &frame);
        let (second, used2) = decode(&twice[used..]).unwrap().unwrap();
        prop_assert_eq!(&second, &frame);
        prop_assert_eq!(used + used2, twice.len());
    }
}
