//! Rayon-parallel per-tile wall rendering.
//!
//! The painter callback receives a tile framebuffer plus the tile's
//! viewport in wall coordinates and draws the portion of the scene that
//! falls inside it. Each tile owns its framebuffer, so tiles render fully
//! in parallel with no shared mutable state — the same decomposition the
//! real display wall used across its render nodes.

use crate::stats::FrameStats;
use crate::tile::{TileGrid, Viewport};
use fv_render::Framebuffer;
use rayon::prelude::*;
use std::time::Instant;

/// A wall renderer holding one framebuffer per tile.
#[derive(Debug)]
pub struct WallRenderer {
    grid: TileGrid,
    tiles: Vec<Framebuffer>,
}

impl WallRenderer {
    /// Allocate tile framebuffers for a grid.
    pub fn new(grid: TileGrid) -> Self {
        let tiles = (0..grid.n_tiles())
            .map(|_| Framebuffer::new(grid.tile_w, grid.tile_h))
            .collect();
        WallRenderer { grid, tiles }
    }

    /// The tile grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Read access to a tile's framebuffer.
    pub fn tile(&self, i: usize) -> &Framebuffer {
        &self.tiles[i]
    }

    /// Render every tile in parallel. `paint(fb, viewport)` must draw the
    /// scene region covered by `viewport` into `fb` (whose origin maps to
    /// `(viewport.x, viewport.y)` on the wall).
    pub fn render_frame<F>(&mut self, paint: F) -> FrameStats
    where
        F: Fn(&mut Framebuffer, Viewport) + Sync,
    {
        let start = Instant::now();
        let grid = self.grid;
        self.tiles.par_iter_mut().enumerate().for_each(|(i, fb)| {
            let vp = grid.tile_viewport_linear(i);
            paint(fb, vp);
        });
        let pixels = grid.total_pixels();
        FrameStats {
            tiles_rendered: grid.n_tiles(),
            pixels_rendered: pixels,
            bytes_shipped: pixels * 3,
            render_time: start.elapsed(),
        }
    }

    /// Render only the tiles intersecting any of `dirty` (wall-coordinate
    /// rectangles). Repainted tiles are repainted fully — the tile is the
    /// unit of distribution, as on the real wall — but untouched tiles cost
    /// nothing. Returns stats counting only repainted tiles.
    pub fn render_damage<F>(&mut self, dirty: &[Viewport], paint: F) -> FrameStats
    where
        F: Fn(&mut Framebuffer, Viewport) + Sync,
    {
        let start = Instant::now();
        let grid = self.grid;
        let needs: Vec<bool> = (0..grid.n_tiles())
            .map(|i| {
                let vp = grid.tile_viewport_linear(i);
                dirty.iter().any(|d| vp.intersect(d).is_some())
            })
            .collect();
        let rendered: usize = self
            .tiles
            .par_iter_mut()
            .enumerate()
            .map(|(i, fb)| {
                if needs[i] {
                    let vp = grid.tile_viewport_linear(i);
                    paint(fb, vp);
                    1usize
                } else {
                    0
                }
            })
            .sum();
        let pixels = rendered * grid.tile_w * grid.tile_h;
        FrameStats {
            tiles_rendered: rendered,
            pixels_rendered: pixels,
            bytes_shipped: pixels * 3,
            render_time: start.elapsed(),
        }
    }

    /// Composite all tiles into one full-wall framebuffer (what a bezel-free
    /// photograph of the wall would show — used for artifact output).
    pub fn composite(&self) -> Framebuffer {
        let mut out = Framebuffer::new(self.grid.wall_width(), self.grid.wall_height());
        for i in 0..self.grid.n_tiles() {
            let vp = self.grid.tile_viewport_linear(i);
            out.blit(&self.tiles[i], vp.x as i64, vp.y as i64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_render::color::Rgb;

    /// Paint each pixel with a color derived from wall coordinates so tile
    /// seams are verifiable after compositing.
    fn coordinate_paint(fb: &mut Framebuffer, vp: Viewport) {
        for y in 0..vp.h {
            for x in 0..vp.w {
                let wx = (vp.x + x) as u8;
                let wy = (vp.y + y) as u8;
                fb.put(x as i64, y as i64, Rgb::new(wx, wy, wx ^ wy));
            }
        }
    }

    #[test]
    fn full_frame_renders_all_tiles() {
        let mut r = WallRenderer::new(TileGrid::new(3, 2, 8, 8));
        let stats = r.render_frame(coordinate_paint);
        assert_eq!(stats.tiles_rendered, 6);
        assert_eq!(stats.pixels_rendered, 3 * 2 * 64);
        assert_eq!(stats.bytes_shipped, stats.pixels_rendered * 3);
    }

    #[test]
    fn composite_is_seamless() {
        let grid = TileGrid::new(3, 2, 8, 8);
        let mut r = WallRenderer::new(grid);
        r.render_frame(coordinate_paint);
        let wall = r.composite();
        assert_eq!(wall.width(), 24);
        assert_eq!(wall.height(), 16);
        // Every wall pixel matches the coordinate function — including
        // across tile boundaries.
        for y in 0..16u8 {
            for x in 0..24u8 {
                assert_eq!(
                    wall.get(x as i64, y as i64),
                    Some(Rgb::new(x, y, x ^ y)),
                    "seam mismatch at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_single_tile_reference() {
        // Render the same scene on a 1×1 "wall" of equal resolution.
        let big = TileGrid::new(4, 4, 6, 6);
        let one = TileGrid::new(1, 1, 24, 24);
        let mut a = WallRenderer::new(big);
        let mut b = WallRenderer::new(one);
        a.render_frame(coordinate_paint);
        b.render_frame(coordinate_paint);
        assert_eq!(a.composite(), b.composite());
    }

    #[test]
    fn damage_renders_only_touched_tiles() {
        let grid = TileGrid::new(4, 4, 10, 10);
        let mut r = WallRenderer::new(grid);
        r.render_frame(coordinate_paint);
        // Dirty rect inside tile (1,1) only.
        let dirty = vec![Viewport {
            x: 12,
            y: 12,
            w: 3,
            h: 3,
        }];
        let stats = r.render_damage(&dirty, coordinate_paint);
        assert_eq!(stats.tiles_rendered, 1);
        assert_eq!(stats.pixels_rendered, 100);
    }

    #[test]
    fn damage_spanning_tiles_renders_each() {
        let grid = TileGrid::new(4, 4, 10, 10);
        let mut r = WallRenderer::new(grid);
        // Rect crossing the vertical boundary between tiles (0,0) and (1,0).
        let dirty = vec![Viewport {
            x: 8,
            y: 2,
            w: 4,
            h: 4,
        }];
        let stats = r.render_damage(&dirty, coordinate_paint);
        assert_eq!(stats.tiles_rendered, 2);
    }

    #[test]
    fn empty_damage_renders_nothing() {
        let mut r = WallRenderer::new(TileGrid::new(2, 2, 8, 8));
        let stats = r.render_damage(&[], coordinate_paint);
        assert_eq!(stats.tiles_rendered, 0);
        assert_eq!(stats.pixels_rendered, 0);
    }

    #[test]
    fn damage_repaint_updates_content() {
        let grid = TileGrid::new(2, 1, 8, 8);
        let mut r = WallRenderer::new(grid);
        r.render_frame(|fb, _| fb.clear(Rgb::BLACK));
        let dirty = vec![Viewport {
            x: 0,
            y: 0,
            w: 1,
            h: 1,
        }];
        r.render_damage(&dirty, |fb, _| fb.clear(Rgb::RED));
        // tile 0 repainted red, tile 1 untouched black
        assert_eq!(r.tile(0).get(0, 0), Some(Rgb::RED));
        assert_eq!(r.tile(1).get(0, 0), Some(Rgb::BLACK));
    }
}
