//! # fv-wall — display-wall simulator
//!
//! The paper runs ForestView on Princeton's scalable display wall (Figure 3)
//! to buy "about two orders of magnitude" more pixels than a desktop
//! (Section 1). We do not have a projector cluster; per the reproduction's
//! substitution rule this crate simulates one faithfully at the level that
//! matters for the paper's claims — pixels, partitioning, parallelism and
//! distribution cost:
//!
//! - [`tile`] — tile grids (a wall is `tiles_x × tiles_y` fixed-resolution
//!   tiles) with the Princeton-wall and desktop presets,
//! - [`renderer`] — rayon-parallel per-tile rendering against any painter
//!   callback, plus compositing into a single full-wall surface,
//! - [`damage`] — dirty-rectangle tracking so dynamic interaction (pan,
//!   zoom, selection) re-renders only what changed,
//! - [`pipeline`] — an alternative crossbeam channel-based tile pipeline
//!   (producer/worker/compositor), the ablation counterpart to the rayon
//!   scheduler,
//! - [`net`] — a distribution cost model (per-message latency + bandwidth)
//!   for shipping rendered tiles to their display nodes,
//! - [`stream`] — the tile-frame codec the fv-stream pub/sub plane ships
//!   over TCP (key/delta frames, encoder, viewer-side assembler),
//! - [`stats`] — per-frame counters.

#![forbid(unsafe_code)]

pub mod damage;
pub mod net;
pub mod pipeline;
pub mod renderer;
pub mod stats;
pub mod stream;
pub mod tile;

pub use renderer::WallRenderer;
pub use tile::TileGrid;
