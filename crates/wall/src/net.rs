//! Distribution cost model.
//!
//! On the physical wall, rendered content crosses a network to reach
//! display nodes. The simulator models that link with the two classic
//! parameters — per-message latency and bandwidth — so experiments can
//! report how much interaction cost is pixel *shipping* rather than pixel
//! *painting*, and compare full-frame streaming against damage-limited
//! updates.

use std::time::Duration;

/// A simple latency + bandwidth link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Per-message fixed cost.
    pub latency: Duration,
    /// Payload bandwidth in bytes/second.
    pub bandwidth_bps: f64,
}

impl NetworkModel {
    /// Gigabit Ethernet, the display-wall interconnect of the era
    /// (~1 Gb/s, ~100 µs per message).
    pub fn gigabit() -> Self {
        NetworkModel {
            latency: Duration::from_micros(100),
            bandwidth_bps: 125_000_000.0,
        }
    }

    /// 100 Mb/s Fast Ethernet (the original 2000-era wall).
    pub fn fast_ethernet() -> Self {
        NetworkModel {
            latency: Duration::from_micros(200),
            bandwidth_bps: 12_500_000.0,
        }
    }

    /// Time to ship one message of `bytes` payload.
    pub fn message_time(&self, bytes: usize) -> Duration {
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bandwidth_bps);
        self.latency + transfer
    }

    /// Time to ship `n_messages` messages totalling `total_bytes`,
    /// assuming the per-tile links run in parallel across `parallel_links`
    /// (display nodes each have their own NIC; the sender serializes onto
    /// `parallel_links` independent paths round-robin).
    pub fn frame_time(
        &self,
        n_messages: usize,
        total_bytes: usize,
        parallel_links: usize,
    ) -> Duration {
        if n_messages == 0 {
            return Duration::ZERO;
        }
        let links = parallel_links.max(1).min(n_messages);
        let msgs_per_link = n_messages.div_ceil(links);
        let bytes_per_link = total_bytes.div_ceil(links);

        self.latency * msgs_per_link as u32
            + Duration::from_secs_f64(bytes_per_link as f64 / self.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_time_adds_latency_and_transfer() {
        let net = NetworkModel {
            latency: Duration::from_millis(1),
            bandwidth_bps: 1_000_000.0,
        };
        let t = net.message_time(500_000); // 0.5 s transfer
        assert!((t.as_secs_f64() - 0.501).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let net = NetworkModel::gigabit();
        assert_eq!(net.message_time(0), net.latency);
    }

    #[test]
    fn frame_time_parallel_links_divide_cost() {
        let net = NetworkModel {
            latency: Duration::from_micros(0),
            bandwidth_bps: 1_000_000.0,
        };
        let serial = net.frame_time(4, 4_000_000, 1);
        let quad = net.frame_time(4, 4_000_000, 4);
        assert!((serial.as_secs_f64() - 4.0).abs() < 1e-9);
        assert!((quad.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frame_time_zero_messages_is_zero() {
        assert_eq!(NetworkModel::gigabit().frame_time(0, 0, 8), Duration::ZERO);
    }

    #[test]
    fn more_links_than_messages_clamped() {
        let net = NetworkModel::gigabit();
        let a = net.frame_time(2, 1000, 2);
        let b = net.frame_time(2, 1000, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn gigabit_ships_wall_frame_in_interactive_budget() {
        // 24 XGA tiles × 3 B/px ≈ 56.6 MB; on 24 parallel gigabit links a
        // full-frame ship is ~19 ms — the number E3 reports.
        let net = NetworkModel::gigabit();
        let tile_bytes = 1024 * 768 * 3;
        let t = net.frame_time(24, 24 * tile_bytes, 24);
        assert!(t.as_secs_f64() < 0.025, "frame ship {t:?}");
        assert!(t.as_secs_f64() > 0.015, "frame ship {t:?}");
    }
}
