//! Per-frame render statistics.

use std::time::Duration;

/// Counters for one rendered wall frame.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameStats {
    /// Tiles actually repainted this frame.
    pub tiles_rendered: usize,
    /// Pixels actually repainted.
    pub pixels_rendered: usize,
    /// Bytes that would cross the network to display nodes (3 B/pixel for
    /// repainted regions).
    pub bytes_shipped: usize,
    /// Wall-clock render time.
    pub render_time: Duration,
}

impl FrameStats {
    /// Accumulate another frame's counters (durations add).
    pub fn accumulate(&mut self, other: &FrameStats) {
        self.tiles_rendered += other.tiles_rendered;
        self.pixels_rendered += other.pixels_rendered;
        self.bytes_shipped += other.bytes_shipped;
        self.render_time += other.render_time;
    }

    /// Pixels per second, 0 when no time elapsed.
    pub fn pixels_per_second(&self) -> f64 {
        let s = self.render_time.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.pixels_rendered as f64 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_adds() {
        let mut a = FrameStats {
            tiles_rendered: 2,
            pixels_rendered: 100,
            bytes_shipped: 300,
            render_time: Duration::from_millis(5),
        };
        let b = FrameStats {
            tiles_rendered: 1,
            pixels_rendered: 50,
            bytes_shipped: 150,
            render_time: Duration::from_millis(3),
        };
        a.accumulate(&b);
        assert_eq!(a.tiles_rendered, 3);
        assert_eq!(a.pixels_rendered, 150);
        assert_eq!(a.bytes_shipped, 450);
        assert_eq!(a.render_time, Duration::from_millis(8));
    }

    #[test]
    fn pixels_per_second() {
        let s = FrameStats {
            pixels_rendered: 1000,
            render_time: Duration::from_millis(100),
            ..Default::default()
        };
        assert!((s.pixels_per_second() - 10_000.0).abs() < 1.0);
        assert_eq!(FrameStats::default().pixels_per_second(), 0.0);
    }
}
