//! Dirty-rectangle tracking.
//!
//! The "dynamic" in the paper's title is interactivity: panning, zooming
//! and selection must repaint at interactive rates even at wall resolution.
//! The damage tracker accumulates the rectangles interaction invalidates
//! and merges overlapping ones so the renderer repaints a near-minimal
//! region (ablation A2 measures exactly this against full redraws).

use crate::tile::Viewport;

/// Accumulates dirty rectangles between frames.
#[derive(Debug, Clone, Default)]
pub struct DamageTracker {
    rects: Vec<Viewport>,
}

impl DamageTracker {
    /// Maximum rectangles tracked before the tracker collapses everything
    /// into one bounding box. Each `add` re-scans the list until no merge
    /// fires, so an interaction storm of disjoint rects would otherwise
    /// cost O(n²) per frame at wall scale; past the cap, one conservative
    /// box (never under-reporting damage) keeps every `add` O(cap).
    pub const MAX_RECTS: usize = 64;

    /// Empty tracker.
    pub fn new() -> Self {
        DamageTracker::default()
    }

    /// Mark a rectangle dirty. Rectangles that touch or overlap an existing
    /// entry are merged into its bounding box (cheap, slightly
    /// conservative — never under-reports damage). Once more than
    /// [`DamageTracker::MAX_RECTS`] disjoint rects accumulate, the whole
    /// set collapses to its bounding box.
    pub fn add(&mut self, rect: Viewport) {
        if rect.w == 0 || rect.h == 0 {
            return;
        }
        let mut merged = rect;
        loop {
            let mut merged_any = false;
            self.rects.retain(|r| {
                if overlaps_or_touches(r, &merged) {
                    merged = bounding_box(r, &merged);
                    merged_any = true;
                    false
                } else {
                    true
                }
            });
            if !merged_any {
                break;
            }
        }
        self.rects.push(merged);
        if self.rects.len() > Self::MAX_RECTS {
            let all = self
                .rects
                .iter()
                .skip(1)
                .fold(self.rects[0], |acc, r| bounding_box(&acc, r));
            self.rects.clear();
            self.rects.push(all);
        }
    }

    /// The current dirty rectangles.
    pub fn rects(&self) -> &[Viewport] {
        &self.rects
    }

    /// Whether anything is dirty.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Total dirty area (upper bound; merged boxes may include clean
    /// pixels).
    pub fn area(&self) -> usize {
        self.rects.iter().map(|r| r.area()).sum()
    }

    /// Clear after a frame has repainted.
    pub fn clear(&mut self) {
        self.rects.clear();
    }

    /// Take the rectangles, leaving the tracker empty — the per-frame
    /// hand-off to the renderer.
    pub fn take(&mut self) -> Vec<Viewport> {
        std::mem::take(&mut self.rects)
    }
}

fn overlaps_or_touches(a: &Viewport, b: &Viewport) -> bool {
    a.x <= b.x + b.w && b.x <= a.x + a.w && a.y <= b.y + b.h && b.y <= a.y + a.h
}

fn bounding_box(a: &Viewport, b: &Viewport) -> Viewport {
    let x0 = a.x.min(b.x);
    let y0 = a.y.min(b.y);
    let x1 = (a.x + a.w).max(b.x + b.w);
    let y1 = (a.y + a.h).max(b.y + b.h);
    Viewport {
        x: x0,
        y: y0,
        w: x1 - x0,
        h: y1 - y0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp(x: usize, y: usize, w: usize, h: usize) -> Viewport {
        Viewport { x, y, w, h }
    }

    #[test]
    fn add_disjoint_keeps_separate() {
        let mut t = DamageTracker::new();
        t.add(vp(0, 0, 5, 5));
        t.add(vp(20, 20, 5, 5));
        assert_eq!(t.rects().len(), 2);
        assert_eq!(t.area(), 50);
    }

    #[test]
    fn add_overlapping_merges() {
        let mut t = DamageTracker::new();
        t.add(vp(0, 0, 10, 10));
        t.add(vp(5, 5, 10, 10));
        assert_eq!(t.rects().len(), 1);
        assert_eq!(t.rects()[0], vp(0, 0, 15, 15));
    }

    #[test]
    fn chained_merge_collapses_transitively() {
        let mut t = DamageTracker::new();
        t.add(vp(0, 0, 4, 4));
        t.add(vp(20, 0, 4, 4));
        // bridge connects both
        t.add(vp(3, 0, 18, 4));
        assert_eq!(t.rects().len(), 1);
        assert_eq!(t.rects()[0], vp(0, 0, 24, 4));
    }

    #[test]
    fn union_covers_all_inputs() {
        let inputs = [vp(2, 3, 7, 4), vp(8, 1, 3, 9), vp(30, 30, 2, 2)];
        let mut t = DamageTracker::new();
        for r in inputs {
            t.add(r);
        }
        // every input pixel falls inside some tracked rect
        for r in inputs {
            for y in r.y..r.y + r.h {
                for x in r.x..r.x + r.w {
                    assert!(
                        t.rects().iter().any(|d| d.contains(x, y)),
                        "pixel ({x},{y}) not covered"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_size_ignored() {
        let mut t = DamageTracker::new();
        t.add(vp(1, 1, 0, 5));
        t.add(vp(1, 1, 5, 0));
        assert!(t.is_empty());
    }

    #[test]
    fn clear_and_take() {
        let mut t = DamageTracker::new();
        t.add(vp(0, 0, 2, 2));
        let taken = t.take();
        assert_eq!(taken.len(), 1);
        assert!(t.is_empty());
        t.add(vp(0, 0, 2, 2));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn rect_count_stays_capped_under_interaction_storm() {
        // Thousands of pairwise-disjoint rects (stride 3, size 1) — the
        // pre-cap worst case, where every `add` re-scanned the whole list.
        let mut t = DamageTracker::new();
        for i in 0..5_000usize {
            t.add(vp((i % 500) * 3, (i / 500) * 3, 1, 1));
        }
        assert!(
            t.rects().len() <= DamageTracker::MAX_RECTS,
            "tracked {} rects",
            t.rects().len()
        );
        // Coverage is never lost: the final single box spans all inputs.
        for &(x, y) in &[(0, 0), (499 * 3, 9 * 3), (250 * 3, 5 * 3)] {
            assert!(
                t.rects().iter().any(|d| d.contains(x, y)),
                "pixel ({x},{y}) not covered after collapse"
            );
        }
    }

    #[test]
    fn collapse_past_cap_is_single_bounding_box() {
        let mut t = DamageTracker::new();
        for i in 0..=DamageTracker::MAX_RECTS {
            t.add(vp(i * 10, 0, 2, 2));
        }
        assert_eq!(t.rects().len(), 1);
        assert_eq!(t.rects()[0], vp(0, 0, DamageTracker::MAX_RECTS * 10 + 2, 2));
    }

    #[test]
    fn touching_rects_merge() {
        let mut t = DamageTracker::new();
        t.add(vp(0, 0, 5, 5));
        t.add(vp(5, 0, 5, 5)); // shares an edge
        assert_eq!(t.rects().len(), 1);
        assert_eq!(t.rects()[0], vp(0, 0, 10, 5));
    }
}
