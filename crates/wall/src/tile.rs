//! Tile grid geometry.

/// A rectangle in wall pixel coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Viewport {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Width.
    pub w: usize,
    /// Height.
    pub h: usize,
}

impl Viewport {
    /// Whether the point lies inside.
    pub fn contains(&self, px: usize, py: usize) -> bool {
        px >= self.x && px < self.x + self.w && py >= self.y && py < self.y + self.h
    }

    /// Intersection with another viewport, if non-empty.
    pub fn intersect(&self, other: &Viewport) -> Option<Viewport> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = (self.x + self.w).min(other.x + other.w);
        let y1 = (self.y + self.h).min(other.y + other.h);
        if x0 < x1 && y0 < y1 {
            Some(Viewport {
                x: x0,
                y: y0,
                w: x1 - x0,
                h: y1 - y0,
            })
        } else {
            None
        }
    }

    /// Pixel area.
    pub fn area(&self) -> usize {
        self.w * self.h
    }
}

/// A wall composed of a grid of equal tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    /// Tiles horizontally.
    pub tiles_x: usize,
    /// Tiles vertically.
    pub tiles_y: usize,
    /// Tile width in pixels.
    pub tile_w: usize,
    /// Tile height in pixels.
    pub tile_h: usize,
}

impl TileGrid {
    /// Construct a grid; all dimensions must be non-zero.
    pub fn new(tiles_x: usize, tiles_y: usize, tile_w: usize, tile_h: usize) -> Self {
        assert!(
            tiles_x > 0 && tiles_y > 0 && tile_w > 0 && tile_h > 0,
            "tile grid dimensions must be non-zero"
        );
        TileGrid {
            tiles_x,
            tiles_y,
            tile_w,
            tile_h,
        }
    }

    /// The original Princeton scalable display wall: 24 projectors in a
    /// 6×4 grid (Li et al. 2000, paper reference [5]), XGA-class tiles.
    pub fn princeton_wall() -> Self {
        TileGrid::new(6, 4, 1024, 768)
    }

    /// A single-tile "wall": the 2-megapixel desktop the paper compares
    /// against ("Today's 2-million-pixel, 30-inch desktop display",
    /// Section 1 — modeled as 1600×1200).
    pub fn desktop() -> Self {
        TileGrid::new(1, 1, 1600, 1200)
    }

    /// Number of tiles.
    pub fn n_tiles(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// Wall width in pixels.
    pub fn wall_width(&self) -> usize {
        self.tiles_x * self.tile_w
    }

    /// Wall height in pixels.
    pub fn wall_height(&self) -> usize {
        self.tiles_y * self.tile_h
    }

    /// Total wall pixels.
    pub fn total_pixels(&self) -> usize {
        self.wall_width() * self.wall_height()
    }

    /// Viewport of tile `(tx, ty)`.
    pub fn tile_viewport(&self, tx: usize, ty: usize) -> Viewport {
        assert!(tx < self.tiles_x && ty < self.tiles_y, "tile out of range");
        Viewport {
            x: tx * self.tile_w,
            y: ty * self.tile_h,
            w: self.tile_w,
            h: self.tile_h,
        }
    }

    /// Viewport of tile by linear index (row-major).
    pub fn tile_viewport_linear(&self, i: usize) -> Viewport {
        self.tile_viewport(i % self.tiles_x, i / self.tiles_x)
    }

    /// Which tile contains the wall pixel, if in range.
    pub fn tile_at(&self, px: usize, py: usize) -> Option<(usize, usize)> {
        if px >= self.wall_width() || py >= self.wall_height() {
            return None;
        }
        Some((px / self.tile_w, py / self.tile_h))
    }

    /// Pixel-capacity ratio against another surface — the paper's
    /// "two orders of magnitude" comparison.
    pub fn capacity_ratio(&self, other: &TileGrid) -> f64 {
        self.total_pixels() as f64 / other.total_pixels() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry() {
        let g = TileGrid::new(3, 2, 100, 50);
        assert_eq!(g.n_tiles(), 6);
        assert_eq!(g.wall_width(), 300);
        assert_eq!(g.wall_height(), 100);
        assert_eq!(g.total_pixels(), 30_000);
    }

    #[test]
    fn tile_viewports_partition_wall() {
        let g = TileGrid::new(3, 2, 10, 20);
        let mut covered = 0usize;
        for i in 0..g.n_tiles() {
            covered += g.tile_viewport_linear(i).area();
        }
        assert_eq!(covered, g.total_pixels());
        // no overlaps between distinct tiles
        for i in 0..g.n_tiles() {
            for j in (i + 1)..g.n_tiles() {
                let a = g.tile_viewport_linear(i);
                let b = g.tile_viewport_linear(j);
                assert!(a.intersect(&b).is_none(), "tiles {i},{j} overlap");
            }
        }
    }

    #[test]
    fn tile_at_inverse_of_viewport() {
        let g = TileGrid::new(4, 3, 7, 9);
        for ty in 0..3 {
            for tx in 0..4 {
                let v = g.tile_viewport(tx, ty);
                assert_eq!(g.tile_at(v.x, v.y), Some((tx, ty)));
                assert_eq!(g.tile_at(v.x + v.w - 1, v.y + v.h - 1), Some((tx, ty)));
            }
        }
        assert_eq!(g.tile_at(28, 0), None);
    }

    #[test]
    fn viewport_contains_and_intersect() {
        let a = Viewport {
            x: 0,
            y: 0,
            w: 10,
            h: 10,
        };
        let b = Viewport {
            x: 5,
            y: 5,
            w: 10,
            h: 10,
        };
        assert!(a.contains(9, 9));
        assert!(!a.contains(10, 9));
        let i = a.intersect(&b).unwrap();
        assert_eq!(
            i,
            Viewport {
                x: 5,
                y: 5,
                w: 5,
                h: 5
            }
        );
        let c = Viewport {
            x: 20,
            y: 20,
            w: 3,
            h: 3,
        };
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn princeton_wall_two_orders_of_magnitude_claim() {
        // The paper claims large walls improve capacity by ~two orders of
        // magnitude over a 2 MP desktop; the 2000-era 24-projector wall is
        // ~9.4×; a modern 6×4 full-HD wall reaches ~25×; the claim's 100×
        // needs the bigger walls the group later built. We record the
        // actual ratios in EXPERIMENTS.md; here we pin the geometry.
        let wall = TileGrid::princeton_wall();
        let desk = TileGrid::desktop();
        let ratio = wall.capacity_ratio(&desk);
        assert!((ratio - 9.83).abs() < 0.02, "ratio {ratio}");
        let modern = TileGrid::new(6, 4, 1920, 1080);
        assert!(modern.capacity_ratio(&desk) > 25.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = TileGrid::new(0, 1, 10, 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tile_viewport_oob_panics() {
        let g = TileGrid::new(2, 2, 4, 4);
        let _ = g.tile_viewport(2, 0);
    }
}
