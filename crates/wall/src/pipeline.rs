//! Channel-based tile pipeline — the alternative scheduler.
//!
//! The rayon renderer ([`crate::renderer`]) uses work-stealing over tiles.
//! This module implements the explicit producer / worker / compositor
//! pipeline a distributed wall actually runs (each display node pulls tile
//! jobs, renders, and ships the result), using crossbeam channels and
//! scoped threads. Ablation A4 compares the two.

use crate::stats::FrameStats;
use crate::tile::TileGrid;
use crossbeam::channel;
use fv_render::Framebuffer;
use parking_lot::Mutex;
use std::time::Instant;

/// Render a full wall frame through an `n_workers`-thread tile pipeline.
/// Returns the composited wall image and frame stats.
pub fn render_pipeline<F>(grid: TileGrid, n_workers: usize, paint: F) -> (Framebuffer, FrameStats)
where
    F: Fn(&mut Framebuffer, crate::tile::Viewport) + Sync,
{
    let start = Instant::now();
    let n_workers = n_workers.max(1);
    let (job_tx, job_rx) = channel::bounded::<usize>(grid.n_tiles());
    let (done_tx, done_rx) = channel::bounded::<(usize, Framebuffer)>(grid.n_tiles());

    // The compositor target is shared behind a mutex; workers ship whole
    // tiles, the compositor blits. parking_lot keeps the uncontended path
    // cheap (tiles arrive mostly serialized through the channel anyway).
    let wall = Mutex::new(Framebuffer::new(grid.wall_width(), grid.wall_height()));
    let paint = &paint;

    std::thread::scope(|scope| {
        // Producer: enqueue every tile index.
        for i in 0..grid.n_tiles() {
            job_tx.send(i).expect("queue sized for all tiles");
        }
        drop(job_tx);

        // Workers.
        for _ in 0..n_workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                while let Ok(i) = job_rx.recv() {
                    let vp = grid.tile_viewport_linear(i);
                    let mut fb = Framebuffer::new(grid.tile_w, grid.tile_h);
                    paint(&mut fb, vp);
                    if done_tx.send((i, fb)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);

        // Compositor (this thread).
        while let Ok((i, fb)) = done_rx.recv() {
            let vp = grid.tile_viewport_linear(i);
            wall.lock().blit(&fb, vp.x as i64, vp.y as i64);
        }
    });

    let pixels = grid.total_pixels();
    let stats = FrameStats {
        tiles_rendered: grid.n_tiles(),
        pixels_rendered: pixels,
        bytes_shipped: pixels * 3,
        render_time: start.elapsed(),
    };
    (wall.into_inner(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::renderer::WallRenderer;
    use crate::tile::Viewport;
    use fv_render::color::Rgb;

    fn coordinate_paint(fb: &mut Framebuffer, vp: Viewport) {
        for y in 0..vp.h {
            for x in 0..vp.w {
                let wx = (vp.x + x) as u8;
                let wy = (vp.y + y) as u8;
                fb.put(x as i64, y as i64, Rgb::new(wx, wy, wx.wrapping_add(wy)));
            }
        }
    }

    #[test]
    fn pipeline_matches_rayon_renderer() {
        let grid = TileGrid::new(4, 3, 8, 8);
        let (wall, stats) = render_pipeline(grid, 3, coordinate_paint);
        let mut reference = WallRenderer::new(grid);
        reference.render_frame(coordinate_paint);
        assert_eq!(wall, reference.composite());
        assert_eq!(stats.tiles_rendered, 12);
    }

    #[test]
    fn single_worker_correct() {
        let grid = TileGrid::new(2, 2, 5, 5);
        let (wall, _) = render_pipeline(grid, 1, coordinate_paint);
        assert_eq!(wall.get(0, 0), Some(Rgb::new(0, 0, 0)));
        assert_eq!(wall.get(9, 9), Some(Rgb::new(9, 9, 18)));
    }

    #[test]
    fn worker_count_oversubscription_ok() {
        let grid = TileGrid::new(2, 1, 4, 4);
        let (wall, stats) = render_pipeline(grid, 16, coordinate_paint);
        assert_eq!(stats.tiles_rendered, 2);
        assert_eq!(wall.width(), 8);
    }

    #[test]
    fn zero_workers_clamped_to_one() {
        let grid = TileGrid::new(1, 1, 4, 4);
        let (wall, _) = render_pipeline(grid, 0, coordinate_paint);
        assert_eq!(wall.height(), 4);
    }
}
