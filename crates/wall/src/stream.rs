//! Tile-frame codec for fv-stream.
//!
//! The pub/sub streaming plane ships wall content as **tile frames**: each
//! frame is a text header line followed by a raw packed-RGB payload,
//!
//! ```text
//! tile <seq> <key|delta> <tile_index> <x>:<y>:<w>:<h> <nbytes>\n<nbytes of RGB>
//! ```
//!
//! where the rectangle is in wall pixel coordinates and always lies inside
//! the named tile's viewport (`nbytes == w * h * 3`). A **key** frame
//! carries a whole tile; a **delta** frame carries only a damaged
//! sub-rectangle. All frames of one published update share one `seq`, and a
//! subscriber that sees contiguous `seq` values has missed nothing — the
//! server re-syncs a lagging subscriber with a fresh keyframe burst rather
//! than ever skipping a `seq`.
//!
//! This module is transport-agnostic: [`TileStreamEncoder`] turns a wall
//! [`Framebuffer`] plus damage into frames, [`decode`] is the incremental
//! wire parser, and [`TileAssembler`] is the viewer-side inverse that
//! reassembles frames into a framebuffer.

use crate::damage::DamageTracker;
use crate::tile::{TileGrid, Viewport};
use fv_render::Framebuffer;

/// Keyword opening every tile-frame header line.
pub const FRAME_KEYWORD: &str = "tile";

/// Longest header line the decoder will buffer before giving up.
const MAX_HEADER: usize = 256;

/// Whether a frame carries a whole tile or a damaged sub-rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Full tile contents; resets the viewer's tile unconditionally.
    Key,
    /// Damage-limited update to part of a tile.
    Delta,
}

impl FrameKind {
    /// Wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameKind::Key => "key",
            FrameKind::Delta => "delta",
        }
    }

    /// Parse a wire token.
    pub fn from_str_token(s: &str) -> Option<FrameKind> {
        match s {
            "key" => Some(FrameKind::Key),
            "delta" => Some(FrameKind::Delta),
            _ => None,
        }
    }
}

/// One streamed update to one tile.
#[derive(Debug, Clone, PartialEq)]
pub struct TileFrame {
    /// Publish sequence number; every frame of one update shares it.
    pub seq: u64,
    /// Key or delta.
    pub kind: FrameKind,
    /// Linear (row-major) tile index in the subscriber's grid.
    pub tile: usize,
    /// Updated rectangle in wall pixel coordinates.
    pub rect: Viewport,
    /// Packed RGB, row-major, `rect.w * rect.h * 3` bytes.
    pub pixels: Vec<u8>,
}

impl TileFrame {
    /// Total encoded size (header line + payload).
    pub fn encoded_len(&self) -> usize {
        self.header().len() + self.pixels.len()
    }

    fn header(&self) -> String {
        format!(
            "{} {} {} {} {}:{}:{}:{} {}\n",
            FRAME_KEYWORD,
            self.seq,
            self.kind.as_str(),
            self.tile,
            self.rect.x,
            self.rect.y,
            self.rect.w,
            self.rect.h,
            self.pixels.len()
        )
    }

    /// Append the wire encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        debug_assert_eq!(self.pixels.len(), self.rect.area() * 3);
        out.extend_from_slice(self.header().as_bytes());
        out.extend_from_slice(&self.pixels);
    }

    /// The wire encoding as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }
}

/// A malformed tile frame on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamError(pub String);

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for StreamError {}

fn bad(msg: impl Into<String>) -> StreamError {
    StreamError(msg.into())
}

/// Incrementally decode one tile frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (read more bytes and retry), or `Ok(Some((frame, consumed)))` where
/// `consumed` bytes should be drained from the front of the buffer.
pub fn decode(buf: &[u8]) -> Result<Option<(TileFrame, usize)>, StreamError> {
    let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
        if buf.len() > MAX_HEADER {
            return Err(bad("tile frame header too long"));
        }
        return Ok(None);
    };
    if nl > MAX_HEADER {
        return Err(bad("tile frame header too long"));
    }
    let header = std::str::from_utf8(&buf[..nl])
        .map_err(|_| bad("tile frame header is not utf-8"))?
        .trim_end_matches('\r');
    let mut it = header.split_ascii_whitespace();
    if it.next() != Some(FRAME_KEYWORD) {
        return Err(bad(format!("expected tile frame header, got {header:?}")));
    }
    let mut field = |what: &str| {
        it.next()
            .ok_or_else(|| bad(format!("tile frame header missing {what}")))
    };
    let seq: u64 = field("seq")?
        .parse()
        .map_err(|_| bad("tile frame seq is not a number"))?;
    let kind = FrameKind::from_str_token(field("kind")?)
        .ok_or_else(|| bad("tile frame kind must be key or delta"))?;
    let tile: usize = field("tile index")?
        .parse()
        .map_err(|_| bad("tile frame index is not a number"))?;
    let rect_tok = field("rect")?;
    let mut parts = rect_tok.split(':');
    let mut dim = |what: &str| -> Result<usize, StreamError> {
        parts
            .next()
            .ok_or_else(|| bad(format!("tile frame rect missing {what}")))?
            .parse()
            .map_err(|_| bad(format!("tile frame rect {what} is not a number")))
    };
    let rect = Viewport {
        x: dim("x")?,
        y: dim("y")?,
        w: dim("w")?,
        h: dim("h")?,
    };
    if parts.next().is_some() {
        return Err(bad("tile frame rect has trailing fields"));
    }
    let nbytes: usize = field("payload length")?
        .parse()
        .map_err(|_| bad("tile frame payload length is not a number"))?;
    if it.next().is_some() {
        return Err(bad("tile frame header has trailing fields"));
    }
    if rect.w == 0 || rect.h == 0 {
        return Err(bad("tile frame rect is empty"));
    }
    if nbytes != rect.area() * 3 {
        return Err(bad(format!(
            "tile frame payload length {nbytes} does not match rect {}x{}",
            rect.w, rect.h
        )));
    }
    let body = nl + 1;
    if buf.len() < body + nbytes {
        return Ok(None);
    }
    let frame = TileFrame {
        seq,
        kind,
        tile,
        rect,
        pixels: buf[body..body + nbytes].to_vec(),
    };
    Ok(Some((frame, body + nbytes)))
}

/// Intersect damage rectangles with a grid's tiles.
///
/// Damage is first coalesced through a [`DamageTracker`] (overlapping or
/// touching rects merge, and the tracker's cap bounds the work), then each
/// coalesced rect is clipped against every tile viewport it crosses.
/// Returns `(linear tile index, clipped rect)` pairs in tile order.
pub fn tile_damage(grid: &TileGrid, damage: &[Viewport]) -> Vec<(usize, Viewport)> {
    let mut tracker = DamageTracker::new();
    let wall = Viewport {
        x: 0,
        y: 0,
        w: grid.wall_width(),
        h: grid.wall_height(),
    };
    for r in damage {
        if let Some(clipped) = r.intersect(&wall) {
            tracker.add(clipped);
        }
    }
    let mut out = Vec::new();
    for i in 0..grid.n_tiles() {
        let vp = grid.tile_viewport_linear(i);
        let mut tile_tracker = DamageTracker::new();
        for r in tracker.rects() {
            if let Some(hit) = vp.intersect(r) {
                tile_tracker.add(hit);
            }
        }
        out.extend(tile_tracker.take().into_iter().map(|r| (i, r)));
    }
    out
}

/// Per-subscriber frame producer: owns the subscriber's grid and the
/// monotonically increasing publish sequence.
#[derive(Debug, Clone)]
pub struct TileStreamEncoder {
    grid: TileGrid,
    seq: u64,
}

impl TileStreamEncoder {
    /// Encoder for a subscriber viewing through `grid`.
    pub fn new(grid: TileGrid) -> Self {
        TileStreamEncoder { grid, seq: 0 }
    }

    /// The subscriber's grid.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Sequence number the next emitted update will carry.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Emit a full keyframe burst: one `key` frame per tile, all sharing
    /// the next sequence number. `wall` must match the grid's dimensions.
    pub fn keyframe(&mut self, wall: &Framebuffer) -> Vec<TileFrame> {
        self.check_wall(wall);
        let seq = self.seq;
        self.seq += 1;
        (0..self.grid.n_tiles())
            .map(|i| {
                let rect = self.grid.tile_viewport_linear(i);
                let mut pixels = Vec::new();
                wall.copy_rect_into(rect.x, rect.y, rect.w, rect.h, &mut pixels);
                TileFrame {
                    seq,
                    kind: FrameKind::Key,
                    tile: i,
                    rect,
                    pixels,
                }
            })
            .collect()
    }

    /// Emit `delta` frames for pre-clipped `(tile, rect)` damage pairs (see
    /// [`tile_damage`]), all sharing the next sequence number. Returns an
    /// empty vec — and burns no sequence number — when there is no damage.
    pub fn delta(&mut self, wall: &Framebuffer, tiles: &[(usize, Viewport)]) -> Vec<TileFrame> {
        self.check_wall(wall);
        if tiles.is_empty() {
            return Vec::new();
        }
        let seq = self.seq;
        self.seq += 1;
        tiles
            .iter()
            .map(|&(tile, rect)| {
                debug_assert_eq!(
                    self.grid.tile_viewport_linear(tile).intersect(&rect),
                    Some(rect),
                    "delta rect escapes its tile"
                );
                let mut pixels = Vec::new();
                wall.copy_rect_into(rect.x, rect.y, rect.w, rect.h, &mut pixels);
                TileFrame {
                    seq,
                    kind: FrameKind::Delta,
                    tile,
                    rect,
                    pixels,
                }
            })
            .collect()
    }

    fn check_wall(&self, wall: &Framebuffer) {
        assert!(
            wall.width() == self.grid.wall_width() && wall.height() == self.grid.wall_height(),
            "framebuffer {}x{} does not match wall {}x{}",
            wall.width(),
            wall.height(),
            self.grid.wall_width(),
            self.grid.wall_height()
        );
    }
}

/// Viewer-side reassembly: applies tile frames onto a wall framebuffer.
#[derive(Debug, Clone)]
pub struct TileAssembler {
    grid: TileGrid,
    fb: Framebuffer,
    last_seq: Option<u64>,
    frames: u64,
    keyframes: u64,
}

impl TileAssembler {
    /// Blank wall for the given grid.
    pub fn new(grid: TileGrid) -> Self {
        TileAssembler {
            fb: Framebuffer::new(grid.wall_width(), grid.wall_height()),
            grid,
            last_seq: None,
            frames: 0,
            keyframes: 0,
        }
    }

    /// Validate and apply one frame.
    pub fn apply(&mut self, frame: &TileFrame) -> Result<(), StreamError> {
        if frame.tile >= self.grid.n_tiles() {
            return Err(bad(format!(
                "tile index {} out of range for {} tiles",
                frame.tile,
                self.grid.n_tiles()
            )));
        }
        let vp = self.grid.tile_viewport_linear(frame.tile);
        if vp.intersect(&frame.rect) != Some(frame.rect) {
            return Err(bad(format!(
                "frame rect {}:{}:{}:{} escapes tile {}",
                frame.rect.x, frame.rect.y, frame.rect.w, frame.rect.h, frame.tile
            )));
        }
        if frame.pixels.len() != frame.rect.area() * 3 {
            return Err(bad("frame payload length does not match rect"));
        }
        if let Some(last) = self.last_seq {
            if frame.seq < last {
                return Err(bad(format!(
                    "frame seq {} went backwards (last {})",
                    frame.seq, last
                )));
            }
        }
        self.fb.write_rect(
            frame.rect.x,
            frame.rect.y,
            frame.rect.w,
            frame.rect.h,
            &frame.pixels,
        );
        self.last_seq = Some(frame.seq);
        self.frames += 1;
        if frame.kind == FrameKind::Key {
            self.keyframes += 1;
        }
        Ok(())
    }

    /// The reassembled wall.
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// The grid this assembler reassembles into.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Highest sequence number applied, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Frames applied so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Key frames applied so far (≥ `n_tiles` twice means the stream
    /// re-synced with a fresh keyframe at least once).
    pub fn keyframes(&self) -> u64 {
        self.keyframes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_render::Rgb;

    fn vp(x: usize, y: usize, w: usize, h: usize) -> Viewport {
        Viewport { x, y, w, h }
    }

    fn gradient(w: usize, h: usize) -> Framebuffer {
        let mut fb = Framebuffer::new(w, h);
        for y in 0..h {
            for x in 0..w {
                fb.put(x as i64, y as i64, Rgb::new(x as u8, y as u8, 7));
            }
        }
        fb
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = TileFrame {
            seq: 42,
            kind: FrameKind::Delta,
            tile: 3,
            rect: vp(10, 20, 4, 2),
            pixels: (0..24).collect(),
        };
        let wire = f.encode();
        let (back, used) = decode(&wire).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back, f);
    }

    #[test]
    fn decode_incomplete_returns_none() {
        let f = TileFrame {
            seq: 0,
            kind: FrameKind::Key,
            tile: 0,
            rect: vp(0, 0, 2, 2),
            pixels: vec![9; 12],
        };
        let wire = f.encode();
        for cut in 0..wire.len() {
            assert_eq!(decode(&wire[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"nonsense header\n").is_err());
        assert!(decode(b"tile x key 0 0:0:1:1 3\n").is_err());
        assert!(decode(b"tile 0 huh 0 0:0:1:1 3\n").is_err());
        assert!(decode(b"tile 0 key 0 0:0:1:1 5\n").is_err()); // wrong nbytes
        assert!(decode(b"tile 0 key 0 0:0:0:1 0\n").is_err()); // empty rect
        assert!(decode(b"tile 0 key 0 0:0:1:1 3 extra\n").is_err());
        let long = vec![b'x'; MAX_HEADER + 2];
        assert!(decode(&long).is_err());
    }

    #[test]
    fn keyframe_covers_wall_and_reassembles() {
        let grid = TileGrid::new(3, 2, 8, 4);
        let wall = gradient(24, 8);
        let mut enc = TileStreamEncoder::new(grid);
        let frames = enc.keyframe(&wall);
        assert_eq!(frames.len(), 6);
        assert!(frames
            .iter()
            .all(|f| f.seq == 0 && f.kind == FrameKind::Key));
        let mut asm = TileAssembler::new(grid);
        for f in &frames {
            asm.apply(f).unwrap();
        }
        assert_eq!(asm.framebuffer(), &wall);
        assert_eq!(asm.keyframes(), 6);
    }

    #[test]
    fn delta_ships_only_damage_and_converges() {
        let grid = TileGrid::new(2, 2, 8, 8);
        let before = gradient(16, 16);
        let mut after = before.clone();
        after.fill_rect(6, 6, 5, 5, Rgb::new(200, 0, 0)); // crosses all 4 tiles

        let mut enc = TileStreamEncoder::new(grid);
        let mut asm = TileAssembler::new(grid);
        for f in enc.keyframe(&before) {
            asm.apply(&f).unwrap();
        }
        let tiles = tile_damage(&grid, &[vp(6, 6, 5, 5)]);
        assert_eq!(tiles.len(), 4, "damage crosses four tiles");
        let frames = enc.delta(&after, &tiles);
        let shipped: usize = frames.iter().map(|f| f.pixels.len()).sum();
        assert!(shipped < after.bytes().len() / 4, "delta should be small");
        for f in &frames {
            assert_eq!(f.seq, 1);
            asm.apply(f).unwrap();
        }
        assert_eq!(asm.framebuffer(), &after);
    }

    #[test]
    fn empty_damage_burns_no_seq() {
        let grid = TileGrid::new(1, 1, 4, 4);
        let wall = gradient(4, 4);
        let mut enc = TileStreamEncoder::new(grid);
        assert!(enc.delta(&wall, &[]).is_empty());
        assert_eq!(enc.next_seq(), 0);
    }

    #[test]
    fn tile_damage_clips_to_wall() {
        let grid = TileGrid::new(2, 1, 4, 4);
        let tiles = tile_damage(&grid, &[vp(6, 2, 100, 100)]);
        assert_eq!(tiles, vec![(1, vp(6, 2, 2, 2))]);
        assert!(tile_damage(&grid, &[vp(50, 50, 3, 3)]).is_empty());
    }

    #[test]
    fn assembler_rejects_bad_frames() {
        let grid = TileGrid::new(2, 1, 4, 4);
        let mut asm = TileAssembler::new(grid);
        let escape = TileFrame {
            seq: 0,
            kind: FrameKind::Delta,
            tile: 0,
            rect: vp(2, 0, 4, 2), // spills into tile 1
            pixels: vec![0; 24],
        };
        assert!(asm.apply(&escape).is_err());
        let oob = TileFrame {
            seq: 0,
            kind: FrameKind::Key,
            tile: 9,
            rect: vp(0, 0, 1, 1),
            pixels: vec![0; 3],
        };
        assert!(asm.apply(&oob).is_err());
    }

    #[test]
    fn assembler_rejects_seq_regression() {
        let grid = TileGrid::new(1, 1, 2, 2);
        let wall = gradient(2, 2);
        let mut enc = TileStreamEncoder::new(grid);
        let mut asm = TileAssembler::new(grid);
        let k0 = enc.keyframe(&wall);
        let k1 = enc.keyframe(&wall);
        asm.apply(&k1[0]).unwrap();
        assert!(asm.apply(&k0[0]).is_err());
    }
}
