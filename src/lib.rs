//! # forestview-repro — reproduction suite façade
//!
//! This crate hosts the runnable examples (`examples/`), the `fvtool`
//! command-line front end (`src/bin/fvtool.rs`), and cross-crate
//! integration tests (`tests/`) for the ForestView reproduction. The
//! library surface simply re-exports the workspace crates so examples and
//! downstream experiments can reach everything through one dependency.
//!
//! ## How the system is driven
//!
//! Since the `fv-api` redesign, every front end speaks one typed,
//! serializable protocol instead of calling session methods directly:
//!
//! ```text
//!   fvtool CLI ─┐
//!   examples  ──┼── Request/Response ──► fv_api::EngineHub ──► fv_api::Engine ──► forestview::Session
//!   scripts   ──┘        (wire codec: parse_script / format_response)
//! ```
//!
//! - [`api`] (`fv-api`) — the [`api::Request`] / [`api::Response`] enums,
//!   typed [`api::ApiError`] codes, the single-session [`api::Engine`]
//!   (with one layout/damage pass per batch), the multi-session
//!   [`api::EngineHub`], and the line-oriented wire codec that makes
//!   request streams replayable from text files (`fvtool script`).
//!   See `crates/api/README.md` for the protocol grammar.
//! - [`forestview`] — the application core the engine executes against:
//!   session state, interaction commands, panes, synchronization,
//!   rendering.
//! - The remaining crates are the paper's subsystems: data substrate
//!   (`fv-expr`, `fv-formats`), analysis (`fv-cluster`, `fv-spell`,
//!   `fv-golem`, `fv-linalg`, `fv-ontology`), visualization (`fv-render`,
//!   `fv-wall`), transport (`fv-net`, re-exported as [`net`]), and
//!   synthetic data/workloads (`fv-synth`).
//! - [`soak`] — the soak/chaos harness (`fvtool soak`): generated
//!   workload clients + fault injectors against an in-process server,
//!   with replay-equivalence, drain, and thread-leak invariants checked
//!   at teardown.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction records.

#![forbid(unsafe_code)]

pub mod soak;

pub use forestview;
pub use fv_api as api;
pub use fv_cluster as cluster;
pub use fv_expr as expr;
pub use fv_formats as formats;
pub use fv_golem as golem;
pub use fv_linalg as linalg;
pub use fv_net as net;
pub use fv_ontology as ontology;
pub use fv_render as render;
pub use fv_spell as spell;
pub use fv_synth as synth;
pub use fv_wall as wall;

/// Directory examples write image/text artifacts into (created on demand).
pub fn artifact_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("artifacts");
    std::fs::create_dir_all(&dir).expect("create artifacts directory");
    dir
}

#[cfg(test)]
mod tests {
    #[test]
    fn artifact_dir_exists_after_call() {
        let d = super::artifact_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn api_reachable_through_facade() {
        let req = crate::api::parse_request("cluster_all").unwrap();
        assert!(req.is_mutation());
    }
}
