//! # forestview-repro — reproduction suite façade
//!
//! This crate hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`) for the ForestView reproduction. The
//! library surface simply re-exports the workspace crates so examples and
//! downstream experiments can reach everything through one dependency.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! per-figure reproduction records.

pub use forestview;
pub use fv_cluster as cluster;
pub use fv_expr as expr;
pub use fv_formats as formats;
pub use fv_golem as golem;
pub use fv_linalg as linalg;
pub use fv_ontology as ontology;
pub use fv_render as render;
pub use fv_spell as spell;
pub use fv_synth as synth;
pub use fv_wall as wall;

/// Directory examples write image/text artifacts into (created on demand).
pub fn artifact_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("artifacts");
    std::fs::create_dir_all(&dir).expect("create artifacts directory");
    dir
}

#[cfg(test)]
mod tests {
    #[test]
    fn artifact_dir_exists_after_call() {
        let d = super::artifact_dir();
        assert!(d.is_dir());
    }
}
