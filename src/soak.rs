//! Soak/chaos harness: N generated workload clients against an
//! in-process `fv-net` server, with fault injectors running alongside,
//! and hard invariants checked at teardown.
//!
//! The pieces it composes are all elsewhere — `fv_synth::workload`
//! generates the traffic, `fv_net` serves it, `fv_net::replay`
//! re-derives the expected replies — this module only orchestrates and
//! asserts. One soak run:
//!
//! 1. snapshot the process thread count, boot a server on an ephemeral
//!    port;
//! 2. launch one thread per generated client, each playing its workload
//!    line-by-line and recording the exchange as a wire trace;
//! 3. concurrently, chaos injectors rotate through three faults:
//!    **dirty disconnects** (send work, vanish without reading the
//!    reply), **garbage frames** (oversized and non-UTF-8 lines that
//!    must be answered typed, then survive a liveness ping), and
//!    **migration storms** (`balance auto` + forced `migrate` of live
//!    sessions); a deliberately slow tile-stream watcher subscribes to
//!    the first client's session and dallies between reads;
//! 4. teardown asserts: every client finished with zero transport
//!    errors; each recorded trace **replays byte-identically against a
//!    fresh local `EngineHub`** (committed state == sequential replay);
//!    the watcher's sequence numbers were strictly increasing; the
//!    server drained (`queued=0` everywhere, `subscribers=0`) and its
//!    `garbage`/`disconnects` counters saw the injected chaos; and
//!    after shutdown the process thread count is back to the baseline
//!    (zero leaked threads).
//!
//! Everything is seeded; the only nondeterminism is scheduling, which
//! the invariants are deliberately insensitive to.
//!
//! A second harness, [`run_restart_soak`], attacks durability instead
//! of concurrency: it boots a REAL `fvtool serve --state-dir` child
//! process, populates sessions over TCP, waits for the checkpoint
//! cadence to capture them, SIGKILLs the server mid-flight, reboots it
//! on the same state directory, and asserts that every session came
//! back (`recovered=N` in the boot banner *and* in `stats`) with
//! byte-identical probe transcripts and an identical session roster.

use fv_api::{
    parse_session_image, ApiError, EngineHub, ErrorCode, SessionId, SessionStore, TraceEvent,
};
use fv_net::frame::{read_reply, LineReader, MAX_LINE};
use fv_net::{replay_on_hub, Client, Server, ServerConfig, Watcher};
use fv_synth::workload::{generate, WorkloadKind, WorkloadSpec};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scene every soak server (and its replay hubs) runs — must divide
/// evenly by the watcher grid.
pub const SOAK_SCENE: (usize, usize) = (640, 480);

/// Watcher tile grid.
const WATCH_GRID: (usize, usize) = (2, 2);

/// Knobs of one soak run. `Default` is the CI smoke shape.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Workload scenario every client plays.
    pub kind: WorkloadKind,
    /// Concurrent generated clients.
    pub clients: usize,
    /// Bursts per client (workload length).
    pub bursts: usize,
    /// Genes per generated scenario dataset (workload weight).
    pub n_genes: usize,
    /// Master seed — clients derive stable per-client streams from it.
    pub seed: u64,
    /// Server shard count.
    pub shards: usize,
    /// Server per-connection pending-request limit.
    pub queue_limit: usize,
    /// Concurrent chaos injector threads (0 disables chaos).
    pub chaos_injectors: usize,
    /// Fault rounds each injector performs.
    pub chaos_rounds: usize,
    /// Slow tile-stream watchers (0 disables streaming).
    pub slow_watchers: usize,
    /// Watcher dally between reads — what makes it *slow*.
    pub watcher_dally_ms: u64,
    /// Verify each recorded trace against a fresh local hub at teardown
    /// (skipped automatically for scenarios that share sessions).
    pub verify_replay: bool,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            kind: WorkloadKind::Mixed,
            clients: 4,
            bursts: 3,
            n_genes: 60,
            seed: 20070331,
            shards: 2,
            queue_limit: 128,
            chaos_injectors: 2,
            chaos_rounds: 6,
            slow_watchers: 1,
            watcher_dally_ms: 10,
            verify_replay: true,
        }
    }
}

/// What a soak run observed. `failures` empty ⇔ all invariants held.
#[derive(Debug, Default)]
pub struct SoakReport {
    pub clients: usize,
    pub lines_sent: usize,
    pub ok_replies: usize,
    pub err_replies: usize,
    pub chaos_disconnects: usize,
    pub chaos_garbage_lines: usize,
    pub chaos_migrations: usize,
    pub watcher_frames: u64,
    pub watcher_keyframes: u64,
    pub stats_garbage_frames: u64,
    pub stats_dirty_disconnects: u64,
    pub replays_verified: usize,
    pub threads_before: Option<usize>,
    pub threads_after: Option<usize>,
    pub failures: Vec<String>,
}

impl SoakReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable multi-line summary (stable `key=value` fields so
    /// CI can grep it).
    pub fn render(&self) -> String {
        let mut out = format!(
            "soak clients={} lines={} ok={} err={} chaos_disconnects={} chaos_garbage={} \
             chaos_migrations={} watcher_frames={} watcher_keyframes={} stats_garbage={} \
             stats_disconnects={} replays_verified={} threads_before={} threads_after={} \
             verdict={}",
            self.clients,
            self.lines_sent,
            self.ok_replies,
            self.err_replies,
            self.chaos_disconnects,
            self.chaos_garbage_lines,
            self.chaos_migrations,
            self.watcher_frames,
            self.watcher_keyframes,
            self.stats_garbage_frames,
            self.stats_dirty_disconnects,
            self.replays_verified,
            self.threads_before.map_or(-1, |n| n as i64),
            self.threads_after.map_or(-1, |n| n as i64),
            if self.passed() { "pass" } else { "FAIL" },
        );
        for f in &self.failures {
            out.push_str("\n  invariant violated: ");
            out.push_str(f);
        }
        out
    }
}

/// Threads of this process, via `/proc/self/task` (None off-Linux —
/// the leak invariant is then skipped, not failed).
fn count_threads() -> Option<usize> {
    std::fs::read_dir("/proc/self/task").ok().map(|d| d.count())
}

/// What one generated client brought home.
struct ClientRun {
    session: String,
    events: Vec<TraceEvent>,
    ok: usize,
    err: usize,
    transport_error: Option<String>,
}

/// What one chaos injector did.
#[derive(Default)]
struct ChaosRun {
    disconnects: usize,
    garbage_lines: usize,
    migrations: usize,
    failures: Vec<String>,
}

/// Run one soak. Transport-level setup failures (cannot bind, cannot
/// connect) error out; invariant violations land in the report instead.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, ApiError> {
    let mut report = SoakReport {
        clients: cfg.clients,
        threads_before: count_threads(),
        ..SoakReport::default()
    };

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            shards: cfg.shards.max(1),
            scene: SOAK_SCENE,
            queue_limit: cfg.queue_limit.max(1),
            ..ServerConfig::default()
        },
    )
    .map_err(|e| ApiError::io(format!("soak bind: {e}")))?;
    let addr = server.local_addr().to_string();

    let spec = WorkloadSpec {
        kind: cfg.kind,
        clients: cfg.clients,
        bursts: cfg.bursts,
        // `scenario <n> <seed>` plants 4 modules + the ESR sets and
        // needs ~50+ genes; below that the generated workload would be
        // asking the engine to panic, not to work.
        n_genes: cfg.n_genes.max(60),
        seed: cfg.seed,
    };
    let scripts = generate(&spec);
    let watch_session = scripts
        .first()
        .map(|s| s.session.clone())
        .unwrap_or_else(|| "main".to_string());
    let live_sessions: Vec<String> = scripts.iter().map(|s| s.session.clone()).collect();

    let stop = Arc::new(AtomicBool::new(false));

    // ── clients ─────────────────────────────────────────────────────
    let mut client_handles = Vec::new();
    for script in &scripts {
        let addr = addr.clone();
        let session = script.session.clone();
        let lines = script.wire_lines();
        client_handles.push(
            std::thread::Builder::new()
                .name(format!("soak-client-{session}"))
                .spawn(move || -> ClientRun {
                    let mut run = ClientRun {
                        session,
                        events: Vec::with_capacity(lines.len() * 2),
                        ok: 0,
                        err: 0,
                        transport_error: None,
                    };
                    let mut client = match Client::connect(&addr) {
                        Ok(c) => c,
                        Err(e) => {
                            run.transport_error = Some(format!("connect: {e}"));
                            return run;
                        }
                    };
                    for line in &lines {
                        match client.roundtrip(line) {
                            Ok(reply) => {
                                match &reply {
                                    Ok(_) => run.ok += 1,
                                    Err(_) => run.err += 1,
                                }
                                run.events.push(TraceEvent::Send(line.clone()));
                                run.events.push(TraceEvent::Recv(reply));
                            }
                            Err(e) => {
                                run.transport_error = Some(format!("line {line:?}: {e}"));
                                return run;
                            }
                        }
                    }
                    run
                })
                .map_err(|e| ApiError::io(format!("spawn client: {e}")))?,
        );
    }

    // ── chaos injectors ─────────────────────────────────────────────
    let mut chaos_handles = Vec::new();
    for i in 0..cfg.chaos_injectors {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let sessions = live_sessions.clone();
        let rounds = cfg.chaos_rounds;
        let shards = cfg.shards.max(1);
        chaos_handles.push(
            std::thread::Builder::new()
                .name(format!("soak-chaos-{i}"))
                .spawn(move || chaos_loop(&addr, i, rounds, shards, &sessions, &stop))
                .map_err(|e| ApiError::io(format!("spawn chaos: {e}")))?,
        );
    }

    // ── slow watchers ───────────────────────────────────────────────
    let mut watcher_handles = Vec::new();
    for i in 0..cfg.slow_watchers {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        let session = watch_session.clone();
        let dally = Duration::from_millis(cfg.watcher_dally_ms);
        watcher_handles.push(
            std::thread::Builder::new()
                .name(format!("soak-watch-{i}"))
                .spawn(move || watch_loop(&addr, &session, dally, &stop))
                .map_err(|e| ApiError::io(format!("spawn watcher: {e}")))?,
        );
    }

    // ── join clients, then wind chaos/watchers down ─────────────────
    let mut runs = Vec::new();
    for handle in client_handles {
        match handle.join() {
            Ok(run) => runs.push(run),
            Err(_) => report.failures.push("a client thread panicked".into()),
        }
    }
    stop.store(true, Ordering::SeqCst);
    for handle in chaos_handles {
        match handle.join() {
            Ok(chaos) => {
                report.chaos_disconnects += chaos.disconnects;
                report.chaos_garbage_lines += chaos.garbage_lines;
                report.chaos_migrations += chaos.migrations;
                report.failures.extend(chaos.failures);
            }
            Err(_) => report.failures.push("a chaos thread panicked".into()),
        }
    }
    for handle in watcher_handles {
        match handle.join() {
            Ok(Ok((frames, keyframes))) => {
                report.watcher_frames += frames;
                report.watcher_keyframes += keyframes;
            }
            Ok(Err(e)) => report.failures.push(format!("watcher: {e}")),
            Err(_) => report.failures.push("a watcher thread panicked".into()),
        }
    }

    for run in &runs {
        report.lines_sent += run.events.iter().filter(|e| e.is_send()).count();
        report.ok_replies += run.ok;
        report.err_replies += run.err;
        if let Some(e) = &run.transport_error {
            report.failures.push(format!("client {}: {e}", run.session));
        }
    }

    // ── drain + counter invariants (server still up) ────────────────
    match drained_stats(&addr) {
        Ok(stats) => {
            report.stats_garbage_frames = stats.garbage_frames;
            report.stats_dirty_disconnects = stats.dirty_disconnects;
            if stats.stream.subscribers != 0 {
                report.failures.push(format!(
                    "stream subscribers not drained: {}",
                    stats.stream.subscribers
                ));
            }
            if cfg.chaos_injectors > 0 && cfg.chaos_rounds >= 3 {
                // Every injector rotates disconnect→garbage→migrate, so
                // three rounds guarantee at least one of each.
                if report.chaos_garbage_lines > 0 && stats.garbage_frames == 0 {
                    report
                        .failures
                        .push("garbage was injected but stats garbage=0".into());
                }
                if report.chaos_disconnects > 0 && stats.dirty_disconnects == 0 {
                    report
                        .failures
                        .push("dirty disconnects were injected but stats disconnects=0".into());
                }
            }
        }
        Err(e) => report.failures.push(format!("drain check: {e}")),
    }

    // ── sequential-replay equivalence ───────────────────────────────
    if cfg.verify_replay && cfg.kind.replay_deterministic() {
        for run in &runs {
            if run.transport_error.is_some() {
                continue; // already reported
            }
            let mut hub = EngineHub::with_scene(SOAK_SCENE.0, SOAK_SCENE.1);
            match replay_on_hub(&mut hub, &run.events) {
                Ok(outcome) if outcome.matches() => report.replays_verified += 1,
                Ok(outcome) => {
                    let (line, exp, got) =
                        outcome
                            .first_divergence()
                            .unwrap_or((0, String::new(), String::new()));
                    report.failures.push(format!(
                        "client {}: replay diverged at transcript line {line}: server answered \
                         {exp:?}, sequential replay answered {got:?}",
                        run.session
                    ));
                }
                Err(e) => report
                    .failures
                    .push(format!("client {}: replay failed: {e}", run.session)),
            }
        }
    }

    // ── shutdown + thread-leak invariant ────────────────────────────
    match Client::connect(&addr).and_then(|mut c| c.shutdown_server()) {
        Ok(()) => {}
        Err(e) => report.failures.push(format!("shutdown: {e}")),
    }
    server.join();
    // Give the OS a beat to reap joined threads before counting.
    report.threads_after = count_threads();
    if let (Some(before), Some(mut after)) = (report.threads_before, report.threads_after) {
        for _ in 0..50 {
            if after <= before {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
            after = count_threads().unwrap_or(after);
        }
        report.threads_after = Some(after);
        if after > before {
            report.failures.push(format!(
                "thread leak: {before} threads before soak, {after} after teardown"
            ));
        }
    }

    Ok(report)
}

/// Poll `stats` until every shard row reports `queued=0` (bounded
/// retries), returning the final snapshot.
fn drained_stats(addr: &str) -> Result<fv_net::ServerStats, ApiError> {
    let mut control = Client::connect(addr)?;
    let mut last = control.stats()?;
    for _ in 0..100 {
        if last.shards.iter().all(|s| s.queued == 0) {
            return Ok(last);
        }
        std::thread::sleep(Duration::from_millis(25));
        last = control.stats()?;
    }
    Err(ApiError::new(
        ErrorCode::Internal,
        format!(
            "shard queues never drained: {:?}",
            last.shards.iter().map(|s| s.queued).collect::<Vec<_>>()
        ),
    ))
}

/// One chaos thread: rotate disconnect → garbage → migration-storm
/// until the round budget is spent or the soak winds down.
fn chaos_loop(
    addr: &str,
    injector: usize,
    rounds: usize,
    shards: usize,
    sessions: &[String],
    stop: &AtomicBool,
) -> ChaosRun {
    let mut run = ChaosRun::default();
    for round in 0..rounds {
        // Finish the guaranteed first rotation even if clients are
        // quick; stop early only after every fault kind ran once.
        if round >= 3 && stop.load(Ordering::SeqCst) {
            break;
        }
        let fault = (injector + round) % 3;
        let result = match fault {
            0 => chaos_disconnect(addr, injector, &mut run),
            1 => chaos_garbage(addr, &mut run),
            _ => chaos_migration_storm(addr, round, shards, sessions, &mut run),
        };
        if let Err(e) = result {
            run.failures
                .push(format!("chaos injector {injector} round {round}: {e}"));
            break;
        }
    }
    run
}

/// Send work, then vanish without reading the reply — the server must
/// count a dirty disconnect and keep serving everyone else.
fn chaos_disconnect(addr: &str, injector: usize, run: &mut ChaosRun) -> Result<(), ApiError> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| ApiError::io(format!("chaos connect: {e}")))?;
    // A heavy pipelined burst: by the time the server notices the FIN,
    // work is still queued or in flight, so the drop is dirty.
    let burst = format!("use chaos-{injector}\nscenario 200 {injector}\ncluster_all\nscroll 1\n");
    stream
        .write_all(burst.as_bytes())
        .map_err(|e| ApiError::io(format!("chaos write: {e}")))?;
    drop(stream); // no read — that is the point
    run.disconnects += 1;
    Ok(())
}

/// Oversized and non-UTF-8 lines must be answered with typed errors,
/// after which the connection still answers a liveness ping.
fn chaos_garbage(addr: &str, run: &mut ChaosRun) -> Result<(), ApiError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| ApiError::io(format!("chaos connect: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| ApiError::io(format!("chaos clone: {e}")))?;
    let mut reader = LineReader::new(stream);

    let mut oversized = vec![b'x'; MAX_LINE + 64];
    oversized.push(b'\n');
    writer
        .write_all(&oversized)
        .map_err(|e| ApiError::io(format!("chaos write oversized: {e}")))?;
    writer
        .write_all(b"\xff\xfe not utf8\n")
        .map_err(|e| ApiError::io(format!("chaos write bad utf8: {e}")))?;
    writer
        .write_all(b"ping\n")
        .map_err(|e| ApiError::io(format!("chaos write ping: {e}")))?;
    run.garbage_lines += 2;

    for expectation in ["oversized", "bad-utf8"] {
        match read_reply(&mut reader)? {
            Some(Err(_)) => {} // typed rejection: exactly right
            Some(Ok(text)) => {
                return Err(ApiError::new(
                    ErrorCode::Internal,
                    format!("{expectation} line was accepted: {text:?}"),
                ))
            }
            None => {
                return Err(ApiError::io(format!(
                    "server hung up instead of rejecting the {expectation} line"
                )))
            }
        }
    }
    match read_reply(&mut reader)? {
        Some(Ok(text)) if text == "pong" => Ok(()),
        other => Err(ApiError::new(
            ErrorCode::Internal,
            format!("connection did not survive garbage: ping answered {other:?}"),
        )),
    }
}

/// Flip the balancer on and force-migrate live sessions around the
/// shards. Typed refusals (session mid-run, not yet created, already
/// there) are expected traffic; transport failures are not.
fn chaos_migration_storm(
    addr: &str,
    round: usize,
    shards: usize,
    sessions: &[String],
    run: &mut ChaosRun,
) -> Result<(), ApiError> {
    let mut client = Client::connect(addr)?;
    client
        .roundtrip("balance auto")?
        .map_err(|e| ApiError::new(e.code, format!("balance auto rejected: {}", e.message)))?;
    for (i, session) in sessions.iter().enumerate() {
        let to = (round + i) % shards;
        // The reply may be ok or a typed error — both prove the control
        // plane stayed coherent under the storm; only transport-level
        // failures propagate.
        let _ = client.roundtrip(&format!("migrate {session} {to}"))?;
        run.migrations += 1;
    }
    client
        .roundtrip("balance off")?
        .map_err(|e| ApiError::new(e.code, format!("balance off rejected: {}", e.message)))?;
    Ok(())
}

/// A deliberately slow subscriber: dallies between reads (forcing the
/// server's coalesce/drop-to-keyframe paths), acks late, and asserts
/// strictly increasing sequence numbers. Returns (frames, keyframes).
fn watch_loop(
    addr: &str,
    session: &str,
    dally: Duration,
    stop: &AtomicBool,
) -> Result<(u64, u64), ApiError> {
    let mut watcher = Watcher::connect(addr, session, WATCH_GRID.0, WATCH_GRID.1)?;
    watcher
        .set_read_timeout(Some(Duration::from_millis(200)))
        .map_err(|e| ApiError::io(e.to_string()))?;
    let mut last_seq: Option<u64> = None;
    loop {
        match watcher.next_frame()? {
            Some(frame) => {
                if let Some(prev) = last_seq {
                    if frame.seq < prev {
                        return Err(ApiError::new(
                            ErrorCode::Internal,
                            format!("subscriber seq went backwards: {prev} then {}", frame.seq),
                        ));
                    }
                }
                if last_seq != Some(frame.seq) {
                    last_seq = Some(frame.seq);
                    if frame.seq > 0 {
                        watcher.ack(frame.seq - 1); // always one burst behind: slow
                    }
                    std::thread::sleep(dally);
                }
            }
            None if watcher.hung_up() => {
                return Err(ApiError::io("server hung up mid-stream"));
            }
            None => {
                // idle: once the soak is winding down, detach cleanly
                if stop.load(Ordering::SeqCst) {
                    watcher.unsubscribe()?;
                    return Ok((watcher.frames(), watcher.keyframes()));
                }
            }
        }
    }
}

// ------------------------------------------------------------------
// Restart soak: SIGKILL a real server, reboot, demand every session back.

/// Knobs of one restart soak. Unlike [`SoakConfig`] this drives a real
/// child process (an in-process [`Server`] cannot be SIGKILL'd), so the
/// caller must say which binary to boot — `fvtool soak --restart`
/// passes its own executable, the e2e tests pass
/// `env!("CARGO_BIN_EXE_fvtool")`.
#[derive(Debug, Clone)]
pub struct RestartConfig {
    /// The `fvtool` binary to boot as the server process.
    pub fvtool: PathBuf,
    /// Durable state directory handed to `serve --state-dir`. Created
    /// if missing; removed again after a passing run.
    pub state_dir: PathBuf,
    /// Sessions to create — all of them must survive every kill.
    pub sessions: usize,
    /// SIGKILL + reboot cycles.
    pub kills: usize,
    /// Server shard count.
    pub shards: usize,
    /// Run shards as child worker processes (`serve --shard-procs`).
    pub proc_shards: bool,
}

impl RestartConfig {
    /// CI-smoke shape: 3 sessions, 2 kills, 2 thread shards.
    pub fn new(fvtool: impl Into<PathBuf>, state_dir: impl Into<PathBuf>) -> RestartConfig {
        RestartConfig {
            fvtool: fvtool.into(),
            state_dir: state_dir.into(),
            sessions: 3,
            kills: 2,
            shards: 2,
            proc_shards: false,
        }
    }
}

/// What a restart soak observed. `failures` empty ⇔ all invariants held.
#[derive(Debug, Default)]
pub struct RestartReport {
    pub sessions: usize,
    pub kills: usize,
    /// `"threads"` or `"procs"`.
    pub backend: String,
    /// Sum of the per-boot `recovered=` counters (should be
    /// `sessions * kills`).
    pub recovered_total: u64,
    /// Session probe transcripts compared byte-for-byte across a kill.
    pub probes_compared: usize,
    pub failures: Vec<String>,
}

impl RestartReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Stable `key=value` summary, greppable by CI like
    /// [`SoakReport::render`].
    pub fn render(&self) -> String {
        let mut out = format!(
            "restart-soak sessions={} kills={} backend={} recovered_total={} \
             probes_compared={} verdict={}",
            self.sessions,
            self.kills,
            self.backend,
            self.recovered_total,
            self.probes_compared,
            if self.passed() { "pass" } else { "FAIL" },
        );
        for f in &self.failures {
            out.push_str("\n  invariant violated: ");
            out.push_str(f);
        }
        out
    }
}

/// Read-only probe replayed against every session before the kill and
/// after the reboot; the two transcripts must match byte-for-byte.
const PROBE_LINES: &[&str] = &["session_info", "list_datasets", "render 200 150"];

/// One live `fvtool serve` child with its boot banner parsed. Dropping
/// the guard SIGKILLs the child, so no server outlives a failed run;
/// the stdout pipe is held open for the child's lifetime (the server
/// prints its shutdown line late, and a closed pipe would turn that
/// into an EPIPE panic).
struct ServerProc {
    /// `None` once killed or reaped — Drop then has nothing to do.
    child: Option<std::process::Child>,
    /// Held open for the child's lifetime, never read after boot.
    _stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: String,
    recovered: u64,
}

impl ServerProc {
    fn boot(cfg: &RestartConfig) -> Result<ServerProc, ApiError> {
        let shards = cfg.shards.max(1).to_string();
        let mut cmd = std::process::Command::new(&cfg.fvtool);
        cmd.arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            // Fast gather cadence so checkpoints land within the poll
            // deadline instead of every 500ms.
            .args(["--balance-interval-ms", "50"])
            .arg("--state-dir")
            .arg(&cfg.state_dir)
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit());
        if cfg.proc_shards {
            cmd.args(["--shard-procs", &shards]);
        } else {
            cmd.args(["--shards", &shards]);
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| ApiError::io(format!("spawn {}: {e}", cfg.fvtool.display())))?;
        let mut stdout = std::io::BufReader::new(child.stdout.take().expect("stdout is piped"));
        let banner = |reader: &mut std::io::BufReader<_>| -> Result<String, ApiError> {
            use std::io::BufRead;
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| ApiError::io(format!("read server banner: {e}")))?;
            if n == 0 {
                return Err(ApiError::io("server exited before printing its banner"));
            }
            Ok(line.trim_end().to_string())
        };
        let serving = banner(&mut stdout)?;
        let addr = serving
            .strip_prefix("fvtool: serving on ")
            .and_then(|rest| rest.split_whitespace().next())
            .ok_or_else(|| ApiError::parse(format!("unexpected serve banner {serving:?}")))?
            .to_string();
        let recovered_line = banner(&mut stdout)?;
        let recovered = recovered_line
            .strip_prefix("fvtool: recovered ")
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                ApiError::parse(format!("unexpected recovery banner {recovered_line:?}"))
            })?;
        Ok(ServerProc {
            child: Some(child),
            _stdout: stdout,
            addr,
            recovered,
        })
    }

    /// SIGKILL — the crash under test. No flush, no goodbye.
    fn kill(mut self) -> Result<(), ApiError> {
        let mut child = self.child.take().expect("child not yet reaped");
        let killed = child.kill();
        let reaped = child.wait();
        killed.map_err(|e| ApiError::io(format!("kill server: {e}")))?;
        reaped.map_err(|e| ApiError::io(format!("reap server: {e}")))?;
        Ok(())
    }

    /// Graceful end of the run: ask the server to shut down, then reap.
    fn finish(mut self) -> Result<(), ApiError> {
        Client::connect(&self.addr)?.shutdown_server()?;
        let status = self
            .child
            .take()
            .expect("child not yet reaped")
            .wait()
            .map_err(|e| ApiError::io(format!("reap server: {e}")))?;
        if status.success() {
            Ok(())
        } else {
            Err(ApiError::io(format!(
                "server exited uncleanly after shutdown: {status}"
            )))
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Play a few deterministic mutations into `name`. Distinct per session
/// and per cycle so every reboot proves a *fresh* checkpoint rather
/// than re-reading the first one. `setup` loads the datasets and is
/// only valid once per session (`scenario` refuses duplicates).
fn restart_burst(addr: &str, name: &str, salt: usize, setup: bool) -> Result<usize, ApiError> {
    let mut lines = Vec::new();
    if setup {
        lines.push(format!("scenario 80 {salt}"));
    }
    lines.push("cluster_all".to_string());
    lines.push(format!("scroll {}", salt % 7));
    let mut client = Client::connect(addr)?;
    client.use_session(name)?;
    for line in &lines {
        client
            .roundtrip(line)?
            .map_err(|e| ApiError::new(e.code, format!("{name} rejected {line:?}: {e}")))?;
    }
    Ok(lines.len())
}

/// Replay [`PROBE_LINES`] against `name` and fold the raw wire replies
/// into one transcript blob for byte-comparison.
fn probe_session(addr: &str, name: &str) -> Result<String, ApiError> {
    let mut client = Client::connect(addr)?;
    client.use_session(name)?;
    let mut out = String::new();
    for line in PROBE_LINES {
        out.push_str(line);
        out.push('\n');
        match client.roundtrip(line)? {
            Ok(text) => out.push_str(&text),
            Err(e) => out.push_str(&e.to_string()),
        }
        out.push('\n');
    }
    Ok(out)
}

/// The session roster as a comparison key: raw `list-sessions` reply
/// lines, sorted so shard-gather order cannot flake the diff.
fn roster(addr: &str) -> Result<String, ApiError> {
    let text = Client::connect(addr)?.roundtrip("list-sessions")??;
    let mut lines: Vec<&str> = text.lines().collect();
    lines.sort_unstable();
    Ok(lines.join("\n"))
}

/// Block until every session's checkpoint has caught up with the
/// requests we know we attempted. The attempted-request counter travels
/// inside the image and is what the cadence uses for dirtiness, so
/// "checkpoint content matches the expectation" is race-free: once it
/// matches, no further write can change it (no new traffic is
/// arriving), and the server can be killed at any instant afterwards.
fn wait_for_checkpoints(
    store: &SessionStore,
    expect: &BTreeMap<String, u64>,
) -> Result<(), ApiError> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let mut lagging = None;
        for (name, want) in expect {
            let path = store.checkpoint_path(&SessionId::new(name.clone())?);
            let got = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| parse_session_image(&text).ok())
                .map(|image| image.requests);
            if got != Some(*want) {
                lagging = Some(format!("{name}: checkpoint at {got:?}, want {want}"));
                break;
            }
        }
        match lagging {
            None => return Ok(()),
            Some(what) if Instant::now() >= deadline => {
                return Err(ApiError::io(format!(
                    "checkpoint cadence never caught up: {what}"
                )));
            }
            Some(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Run one restart soak: populate, checkpoint, SIGKILL, reboot, diff —
/// `cfg.kills` times over. Transport/setup failures error out;
/// invariant violations land in the report.
pub fn run_restart_soak(cfg: &RestartConfig) -> Result<RestartReport, ApiError> {
    let mut report = RestartReport {
        sessions: cfg.sessions.max(1),
        kills: cfg.kills.max(1),
        backend: if cfg.proc_shards { "procs" } else { "threads" }.to_string(),
        ..RestartReport::default()
    };
    std::fs::create_dir_all(&cfg.state_dir)
        .map_err(|e| ApiError::io(format!("create {}: {e}", cfg.state_dir.display())))?;
    // The store is only the layout authority here (checkpoint paths);
    // the server process owns all writes.
    let store = SessionStore::open(&cfg.state_dir)?;
    let names: Vec<String> = (0..report.sessions)
        .map(|i| format!("restart-{i}"))
        .collect();
    // Requests attempted per session, mirrored from what we send; the
    // checkpointed image must converge to exactly these counters.
    let mut attempted: BTreeMap<String, u64> = BTreeMap::new();

    let mut server = ServerProc::boot(cfg)?;
    if server.recovered != 0 {
        report.failures.push(format!(
            "fresh state dir, yet the first boot recovered {} session(s)",
            server.recovered
        ));
    }
    for (i, name) in names.iter().enumerate() {
        let sent = restart_burst(&server.addr, name, i, true)?;
        attempted.insert(name.clone(), sent as u64);
    }

    for cycle in 0..report.kills {
        if cycle > 0 {
            // Mutate between kills so the surviving checkpoints are the
            // cadence's work, not leftovers of the first cycle.
            for (i, name) in names.iter().enumerate() {
                let sent = restart_burst(&server.addr, name, cycle * 100 + i, false)?;
                *attempted.get_mut(name).expect("tracked session") += sent as u64;
            }
        }
        let roster_before = roster(&server.addr)?;
        let mut probes_before = Vec::with_capacity(names.len());
        for name in &names {
            probes_before.push(probe_session(&server.addr, name)?);
            *attempted.get_mut(name).expect("tracked session") += PROBE_LINES.len() as u64;
        }
        wait_for_checkpoints(&store, &attempted)?;

        server.kill()?;
        server = ServerProc::boot(cfg)?;
        report.recovered_total += server.recovered;
        if server.recovered != names.len() as u64 {
            report.failures.push(format!(
                "cycle {cycle}: boot banner recovered {} of {} sessions",
                server.recovered,
                names.len()
            ));
        }
        let stats = Client::connect(&server.addr)?.stats()?;
        if stats.recovered != server.recovered {
            report.failures.push(format!(
                "cycle {cycle}: stats says recovered={} but the boot banner said {}",
                stats.recovered, server.recovered
            ));
        }
        let roster_after = roster(&server.addr)?;
        if roster_after != roster_before {
            report.failures.push(format!(
                "cycle {cycle}: session roster changed across the kill:\n\
                 before: {roster_before:?}\nafter:  {roster_after:?}"
            ));
        }
        for (name, before) in names.iter().zip(&probes_before) {
            let after = probe_session(&server.addr, name)?;
            *attempted.get_mut(name).expect("tracked session") += PROBE_LINES.len() as u64;
            if &after == before {
                report.probes_compared += 1;
            } else {
                report.failures.push(format!(
                    "cycle {cycle}: session {name} probe transcript changed across the \
                     kill:\nbefore:\n{before}after:\n{after}"
                ));
            }
        }
    }

    server.finish()?;
    if report.passed() {
        let _ = std::fs::remove_dir_all(&cfg.state_dir);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end soak: 2 clients, 1 injector, no watcher.
    /// The full-size run lives in `tests/` and CI; this guards the
    /// harness itself (report plumbing, teardown ordering) cheaply.
    #[test]
    fn tiny_soak_passes_all_invariants() {
        let report = run_soak(&SoakConfig {
            clients: 2,
            bursts: 2,
            n_genes: 60,
            chaos_injectors: 1,
            chaos_rounds: 3,
            slow_watchers: 0,
            ..SoakConfig::default()
        })
        .expect("soak harness ran");
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.replays_verified, 2, "{}", report.render());
        assert!(report.lines_sent > 0);
    }

    #[test]
    fn report_renders_failures_visibly() {
        let mut r = SoakReport::default();
        assert!(r.passed());
        r.failures.push("demo".into());
        assert!(!r.passed());
        assert!(r.render().contains("verdict=FAIL"));
        assert!(r.render().contains("invariant violated: demo"));
    }

    /// The restart harness itself runs in `tests/restart_e2e.rs` (it
    /// needs the built `fvtool` binary); this guards its report.
    #[test]
    fn restart_report_renders_failures_visibly() {
        let mut r = RestartReport {
            backend: "threads".into(),
            ..RestartReport::default()
        };
        assert!(r.passed());
        assert!(r.render().contains("verdict=pass"));
        r.failures.push("lost a session".into());
        assert!(!r.passed());
        assert!(r.render().contains("verdict=FAIL"));
        assert!(r.render().contains("invariant violated: lost a session"));
    }
}
