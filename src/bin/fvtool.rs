//! `fvtool` — command-line front end to the ForestView reproduction.
//!
//! Drives the library the way a user without a display would: load PCL/CDT
//! files, cluster them, render session frames to PPM, run SPELL queries and
//! GOLEM enrichment against files on disk.
//!
//! ```text
//! fvtool render  <out.ppm> <w> <h> <file.pcl>...     render a session frame
//! fvtool cluster <in.pcl> <out_prefix>               write .cdt/.gtr/.atr
//! fvtool impute  <in.pcl> <out.pcl> [k]              KNN-impute missing cells
//! fvtool search  <query> <file.pcl>...               cross-dataset gene search
//! fvtool spell   <gene,gene,...> <file.pcl>...       SPELL query over files
//! fvtool demo    <out_dir>                           write a synthetic demo workspace
//! ```

use forestview::Session;
use fv_cluster::{Linkage, Metric};
use fv_formats::pcl::{parse_pcl, write_pcl};
use fv_formats::{detect_format, FileFormat};
use fv_render::image::write_ppm;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fvtool render  <out.ppm> <w> <h> <file.pcl>...\n  \
         fvtool cluster <in.pcl> <out_prefix>\n  \
         fvtool impute  <in.pcl> <out.pcl> [k]\n  \
         fvtool search  <query> <file.pcl>...\n  \
         fvtool spell   <gene,gene,...> <file.pcl>...\n  \
         fvtool demo    <out_dir>"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<fv_expr::Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    match detect_format(&text) {
        FileFormat::Pcl => parse_pcl(&name, &text).map_err(|e| format!("{path}: {e}")),
        FileFormat::Cdt => fv_formats::cdt::parse_cdt(&name, &text)
            .map(|c| c.dataset)
            .map_err(|e| format!("{path}: {e}")),
        other => Err(format!("{path}: unsupported format {other:?}")),
    }
}

fn cmd_render(args: &[String]) -> Result<(), String> {
    let [out, w, h, files @ ..] = args else {
        return Err("render needs <out.ppm> <w> <h> <files...>".into());
    };
    let (w, h): (usize, usize) = (
        w.parse().map_err(|_| "bad width")?,
        h.parse().map_err(|_| "bad height")?,
    );
    if files.is_empty() {
        return Err("no input files".into());
    }
    let mut session = Session::new();
    for f in files {
        session.load_dataset(load(f)?).map_err(|e| e.to_string())?;
    }
    session.cluster_all();
    let fb = forestview::renderer::render_desktop(&session, w, h);
    write_ppm(&fb, out).map_err(|e| e.to_string())?;
    println!("wrote {out} ({w}x{h}, {} panes)", session.n_datasets());
    print!("{}", forestview::export::session_summary(&session));
    Ok(())
}

fn cmd_cluster(args: &[String]) -> Result<(), String> {
    let [input, prefix] = args else {
        return Err("cluster needs <in.pcl> <out_prefix>".into());
    };
    let ds = load(input)?;
    let mut session = Session::new();
    session.load_dataset(ds).map_err(|e| e.to_string())?;
    session.cluster_dataset(0, Metric::Pearson, Linkage::Average);
    session.cluster_arrays(0, Metric::Pearson, Linkage::Average);
    let (cdt, gtr, atr) = session.export_clustered_cdt(0);
    std::fs::write(format!("{prefix}.cdt"), cdt).map_err(|e| e.to_string())?;
    if let Some(g) = gtr {
        std::fs::write(format!("{prefix}.gtr"), g).map_err(|e| e.to_string())?;
    }
    if let Some(a) = atr {
        std::fs::write(format!("{prefix}.atr"), a).map_err(|e| e.to_string())?;
    }
    println!("wrote {prefix}.cdt / .gtr / .atr");
    Ok(())
}

fn cmd_impute(args: &[String]) -> Result<(), String> {
    let (input, output, k) = match args {
        [i, o] => (i, o, 10usize),
        [i, o, k] => (i, o, k.parse().map_err(|_| "bad k")?),
        _ => return Err("impute needs <in.pcl> <out.pcl> [k]".into()),
    };
    let mut ds = load(input)?;
    let stats = fv_cluster::impute::knn_impute(&mut ds.matrix, k, Metric::Euclidean);
    std::fs::write(output, write_pcl(&ds)).map_err(|e| e.to_string())?;
    println!(
        "filled {}/{} missing cells with k={k}; wrote {output}",
        stats.filled, stats.missing_before
    );
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let [query, files @ ..] = args else {
        return Err("search needs <query> <files...>".into());
    };
    if files.is_empty() {
        return Err("no input files".into());
    }
    let mut session = Session::new();
    for f in files {
        session.load_dataset(load(f)?).map_err(|e| e.to_string())?;
    }
    let n = session.search_and_select(query);
    println!("{n} gene(s) match {query:?} across {} dataset(s):", session.n_datasets());
    print!("{}", session.export_gene_list());
    print!("{}", forestview::export::selection_coverage_tsv(&session));
    Ok(())
}

fn cmd_spell(args: &[String]) -> Result<(), String> {
    let [genes, files @ ..] = args else {
        return Err("spell needs <gene,gene,...> <files...>".into());
    };
    if files.is_empty() {
        return Err("no input files".into());
    }
    let mut engine = fv_spell::SpellEngine::new(fv_spell::SpellConfig::default());
    for f in files {
        engine.add_dataset(&load(f)?);
    }
    engine.finalize();
    let query: Vec<&str> = genes.split(',').map(|s| s.trim()).collect();
    let result = engine.query(&query);
    if !result.query_missing.is_empty() {
        eprintln!("warning: not found: {:?}", result.query_missing);
    }
    println!("datasets by relevance:");
    for d in &result.datasets {
        println!("  {:<28} weight {:.3}", d.name, d.weight);
    }
    println!("top genes:");
    for g in result.top_new_genes(20) {
        println!("  {:<12} score {:.3} ({} datasets)", g.gene, g.score, g.n_datasets);
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let [dir] = args else {
        return Err("demo needs <out_dir>".into());
    };
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let scenario = fv_synth::scenario::Scenario::three_datasets(800, 2007);
    for ds in &scenario.datasets {
        let path = format!("{dir}/{}.pcl", ds.name);
        std::fs::write(&path, write_pcl(ds)).map_err(|e| e.to_string())?;
        println!("wrote {path} ({} genes x {} conditions)", ds.n_genes(), ds.n_conditions());
    }
    println!("try: fvtool render {dir}/session.ppm 1600 1200 {dir}/*.pcl");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "render" => cmd_render(rest),
        "cluster" => cmd_cluster(rest),
        "impute" => cmd_impute(rest),
        "search" => cmd_search(rest),
        "spell" => cmd_spell(rest),
        "demo" => cmd_demo(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fvtool: {e}");
            ExitCode::FAILURE
        }
    }
}
