//! `fvtool` — command-line front end to the ForestView reproduction.
//!
//! A thin client of `fv-api`: every subcommand builds typed
//! [`fv_api::Request`]s and executes them through a [`Backend`] — an
//! in-process [`fv_api::Engine`] by default, or a live `fv-net` server
//! when `--remote <addr>` is given. Local and remote runs produce
//! byte-identical stdout and exit codes: the remote backend decodes wire
//! responses back into typed values, so the same formatting code runs
//! either way. No session logic lives here — the CLI is one of several
//! interchangeable expressions of the same protocol.
//!
//! ```text
//! fvtool render  <out.ppm> <w> <h> <file.pcl>...     render a session frame
//! fvtool cluster <in.pcl> <out_prefix>               write .cdt/.gtr/.atr
//! fvtool impute  <in.pcl> <out.pcl> [k]              KNN-impute missing cells
//! fvtool search  <query> <file.pcl>...               cross-dataset gene search
//! fvtool spell   <gene,gene,...> <file.pcl>...       SPELL query over files
//! fvtool demo    <out_dir>                           write a synthetic demo workspace
//! fvtool script  <file.fvs>                          replay a request script
//! fvtool serve   [--addr a:p] [--shards n | --shard-procs n] [--queue-limit n] [--state-dir d] [--balance auto|off] [balance knobs]   run the TCP server
//! fvtool ping                                        probe a server (needs --remote)
//! fvtool watch   <session> <TX>x<TY> [--frames n] [--idle-ms n] [--dally-ms n] [--verify-script f]   subscribe to the tile stream (needs --remote)
//! fvtool stats                                       server metrics + cache gauges (needs --remote)
//! fvtool sessions [--recovered]                      list live sessions / boot-recovery count (needs --remote)
//! fvtool migrate <session> <shard>                   move a session across shards (needs --remote)
//! fvtool balance [auto|off]                          rebalancer status / flip its mode (needs --remote)
//! fvtool shutdown                                    stop a server (needs --remote)
//! fvtool workload <kind> [--clients n] [--bursts n] [--genes n] [--seed n]   print generated workload scripts
//! fvtool trace record <out.trace> --listen <a:p> --upstream <a:p>   tap one connection, write its wire trace
//! fvtool trace replay <file.trace> [--remote a:p]    replay a trace, byte-compare replies
//! fvtool soak [--clients n] [--chaos n] [--watchers n] [...]        soak/chaos run against an in-process server
//! fvtool soak --restart <kills> [--clients n] [--proc-shards] [--state-dir d]   SIGKILL+reboot durability soak against real server processes
//! ```
//!
//! `--remote <addr>` may appear anywhere in the argument list. File paths
//! inside requests (loads, exports) resolve on the serving process's
//! filesystem.
//!
//! Exit codes: 0 success, 2 usage/parse errors, otherwise the stable
//! per-class codes of [`fv_api::ErrorCode::exit_code`].

use forestview::command::Command;
use fv_api::{ApiError, Engine, EngineHub, Mutation, Query, Request, Response, SelectionExport};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fvtool render  <out.ppm> <w> <h> <file.pcl>...\n  \
         fvtool cluster <in.pcl> <out_prefix>\n  \
         fvtool impute  <in.pcl> <out.pcl> [k]\n  \
         fvtool search  <query> <file.pcl>...\n  \
         fvtool spell   <gene,gene,...> <file.pcl>...\n  \
         fvtool demo    <out_dir>\n  \
         fvtool script  <file.fvs>\n  \
         fvtool serve   [--addr <host:port>] [--shards <n> | --shard-procs <n>] [--queue-limit <n>]\n           \
         [--state-dir <dir>] [--balance auto|off] [--balance-interval-ms <n>] [--balance-budget <n>]\n           \
         [--balance-trigger <ratio>] [--balance-settle <ratio>]\n           \
         [--balance-cooldown <ticks>] [--balance-min-load <n>]\n  \
         fvtool ping    --remote <host:port>\n  \
         fvtool watch   <session> <TX>x<TY> [--frames <n>] [--idle-ms <n>] [--dally-ms <n>]\n           \
         [--verify-script <file.fvs>] --remote <host:port>\n  \
         fvtool stats   --remote <host:port>\n  \
         fvtool sessions [--recovered] --remote <host:port>\n  \
         fvtool migrate <session> <shard> --remote <host:port>\n  \
         fvtool balance [auto|off] --remote <host:port>\n  \
         fvtool shutdown --remote <host:port>\n  \
         fvtool workload <kind> [--clients <n>] [--bursts <n>] [--genes <n>] [--seed <n>]\n  \
         fvtool trace record <out.trace> --listen <host:port> --upstream <host:port>\n  \
         fvtool trace replay <file.trace> [--remote <host:port>]\n  \
         fvtool soak    [--kind <k>] [--clients <n>] [--bursts <n>] [--genes <n>] [--seed <n>]\n           \
         [--shards <n>] [--queue-limit <n>] [--chaos <n>] [--chaos-rounds <n>]\n           \
         [--watchers <n>] [--dally-ms <n>] [--no-replay]\n           \
         [--restart <kills>] [--proc-shards] [--state-dir <dir>]\n  \
         fvtool lint    [--json]\n\
         options:\n  --remote <host:port>   run the subcommand against a live fvtool server"
    );
    ExitCode::from(2)
}

/// Where requests execute: an in-process engine or a remote server. Both
/// speak the same protocol, so every subcommand is backend-agnostic.
enum Backend {
    Local(Box<Engine>),
    Remote(fv_net::Client),
}

impl Backend {
    fn execute(&mut self, request: &Request) -> Result<Response, ApiError> {
        match self {
            Backend::Local(engine) => engine.execute(request),
            Backend::Remote(client) => client.execute(request),
        }
    }

    /// A path as the executing process should see it. Remote servers
    /// resolve relative paths against *their* working directory, so
    /// remote requests carry absolute paths — stdout still prints the
    /// user's original strings.
    fn path(&self, p: &str) -> String {
        match self {
            Backend::Local(_) => p.to_string(),
            Backend::Remote(_) => {
                let path = std::path::Path::new(p);
                if path.is_absolute() {
                    p.to_string()
                } else {
                    std::env::current_dir()
                        .map(|d| d.join(path).to_string_lossy().into_owned())
                        .unwrap_or_else(|_| p.to_string())
                }
            }
        }
    }
}

/// Load every file into the backend's session.
fn load_files(backend: &mut Backend, files: &[String]) -> Result<(), ApiError> {
    for f in files {
        let path = backend.path(f);
        backend.execute(&Request::Mutate(Mutation::LoadDataset { path }))?;
    }
    Ok(())
}

/// Run a query whose response must be `Text`.
fn text_of(backend: &mut Backend, what: SelectionExport) -> Result<String, ApiError> {
    match backend.execute(&Request::Query(Query::ExportSelection { what }))? {
        Response::Text { text } => Ok(text),
        other => unexpected("text export", &other),
    }
}

fn unexpected<T>(wanted: &str, got: &Response) -> Result<T, ApiError> {
    Err(ApiError::new(
        fv_api::ErrorCode::Internal,
        format!("engine returned a non-{wanted} response: {got:?}"),
    ))
}

fn cmd_render(backend: &mut Backend, args: &[String]) -> Result<(), ApiError> {
    let [out, w, h, files @ ..] = args else {
        return Err(ApiError::invalid(
            "render needs <out.ppm> <w> <h> <files...>",
        ));
    };
    let (w, h): (usize, usize) = (
        w.parse().map_err(|_| ApiError::parse("bad width"))?,
        h.parse().map_err(|_| ApiError::parse("bad height"))?,
    );
    if files.is_empty() {
        return Err(ApiError::invalid("no input files"));
    }
    load_files(backend, files)?;
    backend.execute(&Request::Mutate(Mutation::Command(Command::ClusterAll)))?;
    let frame = backend.execute(&Request::Query(Query::Render {
        width: w,
        height: h,
        path: Some(backend.path(out)),
    }))?;
    let Response::Frame { panes, .. } = frame else {
        return unexpected("frame", &frame);
    };
    println!("wrote {out} ({w}x{h}, {panes} panes)");
    match backend.execute(&Request::Query(Query::SessionInfo))? {
        Response::SessionInfo(info) => print!("{}", info.summary),
        other => return unexpected("session-info", &other),
    }
    Ok(())
}

fn cmd_cluster(backend: &mut Backend, args: &[String]) -> Result<(), ApiError> {
    let [input, prefix] = args else {
        return Err(ApiError::invalid("cluster needs <in.pcl> <out_prefix>"));
    };
    load_files(backend, std::slice::from_ref(input))?;
    backend.execute(&Request::Mutate(Mutation::Command(Command::ClusterAll)))?;
    backend.execute(&Request::Mutate(Mutation::ClusterArrays { dataset: 0 }))?;
    backend.execute(&Request::Query(Query::ExportCdt {
        dataset: 0,
        prefix: Some(backend.path(prefix)),
    }))?;
    println!("wrote {prefix}.cdt / .gtr / .atr");
    Ok(())
}

fn cmd_impute(backend: &mut Backend, args: &[String]) -> Result<(), ApiError> {
    let (input, output, k) = match args {
        [i, o] => (i, o, 10usize),
        [i, o, k] => (i, o, k.parse().map_err(|_| ApiError::parse("bad k"))?),
        _ => return Err(ApiError::invalid("impute needs <in.pcl> <out.pcl> [k]")),
    };
    load_files(backend, std::slice::from_ref(input))?;
    let imputed = backend.execute(&Request::Mutate(Mutation::Impute { dataset: 0, k }))?;
    let Response::Imputed {
        filled,
        missing_before,
    } = imputed
    else {
        return unexpected("imputation", &imputed);
    };
    backend.execute(&Request::Query(Query::ExportPcl {
        dataset: 0,
        path: backend.path(output),
    }))?;
    println!("filled {filled}/{missing_before} missing cells with k={k}; wrote {output}");
    Ok(())
}

fn cmd_search(backend: &mut Backend, args: &[String]) -> Result<(), ApiError> {
    let [query, files @ ..] = args else {
        return Err(ApiError::invalid("search needs <query> <files...>"));
    };
    if files.is_empty() {
        return Err(ApiError::invalid("no input files"));
    }
    load_files(backend, files)?;
    let applied = backend.execute(&Request::Mutate(Mutation::Command(Command::Search(
        query.clone(),
    ))))?;
    let Response::Applied { selection_len, .. } = applied else {
        return unexpected("applied", &applied);
    };
    let n = selection_len.unwrap_or(0);
    println!(
        "{n} gene(s) match {query:?} across {} dataset(s):",
        files.len()
    );
    print!("{}", text_of(backend, SelectionExport::GeneList)?);
    print!("{}", text_of(backend, SelectionExport::Coverage)?);
    Ok(())
}

fn cmd_spell(backend: &mut Backend, args: &[String]) -> Result<(), ApiError> {
    let [genes, files @ ..] = args else {
        return Err(ApiError::invalid("spell needs <gene,gene,...> <files...>"));
    };
    if files.is_empty() {
        return Err(ApiError::invalid("no input files"));
    }
    load_files(backend, files)?;
    let query: Vec<String> = genes.split(',').map(|s| s.trim().to_string()).collect();
    let ranking = backend.execute(&Request::Query(Query::Spell {
        genes: query,
        top_n: 20,
    }))?;
    let Response::SpellRanking {
        datasets,
        genes,
        query_missing,
    } = ranking
    else {
        return unexpected("spell", &ranking);
    };
    if !query_missing.is_empty() {
        eprintln!("warning: not found: {query_missing:?}");
    }
    println!("datasets by relevance:");
    for d in &datasets {
        println!("  {:<28} weight {:.3}", d.name, d.weight);
    }
    println!("top genes:");
    for g in &genes {
        println!(
            "  {:<12} score {:.3} ({} datasets)",
            g.gene, g.score, g.n_datasets
        );
    }
    Ok(())
}

fn cmd_demo(backend: &mut Backend, args: &[String]) -> Result<(), ApiError> {
    let [dir] = args else {
        return Err(ApiError::invalid("demo needs <out_dir>"));
    };
    std::fs::create_dir_all(dir).map_err(|e| ApiError::io(format!("{dir}: {e}")))?;
    let loaded = backend.execute(&Request::Mutate(Mutation::LoadScenario {
        n_genes: 800,
        seed: 2007,
    }))?;
    let Response::ScenarioLoaded { names, .. } = loaded else {
        return unexpected("scenario", &loaded);
    };
    for (d, name) in names.iter().enumerate() {
        let path = format!("{dir}/{name}.pcl");
        let exported = backend.execute(&Request::Query(Query::ExportPcl {
            dataset: d,
            path: backend.path(&path),
        }))?;
        let Response::PclExported {
            genes, conditions, ..
        } = exported
        else {
            return unexpected("pcl export", &exported);
        };
        println!("wrote {path} ({genes} genes x {conditions} conditions)");
    }
    println!("try: fvtool render {dir}/session.ppm 1600 1200 {dir}/*.pcl");
    Ok(())
}

fn cmd_script(remote: Option<&str>, args: &[String]) -> Result<(), ApiError> {
    let [path] = args else {
        return Err(ApiError::invalid("script needs <file.fvs>"));
    };
    let text = std::fs::read_to_string(path).map_err(|e| ApiError::io(format!("{path}: {e}")))?;
    match remote {
        None => {
            let mut hub = EngineHub::new();
            // Stream entries as they execute so the transcript of the
            // completed prefix survives a mid-script error (mutations are
            // not rolled back).
            hub.run_script_streaming(&text, |entry| print!("{}", entry.render()))?;
        }
        Some(addr) => {
            // Same streaming contract, same transcript bytes — over TCP.
            fv_net::run_script_remote(addr, &text, |block| print!("{block}"))?;
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), ApiError> {
    let mut addr = "127.0.0.1:7007".to_string();
    let mut config = fv_net::ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--addr needs <host:port>"))?
                    .clone();
            }
            "--shards" => {
                config.shards = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--shards needs <n>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad shard count"))?;
            }
            "--shard-procs" => {
                config.shards = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--shard-procs needs <n>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad shard count"))?;
                // Each shard becomes a child worker process: re-exec this
                // very binary as `fvtool shard-worker` so there is no
                // second artifact to deploy.
                let me = std::env::current_exe()
                    .map_err(|e| ApiError::io(format!("cannot locate own executable: {e}")))?;
                config.backend = fv_net::ShardBackendConfig::Procs {
                    worker_cmd: vec![me.to_string_lossy().into_owned(), "shard-worker".into()],
                };
            }
            "--queue-limit" => {
                config.queue_limit = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--queue-limit needs <n>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad queue limit"))?;
                if config.queue_limit == 0 {
                    return Err(ApiError::invalid("--queue-limit must be at least 1"));
                }
            }
            "--state-dir" => {
                config.state_dir = Some(
                    it.next()
                        .ok_or_else(|| ApiError::invalid("--state-dir needs <dir>"))?
                        .into(),
                );
            }
            "--balance" => {
                let mode = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--balance needs auto|off"))?;
                config.balance = fv_api::BalanceMode::from_str_token(mode)?;
            }
            "--balance-interval-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--balance-interval-ms needs <n>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad balance interval"))?;
                config.balance_interval = std::time::Duration::from_millis(ms.max(1));
            }
            "--balance-budget" => {
                config.balance_cfg.budget = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--balance-budget needs <n>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad balance budget"))?;
            }
            "--balance-trigger" => {
                config.balance_cfg.trigger_ratio = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--balance-trigger needs <ratio>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad balance trigger ratio"))?;
            }
            "--balance-settle" => {
                config.balance_cfg.settle_ratio = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--balance-settle needs <ratio>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad balance settle ratio"))?;
            }
            "--balance-cooldown" => {
                config.balance_cfg.cooldown_ticks = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--balance-cooldown needs <ticks>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad balance cooldown"))?;
            }
            "--balance-min-load" => {
                config.balance_cfg.min_total_load = it
                    .next()
                    .ok_or_else(|| ApiError::invalid("--balance-min-load needs <n>"))?
                    .parse()
                    .map_err(|_| ApiError::parse("bad balance min load"))?;
            }
            other => {
                return Err(ApiError::invalid(format!("unknown serve option {other:?}")));
            }
        }
    }
    let durable = config.state_dir.is_some();
    let server = fv_net::Server::bind(&addr, config)
        .map_err(|e| ApiError::io(format!("bind {addr}: {e}")))?;
    println!(
        "fvtool: serving on {} with {} shard(s)",
        server.local_addr(),
        server.n_shards()
    );
    if durable {
        println!(
            "fvtool: recovered {} session(s) from the state directory",
            server.recovered()
        );
    }
    // Make the address visible immediately even when stdout is a pipe
    // (CI waits for it / parses the ephemeral port).
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    println!("fvtool: server stopped");
    Ok(())
}

/// Subscribe to a session's tile stream and reassemble the wall
/// locally, printing one summary line per frame burst (all tiles that
/// share a seq). Stops after `--frames` distinct seqs or once the
/// stream goes idle for `--idle-ms`; `--dally-ms` sleeps between reads
/// to simulate a slow viewer (exercising the server's drop-to-keyframe
/// path); `--verify-script` replays a script locally and byte-compares
/// the reassembled wall against the local render.
fn cmd_watch(remote: Option<&str>, args: &[String]) -> Result<(), ApiError> {
    let addr = remote.ok_or_else(|| ApiError::invalid("watch needs --remote <addr>"))?;
    let [session, grid, opts @ ..] = args else {
        return Err(ApiError::invalid(
            "watch needs <session> <TX>x<TY> [--frames <n>] [--idle-ms <n>] \
             [--dally-ms <n>] [--verify-script <file.fvs>]",
        ));
    };
    let (tiles_x, tiles_y) = grid
        .split_once('x')
        .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
        .filter(|&(a, b)| a > 0 && b > 0)
        .ok_or_else(|| ApiError::parse(format!("tile grid is <TX>x<TY>, got {grid:?}")))?;
    let mut max_seqs: Option<u64> = None;
    let mut idle_ms: u64 = 2000;
    let mut dally_ms: u64 = 0;
    let mut verify: Option<String> = None;
    let mut it = opts.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| ApiError::invalid(format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--frames" => {
                max_seqs = Some(
                    value("--frames")?
                        .parse()
                        .map_err(|_| ApiError::parse("bad --frames count"))?,
                );
            }
            "--idle-ms" => {
                idle_ms = value("--idle-ms")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --idle-ms"))?;
            }
            "--dally-ms" => {
                dally_ms = value("--dally-ms")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --dally-ms"))?;
            }
            "--verify-script" => verify = Some(value("--verify-script")?.clone()),
            other => {
                return Err(ApiError::invalid(format!("unknown watch option {other:?}")));
            }
        }
    }

    let mut watcher = fv_net::Watcher::connect(addr, session, tiles_x, tiles_y)?;
    watcher
        .set_read_timeout(Some(std::time::Duration::from_millis(idle_ms.max(1))))
        .map_err(|e| ApiError::io(e.to_string()))?;
    let (mut seqs, mut total_bytes) = (0u64, 0u64);
    let mut completed = false;
    // (seq, kind, tiles, bytes) of the burst being accumulated.
    let mut burst: Option<(u64, &'static str, usize, u64)> = None;
    let flush_burst = |burst: &mut Option<(u64, &'static str, usize, u64)>| {
        if let Some((seq, kind, tiles, bytes)) = burst.take() {
            println!("frame seq={seq} kind={kind} tiles={tiles} bytes={bytes}");
        }
    };
    while let Some(frame) = watcher.next_frame()? {
        let frame_bytes = frame.encoded_len() as u64;
        total_bytes += frame_bytes;
        match &mut burst {
            Some((seq, _, tiles, bytes)) if *seq == frame.seq => {
                *tiles += 1;
                *bytes += frame_bytes;
            }
            _ => {
                flush_burst(&mut burst);
                // Ack the completed burst so the server can tell a live
                // (if slow) viewer from a comatose one.
                if frame.seq > 0 {
                    watcher.ack(frame.seq - 1);
                }
                seqs += 1;
                burst = Some((frame.seq, frame.kind.as_str(), 1, frame_bytes));
            }
        }
        if max_seqs.is_some_and(|m| seqs >= m) {
            // The burst for the final seq may still be mid-flight; keep
            // reading frames of that seq only (next_frame applies them),
            // stopping at the first frame of a newer seq or on idle.
            let last = frame.seq;
            while let Some(extra) = watcher.next_frame()? {
                if extra.seq != last {
                    break;
                }
                let b = extra.encoded_len() as u64;
                total_bytes += b;
                if let Some((_, _, tiles, bytes)) = &mut burst {
                    *tiles += 1;
                    *bytes += b;
                }
            }
            completed = true;
            break;
        }
        if dally_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(dally_ms));
        }
    }
    flush_burst(&mut burst);
    // The loop exits three ways: the frame budget was met (`completed`),
    // the stream idled out past --idle-ms (benign), or the server hung
    // up mid-stream — only the last is a failure, and it must exit with
    // the typed E_IO code, not masquerade as a quiet stream.
    if watcher.hung_up() && !completed {
        return Err(ApiError::io(format!(
            "server closed the connection mid-stream (after {seqs} frame burst(s))"
        )));
    }
    if let Some(last) = watcher.last_seq() {
        watcher.ack(last);
    }
    let (wall_w, wall_h) = (watcher.grid().wall_width(), watcher.grid().wall_height());
    println!(
        "watched session={session} seqs={seqs} frames={} keyframes={} bytes={total_bytes} wall={wall_w}x{wall_h}",
        watcher.frames(),
        watcher.keyframes(),
    );

    if let Some(path) = verify {
        let text =
            std::fs::read_to_string(&path).map_err(|e| ApiError::io(format!("{path}: {e}")))?;
        // Replay the script on a wall-sized hub; the watched session must
        // end up byte-identical to the reassembled stream.
        let mut hub = EngineHub::with_scene(wall_w, wall_h);
        hub.run_script(&text)?;
        let sid = fv_api::SessionId::new(session.clone())?;
        let engine = hub.get(&sid).ok_or_else(|| {
            ApiError::invalid(format!("verify script does not create session {session:?}"))
        })?;
        let expected = forestview::renderer::render_desktop(engine.session(), wall_w, wall_h);
        if expected.bytes() == watcher.framebuffer().bytes() {
            println!(
                "verify ok: wall matches local render ({wall_w}x{wall_h}, {} bytes)",
                expected.bytes().len()
            );
        } else {
            return Err(ApiError::new(
                fv_api::ErrorCode::Internal,
                format!("verify FAILED: reassembled wall differs from local render of {path}"),
            ));
        }
    }
    Ok(())
}

/// Print the generated per-client scripts of one workload spec — what a
/// soak run's clients would send, as replayable `fvtool script` text.
fn cmd_workload(args: &[String]) -> Result<(), ApiError> {
    let [kind, opts @ ..] = args else {
        let names: Vec<&str> = fv_synth::workload::WORKLOAD_KINDS
            .iter()
            .map(|k| k.name())
            .collect();
        return Err(ApiError::invalid(format!(
            "workload needs <kind> (one of {})",
            names.join(", ")
        )));
    };
    let kind = fv_synth::workload::WorkloadKind::from_name(kind).ok_or_else(|| {
        let names: Vec<&str> = fv_synth::workload::WORKLOAD_KINDS
            .iter()
            .map(|k| k.name())
            .collect();
        ApiError::invalid(format!(
            "unknown workload kind {kind:?} (one of {})",
            names.join(", ")
        ))
    })?;
    let mut spec = fv_synth::workload::WorkloadSpec::small(kind, 2, 1);
    let mut it = opts.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| ApiError::invalid(format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--clients" => {
                spec.clients = value("--clients")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --clients"))?
            }
            "--bursts" => {
                spec.bursts = value("--bursts")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --bursts"))?
            }
            "--genes" => {
                spec.n_genes = value("--genes")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --genes"))?
            }
            "--seed" => {
                spec.seed = value("--seed")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --seed"))?
            }
            other => {
                return Err(ApiError::invalid(format!(
                    "unknown workload option {other:?}"
                )));
            }
        }
    }
    for script in fv_synth::workload::generate(&spec) {
        println!(
            "# client session={} kind={} bursts={}",
            script.session,
            script.kind.name(),
            script.bursts.len()
        );
        print!("{}", script.script_text());
    }
    Ok(())
}

/// `trace record` / `trace replay` dispatcher.
fn cmd_trace(remote: Option<&str>, args: &[String]) -> Result<(), ApiError> {
    match args {
        [sub, rest @ ..] if sub == "record" => cmd_trace_record(remote, rest),
        [sub, rest @ ..] if sub == "replay" => cmd_trace_replay(remote, rest),
        _ => Err(ApiError::invalid(
            "trace needs a subcommand: record <out.trace> --listen <addr> --upstream <addr> \
             | replay <file.trace> [--remote <addr>]",
        )),
    }
}

/// Interpose a recording tap between one client connection and a live
/// server; when both sides hang up, write the captured exchange as a
/// versioned wire trace.
fn cmd_trace_record(remote: Option<&str>, args: &[String]) -> Result<(), ApiError> {
    if remote.is_some() {
        return Err(ApiError::invalid(
            "trace record takes --upstream, not --remote",
        ));
    }
    let [out, opts @ ..] = args else {
        return Err(ApiError::invalid(
            "trace record needs <out.trace> --listen <host:port> --upstream <host:port>",
        ));
    };
    let (mut listen, mut upstream) = (None, None);
    let mut it = opts.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| ApiError::invalid(format!("{what} needs <host:port>")))
        };
        match arg.as_str() {
            "--listen" => listen = Some(value("--listen")?.clone()),
            "--upstream" => upstream = Some(value("--upstream")?.clone()),
            other => {
                return Err(ApiError::invalid(format!(
                    "unknown trace record option {other:?}"
                )));
            }
        }
    }
    let listen = listen.ok_or_else(|| ApiError::invalid("trace record needs --listen"))?;
    let upstream = upstream.ok_or_else(|| ApiError::invalid("trace record needs --upstream"))?;
    let listener = std::net::TcpListener::bind(&listen)
        .map_err(|e| ApiError::io(format!("bind {listen}: {e}")))?;
    let bound = listener
        .local_addr()
        .map_err(|e| ApiError::io(e.to_string()))?;
    println!("fvtool: tapping on {bound} -> {upstream}");
    // CI parses the ephemeral port from that line; make it visible even
    // through a pipe before we block in accept().
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let events = fv_net::record_session(listener, &upstream)?;
    let (sends, recvs) = (
        events.iter().filter(|e| e.is_send()).count(),
        events.iter().filter(|e| !e.is_send()).count(),
    );
    std::fs::write(out, fv_api::format_trace(&events))
        .map_err(|e| ApiError::io(format!("{out}: {e}")))?;
    println!("wrote {out} ({sends} sends, {recvs} replies)");
    Ok(())
}

/// Replay a recorded trace — against a live server (`--remote`,
/// preserving the recorded pipelining) or a fresh local hub — and
/// byte-compare the replies against the recording. The received
/// transcript goes to stdout so two replays can be diffed directly.
fn cmd_trace_replay(remote: Option<&str>, args: &[String]) -> Result<(), ApiError> {
    let [path] = args else {
        return Err(ApiError::invalid(
            "trace replay needs <file.trace> [--remote <host:port>]",
        ));
    };
    let text = std::fs::read_to_string(path).map_err(|e| ApiError::io(format!("{path}: {e}")))?;
    let events = fv_api::parse_trace(&text)?;
    let outcome = match remote {
        Some(addr) => fv_net::replay_remote(addr, &events)?,
        None => fv_net::replay_local(fv_api::engine::DEFAULT_SCENE, &events)?,
    };
    print!("{}", outcome.received);
    if let Some((line, expected, got)) = outcome.first_divergence() {
        eprintln!(
            "fvtool: replay diverged at transcript line {line}:\n  recorded: {expected}\n  replayed: {got}"
        );
        return Err(ApiError::invalid(format!(
            "replay of {path} diverged from the recording at transcript line {line}"
        )));
    }
    eprintln!(
        "replay ok: {} sends, {} replies, transcript matches recording",
        outcome.sends,
        outcome.replies.len()
    );
    Ok(())
}

/// Run the in-process soak/chaos harness and print its report; any
/// violated invariant is a typed failure (exit 70).
fn cmd_soak(remote: Option<&str>, args: &[String]) -> Result<(), ApiError> {
    if remote.is_some() {
        return Err(ApiError::invalid(
            "soak runs its own in-process server; drop --remote",
        ));
    }
    let mut cfg = forestview_repro::soak::SoakConfig::default();
    let mut restart_kills: Option<usize> = None;
    let mut proc_shards = false;
    let mut state_dir: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| ApiError::invalid(format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--kind" => {
                let name = value("--kind")?;
                cfg.kind = fv_synth::workload::WorkloadKind::from_name(name)
                    .ok_or_else(|| ApiError::invalid(format!("unknown workload kind {name:?}")))?;
            }
            "--clients" => {
                cfg.clients = value("--clients")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --clients"))?
            }
            "--bursts" => {
                cfg.bursts = value("--bursts")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --bursts"))?
            }
            "--genes" => {
                cfg.n_genes = value("--genes")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --genes"))?
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --seed"))?
            }
            "--shards" => {
                cfg.shards = value("--shards")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --shards"))?
            }
            "--queue-limit" => {
                cfg.queue_limit = value("--queue-limit")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --queue-limit"))?
            }
            "--chaos" => {
                cfg.chaos_injectors = value("--chaos")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --chaos"))?
            }
            "--chaos-rounds" => {
                cfg.chaos_rounds = value("--chaos-rounds")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --chaos-rounds"))?
            }
            "--watchers" => {
                cfg.slow_watchers = value("--watchers")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --watchers"))?
            }
            "--dally-ms" => {
                cfg.watcher_dally_ms = value("--dally-ms")?
                    .parse()
                    .map_err(|_| ApiError::parse("bad --dally-ms"))?
            }
            "--no-replay" => cfg.verify_replay = false,
            "--restart" => {
                restart_kills = Some(
                    value("--restart")?
                        .parse()
                        .map_err(|_| ApiError::parse("bad --restart"))?,
                )
            }
            "--proc-shards" => proc_shards = true,
            "--state-dir" => state_dir = Some(value("--state-dir")?.into()),
            other => {
                return Err(ApiError::invalid(format!("unknown soak option {other:?}")));
            }
        }
    }
    if let Some(kills) = restart_kills {
        // Durability mode: SIGKILL + reboot real `fvtool serve
        // --state-dir` children (this very binary) instead of chaos
        // against an in-process server.
        let me = std::env::current_exe()
            .map_err(|e| ApiError::io(format!("cannot locate own executable: {e}")))?;
        let state_dir = state_dir.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("fv-restart-soak-{}", std::process::id()))
        });
        let rcfg = forestview_repro::soak::RestartConfig {
            sessions: cfg.clients,
            kills,
            shards: cfg.shards,
            proc_shards,
            ..forestview_repro::soak::RestartConfig::new(me, state_dir)
        };
        let report = forestview_repro::soak::run_restart_soak(&rcfg)?;
        println!("{}", report.render());
        return if report.passed() {
            Ok(())
        } else {
            Err(ApiError::new(
                fv_api::ErrorCode::Internal,
                format!("{} restart invariant(s) violated", report.failures.len()),
            ))
        };
    }
    if proc_shards || state_dir.is_some() {
        return Err(ApiError::invalid(
            "--proc-shards/--state-dir only apply to soak --restart",
        ));
    }
    let report = forestview_repro::soak::run_soak(&cfg)?;
    println!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err(ApiError::new(
            fv_api::ErrorCode::Internal,
            format!("{} soak invariant(s) violated", report.failures.len()),
        ))
    }
}

/// Why an invocation failed: an unrecognized command line (print usage),
/// a protocol error from executing a recognized one, or a command that
/// already reported its findings and only needs a nonzero exit
/// (`lint` with violations).
enum Failure {
    Usage,
    Api(ApiError),
    Exit(u8),
}

impl From<ApiError> for Failure {
    fn from(e: ApiError) -> Self {
        Failure::Api(e)
    }
}

fn run(cmd: &str, rest: &[String], remote: Option<&str>) -> Result<(), Failure> {
    // `script` streams through a hub/server; everything else runs typed
    // requests through a backend.
    match cmd {
        "script" => return Ok(cmd_script(remote, rest)?),
        "serve" => {
            if remote.is_some() {
                return Err(ApiError::invalid("serve runs a server; drop --remote").into());
            }
            return Ok(cmd_serve(rest)?);
        }
        "ping" => {
            let addr = remote.ok_or_else(|| ApiError::invalid("ping needs --remote <addr>"))?;
            fv_net::Client::connect(addr)?.ping()?;
            println!("pong");
            return Ok(());
        }
        "watch" => return Ok(cmd_watch(remote, rest)?),
        "shutdown" => {
            let addr = remote.ok_or_else(|| ApiError::invalid("shutdown needs --remote <addr>"))?;
            fv_net::Client::connect(addr)?.shutdown_server()?;
            println!("server shutting down");
            return Ok(());
        }
        "stats" => {
            let addr = remote.ok_or_else(|| ApiError::invalid("stats needs --remote <addr>"))?;
            // Round-trip through the typed snapshot (decode → re-format)
            // so the printed text is the validated canonical form.
            let stats = fv_net::Client::connect(addr)?.stats()?;
            println!("{}", fv_net::metrics::format_stats(&stats));
            return Ok(());
        }
        "sessions" => {
            let addr = remote.ok_or_else(|| ApiError::invalid("sessions needs --remote <addr>"))?;
            match rest {
                [] => {
                    let sessions = fv_net::Client::connect(addr)?.list_sessions()?;
                    println!("{}", fv_api::format_sessions_reply(&sessions));
                }
                [flag] if flag == "--recovered" => {
                    // How many sessions the server re-installed from its
                    // state directory at boot — the crash-recovery gauge,
                    // pulled from the typed stats snapshot.
                    let stats = fv_net::Client::connect(addr)?.stats()?;
                    println!("recovered={}", stats.recovered);
                }
                _ => {
                    return Err(
                        ApiError::invalid("sessions takes at most one flag: --recovered").into(),
                    )
                }
            }
            return Ok(());
        }
        "migrate" => {
            let addr = remote.ok_or_else(|| ApiError::invalid("migrate needs --remote <addr>"))?;
            let [session, shard] = rest else {
                return Err(ApiError::invalid("migrate needs <session> <shard>").into());
            };
            let shard: usize = shard
                .parse()
                .map_err(|_| ApiError::parse("bad shard index"))?;
            fv_net::Client::connect(addr)?.migrate(session, shard)?;
            println!("migrated {session} shard={shard}");
            return Ok(());
        }
        "balance" => {
            let addr = remote.ok_or_else(|| ApiError::invalid("balance needs --remote <addr>"))?;
            match rest {
                [] => {
                    // Round-trip through the typed status (decode →
                    // re-format) so the printed text is the validated
                    // canonical form, exactly like `stats`.
                    let status = fv_net::Client::connect(addr)?.balance_status()?;
                    println!("{}", fv_net::balance::format_balance(&status));
                }
                [mode] => {
                    let mode = fv_api::BalanceMode::from_str_token(mode)?;
                    fv_net::Client::connect(addr)?.set_balance(mode)?;
                    println!("balance mode={mode}");
                }
                _ => {
                    return Err(ApiError::invalid("balance takes at most one arg: auto|off").into())
                }
            }
            return Ok(());
        }
        "shard-worker" => {
            // Internal: the child half of `serve --shard-procs`. Dials the
            // parent server and speaks the shard control protocol; not for
            // interactive use, so it is absent from usage().
            if remote.is_some() {
                return Err(ApiError::invalid("shard-worker is internal; drop --remote").into());
            }
            return fv_net::worker_main(rest)
                .map_err(|msg| ApiError::io(format!("shard-worker: {msg}")).into());
        }
        "lint" => return cmd_lint(rest),
        "workload" => return Ok(cmd_workload(rest)?),
        "trace" => return Ok(cmd_trace(remote, rest)?),
        "soak" => return Ok(cmd_soak(remote, rest)?),
        "render" | "cluster" | "impute" | "search" | "spell" | "demo" => {}
        _ => return Err(Failure::Usage),
    }
    let mut backend = match remote {
        Some(addr) => {
            // Local one-shot invocations start from a fresh engine, so
            // remote ones get a private scratch session (closed below) —
            // that is what keeps stdout identical against a long-lived,
            // already-populated server.
            let mut client = fv_net::Client::connect(addr)?;
            client.use_session(&scratch_session_name())?;
            Backend::Remote(client)
        }
        None => Backend::Local(Box::new(Engine::new())),
    };
    let result = match cmd {
        "render" => cmd_render(&mut backend, rest),
        "cluster" => cmd_cluster(&mut backend, rest),
        "impute" => cmd_impute(&mut backend, rest),
        "search" => cmd_search(&mut backend, rest),
        "spell" => cmd_spell(&mut backend, rest),
        "demo" => cmd_demo(&mut backend, rest),
        other => unreachable!("{other} was admitted above"),
    };
    if let Backend::Remote(client) = &mut backend {
        // Best-effort: an unreachable server at this point must not mask
        // the subcommand's own outcome.
        let _ = client.close_session();
    }
    Ok(result?)
}

/// `fvtool lint [--json]`: run the fv-lint invariant rules over the
/// enclosing workspace and print `file:line: rule: message` diagnostics
/// (or the stable `{"version":1,...}` JSON form). Exits 0 when clean,
/// 1 on any violation.
fn cmd_lint(rest: &[String]) -> Result<(), Failure> {
    let mut json = false;
    for arg in rest {
        match arg.as_str() {
            "--json" => json = true,
            _ => return Err(Failure::Usage),
        }
    }
    let cwd = std::env::current_dir()
        .map_err(|e| ApiError::io(format!("cannot determine current directory: {e}")))?;
    let root = fv_lint::find_workspace_root(&cwd).ok_or_else(|| {
        ApiError::io(format!(
            "no enclosing Cargo workspace from {}",
            cwd.display()
        ))
    })?;
    let violations = fv_lint::lint_workspace(&root).map_err(|e| ApiError::io(e.to_string()))?;
    if json {
        println!("{}", fv_lint::render_json(&violations));
    } else {
        print!("{}", fv_lint::render_text(&violations));
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(Failure::Exit(1))
    }
}

/// A session name unique enough for concurrent CLI invocations against
/// one server.
fn scratch_session_name() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    format!("cli-{}-{nanos}", std::process::id())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--remote <addr>` may appear anywhere; extract it before dispatch.
    let mut remote = None;
    if let Some(i) = args.iter().position(|a| a == "--remote") {
        if i + 1 >= args.len() {
            return usage();
        }
        remote = Some(args.remove(i + 1));
        args.remove(i);
    }
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    match run(cmd, rest, remote.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Usage) => usage(),
        Err(Failure::Api(e)) => {
            eprintln!("fvtool: {e}");
            ExitCode::from(e.exit_code())
        }
        Err(Failure::Exit(code)) => ExitCode::from(code),
    }
}
