//! `fvtool` — command-line front end to the ForestView reproduction.
//!
//! A thin client of `fv-api`: every subcommand builds typed
//! [`fv_api::Request`]s and executes them through an [`fv_api::Engine`]
//! (or, for `script`, an [`fv_api::EngineHub`]), then formats the typed
//! responses. No session logic lives here — the CLI is one of several
//! interchangeable expressions of the same protocol.
//!
//! ```text
//! fvtool render  <out.ppm> <w> <h> <file.pcl>...     render a session frame
//! fvtool cluster <in.pcl> <out_prefix>               write .cdt/.gtr/.atr
//! fvtool impute  <in.pcl> <out.pcl> [k]              KNN-impute missing cells
//! fvtool search  <query> <file.pcl>...               cross-dataset gene search
//! fvtool spell   <gene,gene,...> <file.pcl>...       SPELL query over files
//! fvtool demo    <out_dir>                           write a synthetic demo workspace
//! fvtool script  <file.fvs>                          replay a request script
//! ```
//!
//! Exit codes: 0 success, 2 usage/parse errors, otherwise the stable
//! per-class codes of [`fv_api::ErrorCode::exit_code`].

use forestview::command::Command;
use fv_api::{ApiError, Engine, EngineHub, Mutation, Query, Request, Response, SelectionExport};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fvtool render  <out.ppm> <w> <h> <file.pcl>...\n  \
         fvtool cluster <in.pcl> <out_prefix>\n  \
         fvtool impute  <in.pcl> <out.pcl> [k]\n  \
         fvtool search  <query> <file.pcl>...\n  \
         fvtool spell   <gene,gene,...> <file.pcl>...\n  \
         fvtool demo    <out_dir>\n  \
         fvtool script  <file.fvs>"
    );
    ExitCode::from(2)
}

/// Load every file into the engine's session.
fn load_files(engine: &mut Engine, files: &[String]) -> Result<(), ApiError> {
    for f in files {
        engine.execute(&Request::Mutate(Mutation::LoadDataset { path: f.clone() }))?;
    }
    Ok(())
}

/// Run a query whose response must be `Text`.
fn text_of(engine: &mut Engine, what: SelectionExport) -> Result<String, ApiError> {
    match engine.execute(&Request::Query(Query::ExportSelection { what }))? {
        Response::Text { text } => Ok(text),
        other => unexpected("text export", &other),
    }
}

fn unexpected<T>(wanted: &str, got: &Response) -> Result<T, ApiError> {
    Err(ApiError::new(
        fv_api::ErrorCode::Internal,
        format!("engine returned a non-{wanted} response: {got:?}"),
    ))
}

fn cmd_render(args: &[String]) -> Result<(), ApiError> {
    let [out, w, h, files @ ..] = args else {
        return Err(ApiError::invalid(
            "render needs <out.ppm> <w> <h> <files...>",
        ));
    };
    let (w, h): (usize, usize) = (
        w.parse().map_err(|_| ApiError::parse("bad width"))?,
        h.parse().map_err(|_| ApiError::parse("bad height"))?,
    );
    if files.is_empty() {
        return Err(ApiError::invalid("no input files"));
    }
    let mut engine = Engine::new();
    load_files(&mut engine, files)?;
    engine.execute(&Request::Mutate(Mutation::Command(Command::ClusterAll)))?;
    let frame = engine.execute(&Request::Query(Query::Render {
        width: w,
        height: h,
        path: Some(out.clone()),
    }))?;
    let Response::Frame { panes, .. } = frame else {
        return unexpected("frame", &frame);
    };
    println!("wrote {out} ({w}x{h}, {panes} panes)");
    match engine.execute(&Request::Query(Query::SessionInfo))? {
        Response::SessionInfo(info) => print!("{}", info.summary),
        other => return unexpected("session-info", &other),
    }
    Ok(())
}

fn cmd_cluster(args: &[String]) -> Result<(), ApiError> {
    let [input, prefix] = args else {
        return Err(ApiError::invalid("cluster needs <in.pcl> <out_prefix>"));
    };
    let mut engine = Engine::new();
    load_files(&mut engine, std::slice::from_ref(input))?;
    engine.execute(&Request::Mutate(Mutation::Command(Command::ClusterAll)))?;
    engine.execute(&Request::Mutate(Mutation::ClusterArrays { dataset: 0 }))?;
    engine.execute(&Request::Query(Query::ExportCdt {
        dataset: 0,
        prefix: Some(prefix.clone()),
    }))?;
    println!("wrote {prefix}.cdt / .gtr / .atr");
    Ok(())
}

fn cmd_impute(args: &[String]) -> Result<(), ApiError> {
    let (input, output, k) = match args {
        [i, o] => (i, o, 10usize),
        [i, o, k] => (i, o, k.parse().map_err(|_| ApiError::parse("bad k"))?),
        _ => return Err(ApiError::invalid("impute needs <in.pcl> <out.pcl> [k]")),
    };
    let mut engine = Engine::new();
    load_files(&mut engine, std::slice::from_ref(input))?;
    let imputed = engine.execute(&Request::Mutate(Mutation::Impute { dataset: 0, k }))?;
    let Response::Imputed {
        filled,
        missing_before,
    } = imputed
    else {
        return unexpected("imputation", &imputed);
    };
    engine.execute(&Request::Query(Query::ExportPcl {
        dataset: 0,
        path: output.clone(),
    }))?;
    println!("filled {filled}/{missing_before} missing cells with k={k}; wrote {output}");
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), ApiError> {
    let [query, files @ ..] = args else {
        return Err(ApiError::invalid("search needs <query> <files...>"));
    };
    if files.is_empty() {
        return Err(ApiError::invalid("no input files"));
    }
    let mut engine = Engine::new();
    load_files(&mut engine, files)?;
    let applied = engine.execute(&Request::Mutate(Mutation::Command(Command::Search(
        query.clone(),
    ))))?;
    let Response::Applied { selection_len, .. } = applied else {
        return unexpected("applied", &applied);
    };
    let n = selection_len.unwrap_or(0);
    println!(
        "{n} gene(s) match {query:?} across {} dataset(s):",
        files.len()
    );
    print!("{}", text_of(&mut engine, SelectionExport::GeneList)?);
    print!("{}", text_of(&mut engine, SelectionExport::Coverage)?);
    Ok(())
}

fn cmd_spell(args: &[String]) -> Result<(), ApiError> {
    let [genes, files @ ..] = args else {
        return Err(ApiError::invalid("spell needs <gene,gene,...> <files...>"));
    };
    if files.is_empty() {
        return Err(ApiError::invalid("no input files"));
    }
    let mut engine = Engine::new();
    load_files(&mut engine, files)?;
    let query: Vec<String> = genes.split(',').map(|s| s.trim().to_string()).collect();
    let ranking = engine.execute(&Request::Query(Query::Spell {
        genes: query,
        top_n: 20,
    }))?;
    let Response::SpellRanking {
        datasets,
        genes,
        query_missing,
    } = ranking
    else {
        return unexpected("spell", &ranking);
    };
    if !query_missing.is_empty() {
        eprintln!("warning: not found: {query_missing:?}");
    }
    println!("datasets by relevance:");
    for d in &datasets {
        println!("  {:<28} weight {:.3}", d.name, d.weight);
    }
    println!("top genes:");
    for g in &genes {
        println!(
            "  {:<12} score {:.3} ({} datasets)",
            g.gene, g.score, g.n_datasets
        );
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), ApiError> {
    let [dir] = args else {
        return Err(ApiError::invalid("demo needs <out_dir>"));
    };
    std::fs::create_dir_all(dir).map_err(|e| ApiError::io(format!("{dir}: {e}")))?;
    let mut engine = Engine::new();
    let loaded = engine.execute(&Request::Mutate(Mutation::LoadScenario {
        n_genes: 800,
        seed: 2007,
    }))?;
    let Response::ScenarioLoaded { names, .. } = loaded else {
        return unexpected("scenario", &loaded);
    };
    for (d, name) in names.iter().enumerate() {
        let path = format!("{dir}/{name}.pcl");
        let exported = engine.execute(&Request::Query(Query::ExportPcl {
            dataset: d,
            path: path.clone(),
        }))?;
        let Response::PclExported {
            genes, conditions, ..
        } = exported
        else {
            return unexpected("pcl export", &exported);
        };
        println!("wrote {path} ({genes} genes x {conditions} conditions)");
    }
    println!("try: fvtool render {dir}/session.ppm 1600 1200 {dir}/*.pcl");
    Ok(())
}

fn cmd_script(args: &[String]) -> Result<(), ApiError> {
    let [path] = args else {
        return Err(ApiError::invalid("script needs <file.fvs>"));
    };
    let text = std::fs::read_to_string(path).map_err(|e| ApiError::io(format!("{path}: {e}")))?;
    let mut hub = EngineHub::new();
    // Stream entries as they execute so the transcript of the completed
    // prefix survives a mid-script error (mutations are not rolled back).
    hub.run_script_streaming(&text, |entry| print!("{}", entry.render()))?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "render" => cmd_render(rest),
        "cluster" => cmd_cluster(rest),
        "impute" => cmd_impute(rest),
        "search" => cmd_search(rest),
        "spell" => cmd_spell(rest),
        "demo" => cmd_demo(rest),
        "script" => cmd_script(rest),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fvtool: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
