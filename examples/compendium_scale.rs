//! E8 / Section 1 scale claims: "well over a quarter billion microarray
//! measurements", datasets of "6,000 to 50,000 gene measurements over
//! hundreds of experiments", "tens of such datasets simultaneously".
//!
//! Builds compendia of increasing size, reporting generation, indexing and
//! query throughput. The default run stays laptop-sized; pass `--full` to
//! push to the quarter-billion-measurement mark (needs ~2 GB RAM).
//!
//! Run with `cargo run --release --example compendium_scale [--full]`.

use fv_spell::{SpellConfig, SpellEngine};
use fv_synth::compendium::{generate_compendium, total_measurements, CompendiumSpec};
use fv_synth::names::orf_name;
use std::time::Instant;

fn run(spec: &CompendiumSpec) {
    let t0 = Instant::now();
    let (datasets, truth) = generate_compendium(spec);
    let gen_time = t0.elapsed();
    let measurements = total_measurements(&datasets);

    let t1 = Instant::now();
    let mut engine = SpellEngine::new(SpellConfig::default());
    for ds in &datasets {
        engine.add_dataset(ds);
    }
    engine.finalize();
    let index_time = t1.elapsed();

    let query: Vec<String> = truth.esr_induced()[..8]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
    let t2 = Instant::now();
    let result = engine.query(&refs);
    let query_time = t2.elapsed();

    println!(
        "{:>3} datasets x {:>6} genes x {:>4} conds | {:>12} measurements | gen {:>8.2?} | index {:>8.2?} | query {:>8.2?} | top ds {}",
        spec.n_datasets,
        spec.n_genes,
        spec.conds_per_dataset,
        measurements,
        gen_time,
        index_time,
        query_time,
        result.datasets.first().map(|d| d.name.as_str()).unwrap_or("-"),
    );
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!("compendium scale sweep (paper claims: tens of datasets, 6k-50k genes, hundreds of conditions, 2.5e8 measurements)");

    let base = CompendiumSpec {
        n_specific: 4,
        specific_size: 40,
        noise_sd: 0.35,
        missing_fraction: 0.02,
        seed: 8,
        ..CompendiumSpec::default()
    };
    // Sweep: datasets × genes × conditions.
    run(&CompendiumSpec {
        n_genes: 2000,
        n_datasets: 10,
        conds_per_dataset: 40,
        ..base
    });
    run(&CompendiumSpec {
        n_genes: 6000,
        n_datasets: 20,
        conds_per_dataset: 60,
        ..base
    });
    run(&CompendiumSpec {
        n_genes: 6000,
        n_datasets: 40,
        conds_per_dataset: 80,
        ..base
    });

    if full {
        // 50 datasets × 20 000 genes × 250 conditions = 2.5e8 cells — the
        // paper's quarter-billion mark.
        run(&CompendiumSpec {
            n_genes: 20_000,
            n_datasets: 50,
            conds_per_dataset: 250,
            ..base
        });
    } else {
        println!("(pass --full for the quarter-billion-measurement run)");
    }
}
