//! Figure 2 reproduction: "ForestView application displaying a gene subset
//! across three datasets."
//!
//! Generates the three-dataset workload (stress, nutrient limitation,
//! knockout compendium over a shared universe), clusters each pane, selects
//! a tight cluster from the stress pane's global view, and renders the
//! synchronized three-pane display at desktop resolution.
//!
//! Run with `cargo run --release --example three_panes [n_genes]`.

use forestview::renderer::render_desktop;
use forestview::Session;
use forestview_repro::artifact_dir;
use fv_render::image::write_ppm;
use fv_synth::scenario::Scenario;

fn main() {
    let n_genes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("generating three datasets over {n_genes} genes...");
    let scenario = Scenario::three_datasets(n_genes, 2007);

    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).expect("unique names");
    }
    println!("clustering all panes (Pearson / average linkage)...");
    session.cluster_all();

    // Mouse-select a region of the stress pane's global view around a
    // known ESR member so the zoom views show a coherent cluster.
    let anchor_gene = fv_synth::names::orf_name(scenario.truth.esr_induced()[0]);
    let anchor_row = session
        .dataset(0)
        .find_gene(&anchor_gene)
        .expect("planted gene present");
    let anchor_display = session.display_pos_of_row(0, anchor_row);
    let start = anchor_display.saturating_sub(30);
    let n = session.select_region(0, start, anchor_display + 30);
    println!("selected {n} genes around {anchor_gene} in the stress pane");

    // Synchronized rendering: one row per selected gene in every pane.
    let fb = render_desktop(&session, 1600, 1200);
    let path = artifact_dir().join("fig2_three_panes.ppm");
    write_ppm(&fb, &path).expect("write artifact");
    println!("wrote {}", path.display());

    // The per-pane coverage table shows how the same genes appear (or are
    // absent) across datasets — the substance of the synchronized view.
    print!("{}", forestview::export::selection_coverage_tsv(&session));
    print!("{}", forestview::export::session_summary(&session));
}
