//! Section 4 reproduction: the stress-response / growth-rate case study.
//!
//! The paper's collaborator asked "whether or not the traditional global
//! stress response signal is present in other types of data": they selected
//! suspicious clusters in nutrient-limitation and knockout datasets and
//! examined how those genes behave in the standard stress compendium.
//! With planted ground truth we can *quantify* the insight:
//!
//! 1. select a cluster in the knockout pane (around a slow-grower column),
//! 2. measure its within-group correlation in the stress pane,
//! 3. compare against random gene groups — the planted general-stress
//!    module should show a "strong pattern of correlation within the
//!    stress response datasets" while random selections do not.
//!
//! Run with `cargo run --release --example stress_response_study [n_genes]`.

use forestview::selection::SelectionOrigin;
use forestview::Session;
use fv_expr::stats;
use fv_synth::names::orf_name;
use fv_synth::scenario::Scenario;

/// Mean pairwise Pearson correlation of a set of genes within a dataset.
fn group_coherence(session: &Session, dataset: usize, genes: &[&str]) -> f64 {
    let ds = session.dataset(dataset);
    let rows: Vec<usize> = genes.iter().filter_map(|g| ds.find_gene(g)).collect();
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..rows.len().saturating_sub(1) {
        for j in (i + 1)..rows.len() {
            if let Some(r) = stats::pearson_rows(&ds.matrix, rows[i], &ds.matrix, rows[j], 3) {
                sum += r;
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn main() {
    let n_genes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let scenario = Scenario::case_study(n_genes, 4);
    let truth = scenario.truth.clone();
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).expect("unique names");
    }
    session.cluster_all();

    // Step 1: in the knockout pane (index 2), find the ESR cluster the way
    // a user would — select the region around a known ESR gene after
    // clustering has gathered correlated genes together.
    let anchor = orf_name(truth.esr_induced()[0]);
    let ko = 2usize;
    let row = session
        .dataset(ko)
        .find_gene(&anchor)
        .expect("gene present");
    let pos = session.display_pos_of_row(ko, row);
    let n = session.select_region(ko, pos.saturating_sub(25), pos + 25);
    println!("selected {n} genes around {anchor} in the knockout pane");

    // How many of them are planted ESR members?
    let sel_names: Vec<String> = session
        .selection()
        .unwrap()
        .genes()
        .iter()
        .map(|&g| session.merged().universe().name(g).to_string())
        .collect();
    let esr: std::collections::HashSet<String> = truth
        .esr_induced()
        .iter()
        .chain(truth.esr_repressed())
        .map(|&g| orf_name(g))
        .collect();
    let esr_hits = sel_names.iter().filter(|g| esr.contains(*g)).count();
    println!("{esr_hits}/{n} of the selected genes are planted ESR members");

    // Step 2: coherence of the selection within each dataset.
    let sel_refs: Vec<&str> = sel_names.iter().map(|s| s.as_str()).collect();
    println!("\nwithin-selection mean pairwise correlation:");
    for (d, label) in [(0, "stress"), (1, "nutrient limitation"), (2, "knockout")] {
        let c = group_coherence(&session, d, &sel_refs);
        println!("  {:<20} {c:+.3}", label);
    }

    // Step 3: baseline — random gene groups of the same size.
    let mut rand_names: Vec<String> = Vec::new();
    let mut i = 13usize;
    while rand_names.len() < sel_refs.len() {
        rand_names.push(orf_name(i % n_genes));
        i = i.wrapping_mul(31).wrapping_add(17);
    }
    let rand_refs: Vec<&str> = rand_names.iter().map(|s| s.as_str()).collect();
    let sel_stress = group_coherence(&session, 0, &sel_refs);
    let rand_stress = group_coherence(&session, 0, &rand_refs);
    println!(
        "\nstress-pane coherence: selection {sel_stress:+.3} vs random group {rand_stress:+.3}"
    );
    println!(
        "=> the cluster found in the KNOCKOUT data {} a strong correlated pattern in the STRESS data",
        if sel_stress > 0.3 && sel_stress > rand_stress + 0.2 {
            "exhibits"
        } else {
            "does NOT exhibit"
        }
    );

    // The paper's workflow contrast: "using previously existing techniques
    // we would need to launch over a dozen independent instances of a
    // program and continually cut and paste selections between instances."
    session.select_genes(&sel_refs, SelectionOrigin::List);
    let merged = session.export_merged_selection();
    println!(
        "\nmerged export of the selection: {} rows x {} columns (one table instead of {} program instances)",
        merged.lines().count() - 1,
        merged.lines().next().map(|h| h.split('\t').count()).unwrap_or(0) - 1,
        session.n_datasets(),
    );
}
