//! Figure 6 reproduction: "The ForestView system (left) viewed with two
//! other microarray analysis and visualization tools, GOLEM (upper right)
//! and SPELL (lower right)."
//!
//! Runs the full integrated pipeline: seed a selection, SPELL-search the
//! compendium, reorder the panes by dataset relevance, pull the top genes
//! into the selection, enrich the result against the ontology with GOLEM,
//! and compose the tri-panel figure.
//!
//! Run with `cargo run --release --example integrated_session [n_genes]`.

use forestview::integrate::AnalysisSuite;
use forestview::renderer::{compose_figure6, render_desktop, render_golem_map, render_spell_panel};
use forestview::selection::SelectionOrigin;
use forestview::Session;
use forestview_repro::artifact_dir;
use fv_golem::EnrichmentConfig;
use fv_render::image::write_ppm;
use fv_spell::SpellConfig;
use fv_synth::names::orf_name;
use fv_synth::ontogen::generate_ontology;
use fv_synth::scenario::Scenario;

fn main() {
    let n_genes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);

    // Session over the three-dataset scenario.
    let scenario = Scenario::three_datasets(n_genes, 2007);
    let truth = scenario.truth.clone();
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).expect("unique names");
    }
    session.cluster_all();

    // Analysis suite: SPELL index over the session + generated ontology.
    let onto = generate_ontology(&truth, 1200, 2007);
    let prop = onto.annotations.propagate(&onto.dag);
    let suite = AnalysisSuite::build(&session, SpellConfig::default(), onto.dag, prop);

    // Seed the workflow with six ESR genes, as a biologist would paste in.
    let seed: Vec<String> = truth.esr_induced()[..6].iter().map(|&g| orf_name(g)).collect();
    let refs: Vec<&str> = seed.iter().map(|s| s.as_str()).collect();
    session.select_genes(&refs, SelectionOrigin::List);
    println!("seeded selection with {:?}...", &seed[..3]);

    // The integrated pipeline (SPELL → pane order → selection → GOLEM).
    let out = suite
        .integrated_analysis(&mut session, 20, &EnrichmentConfig::default(), 2)
        .expect("selection present");

    println!("\nSPELL dataset order:");
    for d in out.spell.datasets.iter().take(5) {
        println!("  {:<24} weight {:.3}", d.name, d.weight);
    }
    println!("\nGOLEM top terms for the expanded selection:");
    for r in out.enrichment.iter().take(5) {
        println!(
            "  {:<40} p={:.2e} q={:.2e}",
            suite.ontology.term(r.term).name,
            r.p_value,
            r.q_value
        );
    }

    // Compose the tri-panel artifact.
    let left = render_desktop(&session, 900, 700);
    let spell_panel = render_spell_panel(&out.spell, 440, 350);
    let golem_panel = match &out.map {
        Some((map, layout)) => render_golem_map(map, layout, &suite.ontology, 440, 350),
        None => fv_render::Framebuffer::new(440, 350),
    };
    let fig6 = compose_figure6(&left, &golem_panel, &spell_panel);
    let path = artifact_dir().join("fig6_integrated.ppm");
    write_ppm(&fig6, &path).expect("artifact");
    println!("\nwrote {} ({}x{})", path.display(), fig6.width(), fig6.height());
    print!("\n{}", forestview::export::session_summary(&session));
}
