//! Figure 6 reproduction: "The ForestView system (left) viewed with two
//! other microarray analysis and visualization tools, GOLEM (upper right)
//! and SPELL (lower right)."
//!
//! Ported to the `fv-api` protocol: every session interaction — loading
//! the scenario, clustering, seeding the selection, the SPELL search, the
//! relevance reordering, the expanded selection, and the GOLEM enrichment
//! — is a typed [`fv_api::Request`] executed by an [`fv_api::Engine`], so
//! the whole workflow below could equally arrive as a `fvtool script`
//! file or over a future network transport. Only the tri-panel figure
//! composition at the end touches the view layer directly.
//!
//! Run with `cargo run --release --example integrated_session [n_genes]`.

use forestview::command::Command;
use forestview::renderer::{compose_figure6, render_desktop, render_golem_map, render_spell_panel};
use forestview_repro::artifact_dir;
use fv_api::{Engine, Mutation, Query, Request, Response};
use fv_golem::{enrich, EnrichmentConfig};
use fv_render::image::write_ppm;
use fv_synth::names::orf_name;
use fv_synth::ontogen::generate_ontology;
use fv_synth::scenario::Scenario;

const SEED: u64 = 2007;

fn main() {
    let n_genes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);

    // The engine owns the session; the scenario and ontology are seeded,
    // so a locally regenerated copy of the ground truth names the same
    // genes the engine's datasets contain.
    let truth = Scenario::three_datasets(n_genes, SEED).truth.clone();
    let mut engine = Engine::with_scene(900, 700);
    let run =
        |engine: &mut Engine, request: Request| engine.execute(&request).expect("request failed");
    run(
        &mut engine,
        Mutation::LoadScenario {
            n_genes,
            seed: SEED,
        }
        .into(),
    );
    run(
        &mut engine,
        Mutation::BuildOntology {
            n_filler: 1200,
            seed: SEED,
        }
        .into(),
    );
    run(&mut engine, Command::ClusterAll.into());

    // Seed the workflow with six ESR genes, as a biologist would paste in.
    let seed_genes: Vec<String> = truth.esr_induced()[..6]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    run(&mut engine, Command::SelectGenes(seed_genes.clone()).into());
    println!("seeded selection with {:?}...", &seed_genes[..3]);

    // SPELL over the compendium (pure query)...
    let Response::SpellRanking {
        datasets,
        genes,
        query_missing,
    } = run(
        &mut engine,
        Query::Spell {
            genes: seed_genes.clone(),
            top_n: 20,
        }
        .into(),
    )
    else {
        unreachable!("spell query returns a ranking")
    };

    // ...drives the pane order (relevance scores, one per dataset) and the
    // expanded selection (query + top hits), exactly the paper's
    // SPELL → ForestView flow — but expressed as replayable requests.
    let mut scores = vec![0.0f32; 3];
    for row in &datasets {
        if let Some(d) = engine.session().merged().index_of(&row.name) {
            scores[d] = row.weight;
        }
    }
    run(&mut engine, Command::OrderByRelevance(scores).into());
    let mut selected = seed_genes.clone();
    selected.extend(genes.iter().map(|g| g.gene.clone()));
    run(&mut engine, Command::SelectGenes(selected).into());

    println!("\nSPELL dataset order:");
    for d in datasets.iter().take(5) {
        println!("  {:<24} weight {:.3}", d.name, d.weight);
    }

    // GOLEM enrichment of the expanded selection, through the API.
    let Response::Enrichment { rows } = run(
        &mut engine,
        Query::Enrich {
            genes: None,
            max_terms: 10,
        }
        .into(),
    ) else {
        unreachable!("enrich query returns a table")
    };
    println!("\nGOLEM top terms for the expanded selection:");
    for r in rows.iter().take(5) {
        println!("  {:<40} p={:.2e} q={:.2e}", r.name, r.p_value, r.q_value);
    }

    // ── view layer: compose the tri-panel artifact ──────────────────────
    // The figure needs the ontology DAG and full enrichment statistics;
    // both are deterministic functions of the seed, so regenerate them.
    let onto = generate_ontology(&truth, 1200, SEED);
    let prop = onto.annotations.propagate(&onto.dag);
    let sel_names: Vec<String> = engine
        .session()
        .selection()
        .expect("selection present")
        .genes()
        .iter()
        .map(|&g| engine.session().merged().universe().name(g).to_string())
        .collect();
    let refs: Vec<&str> = sel_names.iter().map(|s| s.as_str()).collect();
    let enrichment = enrich(&onto.dag, &prop, &refs, &EnrichmentConfig::default());

    let left = render_desktop(engine.session(), 900, 700);
    let spell_result =
        fv_api::response::spell_result_from_rows(&datasets, &genes, &seed_genes, query_missing);
    let spell_panel = render_spell_panel(&spell_result, 440, 350);
    let golem_panel = match enrichment.first() {
        Some(top) => {
            let map = fv_golem::map::build_local_map(&onto.dag, top.term, 2, &enrichment);
            let layout = fv_golem::layout::layout_map(&map, 2);
            render_golem_map(&map, &layout, &onto.dag, 440, 350)
        }
        None => fv_render::Framebuffer::new(440, 350),
    };
    let fig6 = compose_figure6(&left, &golem_panel, &spell_panel);
    let path = artifact_dir().join("fig6_integrated.ppm");
    write_ppm(&fig6, &path).expect("artifact");
    println!(
        "\nwrote {} ({}x{})",
        path.display(),
        fig6.width(),
        fig6.height()
    );

    // Close with the session summary, through the API like everything else.
    let Response::SessionInfo(info) = run(&mut engine, Query::SessionInfo.into()) else {
        unreachable!("session_info returns a summary")
    };
    print!("\n{}", info.summary);
}
