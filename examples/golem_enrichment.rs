//! Figure 5 reproduction: a GOLEM local exploration map.
//!
//! Generates a GO-like ontology aligned with the planted modules, runs
//! hypergeometric enrichment of a gene cluster, prints the enrichment
//! table (term, overlap, p, Bonferroni, BH q), and renders the local
//! exploration map around the top hit.
//!
//! Run with `cargo run --release --example golem_enrichment [n_filler_terms]`.

use forestview::renderer::render_golem_map;
use forestview_repro::artifact_dir;
use fv_golem::layout::layout_map;
use fv_golem::map::build_local_map;
use fv_golem::{enrich, EnrichmentConfig};
use fv_render::image::write_ppm;
use fv_synth::modules::plant_modules;
use fv_synth::names::orf_name;
use fv_synth::ontogen::generate_ontology;
use std::time::Instant;

fn main() {
    let n_filler: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);

    let truth = plant_modules(3000, 4, 50, 7);
    println!("generating ontology with ~{n_filler} filler terms...");
    let onto = generate_ontology(&truth, n_filler, 7);
    let t0 = Instant::now();
    let prop = onto.annotations.propagate(&onto.dag);
    println!(
        "{} terms, {} edges; propagation took {:?}",
        onto.dag.n_terms(),
        onto.dag.n_edges(),
        t0.elapsed()
    );

    // Query: 30 genes of the "heat shock response" module plus 10 random
    // background genes (a realistic noisy cluster).
    let module = &truth.modules[2];
    let mut query: Vec<String> = module.genes[..30].iter().map(|&g| orf_name(g)).collect();
    for g in 0..10 {
        query.push(orf_name(g * 97 + 11));
    }
    let refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();

    let t1 = Instant::now();
    let results = enrich(&onto.dag, &prop, &refs, &EnrichmentConfig::default());
    println!(
        "enrichment over {} candidate terms took {:?}\n",
        onto.dag.n_terms(),
        t1.elapsed()
    );

    println!("top enriched terms:");
    println!(
        "{:<34} {:>5} {:>6} {:>10} {:>10} {:>10}",
        "term", "k", "K", "p", "bonf", "q"
    );
    for r in results.iter().take(8) {
        println!(
            "{:<34} {:>5} {:>6} {:>10.2e} {:>10.2e} {:>10.2e}",
            onto.dag.term(r.term).name,
            r.overlap,
            r.annotated,
            r.p_value,
            r.p_bonferroni,
            r.q_value
        );
    }

    // The local exploration map around the top hit (radius 2, like the
    // GOLEM screenshot in Figure 5).
    let focus = results[0].term;
    let map = build_local_map(&onto.dag, focus, 2, &results);
    let layout = layout_map(&map, 3);
    println!(
        "\nlocal map around {:?}: {} nodes, {} edges, {} layers, {} crossings",
        onto.dag.term(focus).name,
        map.n_nodes(),
        map.edges.len(),
        layout.n_layers,
        layout.crossings()
    );
    let fb = render_golem_map(&map, &layout, &onto.dag, 800, 600);
    let path = artifact_dir().join("fig5_golem_map.ppm");
    write_ppm(&fb, &path).expect("artifact");
    println!("wrote {}", path.display());
}
