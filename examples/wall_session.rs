//! Figure 3 reproduction: the ForestView session on the display wall.
//!
//! Renders the same session on a desktop surface and on the simulated
//! Princeton 6×4 projector wall, reporting the pixel-capacity ratio the
//! paper's Section 1 claims ("about two orders of magnitude" for large
//! walls), tile-parallel render throughput, and the network cost of
//! shipping the frame to display nodes.
//!
//! Run with `cargo run --release --example wall_session [n_genes]`.

use forestview::renderer::{render_desktop, render_wall};
use forestview::Session;
use forestview_repro::artifact_dir;
use fv_render::image::write_ppm;
use fv_synth::scenario::Scenario;
use fv_wall::net::NetworkModel;
use fv_wall::{TileGrid, WallRenderer};
use std::time::Instant;

fn main() {
    let n_genes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let scenario = Scenario::three_datasets(n_genes, 2007);
    let mut session = Session::new();
    for ds in scenario.datasets {
        session.load_dataset(ds).expect("unique names");
    }
    session.cluster_all();
    session.select_region(0, 0, 60);

    // Desktop reference: the paper's 2-megapixel display.
    let desk = TileGrid::desktop();
    let t0 = Instant::now();
    let desk_fb = render_desktop(&session, desk.wall_width(), desk.wall_height());
    let desk_time = t0.elapsed();
    println!(
        "desktop  {:>4}x{:<4} ({:>9} px) rendered in {:?}",
        desk.wall_width(),
        desk.wall_height(),
        desk.total_pixels(),
        desk_time
    );

    // The Princeton wall: 6×4 XGA projectors, tiles rendered in parallel.
    let wall_grid = TileGrid::princeton_wall();
    let mut wall = WallRenderer::new(wall_grid);
    let stats = render_wall(&session, &mut wall);
    println!(
        "wall     {:>4}x{:<4} ({:>9} px) rendered in {:?} across {} tiles ({:.1} Mpx/s)",
        wall_grid.wall_width(),
        wall_grid.wall_height(),
        wall_grid.total_pixels(),
        stats.render_time,
        stats.tiles_rendered,
        stats.pixels_per_second() / 1e6,
    );
    println!(
        "capacity ratio wall/desktop: {:.1}x (2000-era wall); a 6x4 full-HD wall reaches {:.1}x",
        wall_grid.capacity_ratio(&desk),
        TileGrid::new(6, 4, 1920, 1080).capacity_ratio(&desk),
    );

    // Network shipping cost for the frame (per-tile links, gigabit).
    let net = NetworkModel::gigabit();
    let ship = net.frame_time(
        stats.tiles_rendered,
        stats.bytes_shipped,
        wall_grid.n_tiles(),
    );
    println!(
        "frame distribution: {} MB over {} links -> {:?}",
        stats.bytes_shipped / 1_000_000,
        wall_grid.n_tiles(),
        ship
    );

    // Artifacts: the desktop frame and a downscaled wall composite (the
    // full wall PPM would be ~57 MB; we save one tile plus the desktop).
    write_ppm(&desk_fb, artifact_dir().join("fig3_desktop.ppm")).expect("artifact");
    write_ppm(wall.tile(9), artifact_dir().join("fig3_wall_tile9.ppm")).expect("artifact");
    println!("wrote fig3_desktop.ppm and fig3_wall_tile9.ppm to artifacts/");
}
