//! Figure 4 reproduction: a SPELL search over a compendium.
//!
//! Ported to the `fv-api` protocol: the compendium is loaded with a
//! `compendium` mutation and queried with a `spell` query through an
//! [`fv_api::Engine`] — the same requests a `fvtool script` file or a
//! remote client would send. Printed are the two ordered lists the web
//! interface of Figure 4 shows — datasets by relevance and genes by
//! weighted correlation — plus the planted-truth recovery metrics the
//! reproduction uses for verification.
//!
//! Run with `cargo run --release --example spell_search [n_datasets] [n_genes]`.

use forestview::renderer::render_spell_panel;
use forestview_repro::artifact_dir;
use fv_api::{Engine, Mutation, Query, Request, Response};
use fv_render::image::write_ppm;
use fv_spell::eval::{average_precision, precision_at_k};
use fv_synth::names::orf_name;
use fv_synth::scenario::Scenario;
use std::collections::HashSet;
use std::time::Instant;

const SEED: u64 = 42;

fn main() {
    let n_datasets: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let n_genes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);

    println!("building compendium: {n_datasets} datasets x {n_genes} genes...");
    let mut engine = Engine::new();
    let t0 = Instant::now();
    engine
        .execute(&Request::from(Mutation::LoadCompendium {
            n_genes,
            n_datasets,
            seed: SEED,
        }))
        .expect("compendium loads");
    let Response::SessionInfo(info) = engine
        .execute(&Request::from(Query::SessionInfo))
        .expect("session_info")
    else {
        unreachable!("session_info returns a summary")
    };
    println!(
        "loaded {} measurements in {:?} (SPELL index builds lazily on first query)",
        info.total_measurements,
        t0.elapsed()
    );

    // Query: 8 genes from the planted ESR module. The scenario is seeded,
    // so regenerating it locally names the same planted genes the engine's
    // datasets contain.
    let truth = Scenario::spell_compendium(n_genes, n_datasets, SEED).truth;
    let query: Vec<String> = truth.esr_induced()[..8]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let t1 = Instant::now();
    let Response::SpellRanking {
        datasets,
        genes,
        query_missing,
    } = engine
        .execute(&Request::from(Query::Spell {
            genes: query.clone(),
            top_n: usize::MAX,
        }))
        .expect("spell query")
    else {
        unreachable!("spell returns a ranking")
    };
    let latency = t1.elapsed();
    println!("query {:?} answered in {latency:?}", &query[..3]);

    println!("\ndatasets by relevance (top 10):");
    for d in datasets.iter().take(10) {
        println!(
            "  {:<24} weight {:.3}  ({} query genes present)",
            d.name, d.weight, d.query_genes_present
        );
    }

    println!("\ntop 15 genes (excluding query):");
    let esr: HashSet<String> = truth.esr_induced().iter().map(|&g| orf_name(g)).collect();
    for g in genes.iter().take(15) {
        let marker = if esr.contains(&g.gene) {
            "ESR*"
        } else {
            "    "
        };
        println!(
            "  {marker} {:<10} score {:.3} over {} datasets",
            g.gene, g.score, g.n_datasets
        );
    }

    // Recovery metrics against the planted truth.
    let ranked: Vec<&str> = genes.iter().map(|g| g.gene.as_str()).collect();
    let truth_set: HashSet<&str> = esr
        .iter()
        .filter(|g| !query.contains(g))
        .map(|s| s.as_str())
        .collect();
    println!(
        "\nplanted-module recovery: P@10 {:.2}  P@25 {:.2}  AP {:.3}  ({} members hidden)",
        precision_at_k(&ranked, &truth_set, 10),
        precision_at_k(&ranked, &truth_set, 25),
        average_precision(&ranked, &truth_set),
        truth_set.len(),
    );

    // View layer: the Figure-4 panel consumes the classic SpellResult
    // shape; rebuild it from the protocol rows.
    let result = fv_api::response::spell_result_from_rows(&datasets, &genes, &query, query_missing);
    let panel = render_spell_panel(&result, 480, 360);
    let path = artifact_dir().join("fig4_spell_panel.ppm");
    write_ppm(&panel, &path).expect("artifact");
    println!("wrote {}", path.display());
}
