//! Figure 4 reproduction: a SPELL search over a compendium.
//!
//! Builds a compendium of datasets over a shared universe with a planted
//! stress-response module, queries SPELL with a handful of module genes,
//! and prints the two ordered lists the web interface of Figure 4 shows —
//! datasets by relevance and genes by weighted correlation — plus the
//! planted-truth recovery metrics the reproduction uses for verification.
//!
//! Run with `cargo run --release --example spell_search [n_datasets] [n_genes]`.

use forestview::renderer::render_spell_panel;
use forestview_repro::artifact_dir;
use fv_render::image::write_ppm;
use fv_spell::eval::{average_precision, precision_at_k};
use fv_spell::{SpellConfig, SpellEngine};
use fv_synth::names::orf_name;
use fv_synth::scenario::Scenario;
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    let n_datasets: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let n_genes: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);

    println!("building compendium: {n_datasets} datasets x {n_genes} genes...");
    let scenario = Scenario::spell_compendium(n_genes, n_datasets, 42);
    let t0 = Instant::now();
    let mut engine = SpellEngine::new(SpellConfig::default());
    for ds in &scenario.datasets {
        engine.add_dataset(ds);
    }
    engine.finalize();
    println!(
        "indexed {} measurements in {:?}",
        engine.total_measurements(),
        t0.elapsed()
    );

    // Query: 8 genes from the planted ESR module.
    let query: Vec<String> = scenario.truth.esr_induced()[..8]
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    let refs: Vec<&str> = query.iter().map(|s| s.as_str()).collect();
    let t1 = Instant::now();
    let result = engine.query(&refs);
    let latency = t1.elapsed();
    println!("query {:?} answered in {latency:?}", &query[..3]);

    println!("\ndatasets by relevance (top 10):");
    for d in result.datasets.iter().take(10) {
        println!(
            "  {:<24} weight {:.3}  ({} query genes present)",
            d.name, d.weight, d.query_genes_present
        );
    }

    println!("\ntop 15 genes (excluding query):");
    let esr: HashSet<String> = scenario
        .truth
        .esr_induced()
        .iter()
        .map(|&g| orf_name(g))
        .collect();
    for g in result.top_new_genes(15) {
        let marker = if esr.contains(&g.gene) { "ESR*" } else { "    " };
        println!(
            "  {marker} {:<10} score {:.3} over {} datasets",
            g.gene, g.score, g.n_datasets
        );
    }

    // Recovery metrics against the planted truth.
    let ranked: Vec<String> = result
        .top_new_genes(usize::MAX)
        .iter()
        .map(|g| g.gene.clone())
        .collect();
    let ranked_refs: Vec<&str> = ranked.iter().map(|s| s.as_str()).collect();
    let truth_set: HashSet<&str> = esr
        .iter()
        .filter(|g| !query.contains(g))
        .map(|s| s.as_str())
        .collect();
    println!(
        "\nplanted-module recovery: P@10 {:.2}  P@25 {:.2}  AP {:.3}  ({} members hidden)",
        precision_at_k(&ranked_refs, &truth_set, 10),
        precision_at_k(&ranked_refs, &truth_set, 25),
        average_precision(&ranked_refs, &truth_set),
        truth_set.len(),
    );

    let panel = render_spell_panel(&result, 480, 360);
    let path = artifact_dir().join("fig4_spell_panel.ppm");
    write_ppm(&panel, &path).expect("artifact");
    println!("wrote {}", path.display());
}
