//! Quickstart: load a PCL file, cluster it, select some genes, render a
//! pane, export the selection — the 60-second tour of the public API.
//!
//! Run with `cargo run --example quickstart`.

use forestview::renderer::render_desktop;
use forestview::Session;
use forestview_repro::artifact_dir;
use fv_formats::pcl::parse_pcl;
use fv_render::image::write_ppm;

/// A tiny embedded PCL file: 8 genes × 4 heat-shock time points, with the
/// blank cell in the HSP104 row demonstrating missing-value handling.
const PCL: &str = "\
ID\tNAME\tGWEIGHT\theat 0m\theat 15m\theat 30m\theat 60m
EWEIGHT\t\t\t1\t1\t1\t1
YAL005C\tSSA1 cytosolic chaperone\t1\t0.1\t1.8\t2.4\t1.9
YLL026W\tHSP104 disaggregase\t1\t0.0\t\t2.9\t2.2
YBR072W\tHSP26 small heat shock protein\t1\t-0.1\t2.2\t3.1\t2.5
YFL014W\tHSP12 membrane protein\t1\t0.2\t1.9\t2.6\t2.0
YGR192C\tTDH3 glyceraldehyde dehydrogenase\t1\t0.0\t-0.2\t-0.4\t-0.1
YLR044C\tPDC1 pyruvate decarboxylase\t1\t0.1\t-0.3\t-0.5\t-0.2
YOL086C\tADH1 alcohol dehydrogenase\t1\t-0.1\t-0.4\t-0.6\t-0.3
YKL060C\tFBA1 aldolase\t1\t0.0\t-0.1\t-0.3\t-0.2
";

fn main() {
    // 1. Parse the PCL into a dataset and load it into a session.
    let dataset = parse_pcl("heat_shock_demo", PCL).expect("valid PCL");
    let mut session = Session::new();
    session.load_dataset(dataset).expect("unique dataset name");

    // 2. Hierarchically cluster the genes (Pearson distance, average
    //    linkage — the microarray defaults); the pane now displays rows in
    //    dendrogram leaf order.
    session.cluster_all();

    // 3. Search the annotations — this is ForestView's cross-dataset gene
    //    search — and select the hits.
    let n = session.search_and_select("heat shock");
    println!("search 'heat shock' selected {n} gene(s)");

    // 4. Render the pane (global + zoom views, dendrogram, labels).
    let fb = render_desktop(&session, 640, 480);
    let path = artifact_dir().join("quickstart.ppm");
    write_ppm(&fb, &path).expect("write artifact");
    println!("rendered session to {}", path.display());

    // 5. Export the selection for downstream tools.
    print!("{}", forestview::export::session_summary(&session));
    println!("--- exported gene list ---\n{}", session.export_gene_list());
}
